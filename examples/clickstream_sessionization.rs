//! The paper's motivating workload (Fig. 1): click-stream sessionization.
//!
//! ```sh
//! cargo run --release --example clickstream_sessionization
//! ```
//!
//! Runs Q-CSA — "what is the average number of pages a user visits between
//! a page in category X and a page in category Y?" — over a generated
//! click stream, comparing Hive's six-job translation with YSmart's
//! two-job translation, and showing the correlation report that makes the
//! merge possible.

use ysmart::core::{Strategy, YSmart};
use ysmart::datagen::{ClicksGen, ClicksSpec};
use ysmart::mapred::ClusterConfig;
use ysmart::plan::analyze;
use ysmart::queries::workloads::q_csa_sql;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ClicksSpec {
        users: 100,
        clicks_per_user: 40,
        seed: 7,
        ..ClicksSpec::default()
    };
    let stream = ClicksGen::generate(&spec);
    println!(
        "generated {} clicks for {} users",
        stream.clicks.len(),
        spec.users
    );

    let mut engine = YSmart::new(
        ysmart::datagen::clicks_catalog(),
        ClusterConfig::small_local(),
    );
    engine.load_table("clicks", &stream.clicks)?;

    let sql = q_csa_sql(spec.category_x, spec.category_y);

    // Show what the correlation analysis discovers.
    let plan = engine.plan(&sql)?;
    let report = analyze(&plan);
    println!("\nplan:\n{}", plan.render());
    println!("correlations:");
    for info in &report.nodes {
        println!("  node {} partitions by {}", info.id, info.pk);
    }
    println!(
        "  transit-correlated pairs: {:?}",
        report.transit_correlated
    );
    println!("  job-flow edges (parent→child): {:?}", report.job_flow);

    for strategy in [Strategy::Hive, Strategy::YSmart] {
        let outcome = engine.execute_sql(&sql, strategy)?;
        println!(
            "\n{strategy}: {} job(s), simulated {:.1}s",
            outcome.jobs,
            outcome.total_s()
        );
        for j in &outcome.metrics.jobs {
            println!("  {j}");
        }
        println!(
            "  answer: {:?}",
            outcome.rows.first().map(ToString::to_string)
        );
    }
    Ok(())
}
