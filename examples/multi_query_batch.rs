//! Multi-query batch translation: Rule 1 across queries.
//!
//! ```sh
//! cargo run --release --example multi_query_batch
//! ```
//!
//! A nightly reporting workload often runs many aggregations over the same
//! fact table. Translated one by one, each query scans the table again;
//! translated as a batch, YSmart's Rule 1 (input + transit correlation)
//! applies *across* queries, so all same-key aggregations share one job and
//! one scan — the multi-query sharing the paper's related-work section
//! discusses (MRShare), expressed with YSmart's own correlation machinery.

use ysmart::core::{Strategy, YSmart};
use ysmart::datagen::{ClicksGen, ClicksSpec};
use ysmart::mapred::ClusterConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stream = ClicksGen::generate(&ClicksSpec {
        users: 100,
        clicks_per_user: 40,
        seed: 11,
        ..ClicksSpec::default()
    });

    // Three per-user reports plus one per-category report.
    let reports = [
        "SELECT uid, count(*) AS clicks FROM clicks GROUP BY uid",
        "SELECT uid, count(distinct cid) AS categories FROM clicks GROUP BY uid",
        "SELECT uid, max(ts) - min(ts) AS session_span FROM clicks GROUP BY uid",
        "SELECT cid, count(*) AS hits FROM clicks GROUP BY cid",
    ];

    let fresh = || -> Result<YSmart, Box<dyn std::error::Error>> {
        let mut e = YSmart::new(
            ysmart::datagen::clicks_catalog(),
            ClusterConfig::small_local(),
        );
        e.load_table("clicks", &stream.clicks)?;
        e.cluster.config.size_multiplier = 1e5; // model a ~10 GB table
        Ok(e)
    };

    // One at a time: every query is its own job with its own scan.
    let mut individual_time = 0.0;
    let mut individual_jobs = 0;
    let mut individual_read = 0u64;
    {
        let mut engine = fresh()?;
        for sql in &reports {
            let out = engine.execute_sql(sql, Strategy::YSmart)?;
            individual_time += out.total_s();
            individual_jobs += out.jobs;
            individual_read += out.metrics.total_hdfs_read();
        }
    }

    // As a batch: the three uid-keyed reports share one job and one scan.
    let mut engine = fresh()?;
    let batch = engine.execute_batch(&reports, Strategy::YSmart)?;

    println!("4 reports over the same click stream:");
    println!(
        "  one-by-one: {individual_jobs} jobs, {:.1} GB read, {:.0}s simulated",
        individual_read as f64 / 1e9,
        individual_time
    );
    println!(
        "  as a batch: {} jobs, {:.1} GB read, {:.0}s simulated",
        batch.jobs,
        batch.metrics.total_hdfs_read() as f64 / 1e9,
        batch.metrics.total_s()
    );
    for (i, (rows, _)) in batch.queries.iter().enumerate() {
        println!("  report {i}: {} result rows", rows.len());
    }
    Ok(())
}
