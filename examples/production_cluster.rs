//! Production-cluster dynamics (§VII-F): why job count matters even more
//! under contention.
//!
//! ```sh
//! cargo run --release --example production_cluster
//! ```
//!
//! Runs Q17 on the simulated Facebook-profile cluster (co-running
//! workloads steal slots, tasks slow down, and scheduling gaps of up to
//! 5.4 minutes precede each job launch) and on an isolated cluster of the
//! same size, showing that YSmart's advantage *grows* with contention —
//! each extra Hive job pays another scheduling gap. Also demonstrates
//! MapReduce fault tolerance: with task-failure injection the answer is
//! unchanged, only slower.

use ysmart::core::{Strategy, YSmart};
use ysmart::datagen::TpchSpec;
use ysmart::mapred::{ClusterConfig, FailureModel};
use ysmart::queries::tpch_workloads;

fn run(w: &ysmart::queries::Workload, config: ClusterConfig, label: &str) {
    println!("-- {label} --");
    let mut ratio = Vec::new();
    for strategy in [Strategy::YSmart, Strategy::Hive] {
        let mut engine = YSmart::new(w.catalog.clone(), config.clone());
        w.load_into(&mut engine).unwrap();
        let real = engine.cluster.hdfs.total_bytes().max(1);
        engine.cluster.config.size_multiplier = 1000.0e9 / real as f64;
        let out = engine.execute_sql(&w.sql, strategy).unwrap();
        println!(
            "  {strategy:<8} {} jobs  {:>8.1}s (of which {:>7.1}s scheduling gaps), {} re-executed task attempts",
            out.jobs,
            out.total_s(),
            out.metrics.jobs.iter().map(|j| j.startup_delay_s).sum::<f64>(),
            out.metrics.jobs.iter().map(|j| j.failed_attempts).sum::<usize>(),
        );
        ratio.push(out.total_s());
    }
    println!("  Hive/YSmart = {:.2}x", ratio[1] / ratio[0]);
}

fn main() {
    let tpch = tpch_workloads(&TpchSpec {
        scale: 8.0,
        seed: 7,
    });
    let w = tpch.iter().find(|w| w.name == "q17").unwrap();

    // Isolated cluster of the Facebook profile (no contention).
    let mut isolated = ClusterConfig::facebook(1);
    isolated.contention = None;
    run(w, isolated, "isolated 747-node cluster, 1 TB");

    // The production profile with co-running workloads.
    run(
        w,
        ClusterConfig::facebook(1),
        "production cluster (contention)",
    );

    // Fault tolerance: 5% of task attempts fail and re-execute.
    let mut flaky = ClusterConfig::facebook(1);
    flaky.failures = Some(FailureModel {
        probability: 0.05,
        seed: 99,
    });
    run(w, flaky, "production cluster + 5% task failures");
}
