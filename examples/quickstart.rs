//! Quickstart: translate and execute one SQL query with YSmart.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a tiny catalog, loads rows into the simulated cluster, and runs
//! the same query under YSmart and under the one-operation-to-one-job
//! baseline (Hive), printing results, job counts and simulated times.

use ysmart::core::{Strategy, YSmart};
use ysmart::mapred::ClusterConfig;
use ysmart::plan::Catalog;
use ysmart::rel::{row, DataType, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the base tables.
    let mut catalog = Catalog::new();
    catalog.add_table(
        "visits",
        Schema::of(
            "visits",
            &[
                ("user_id", DataType::Int),
                ("page", DataType::Str),
                ("ts", DataType::Int),
            ],
        ),
    );

    // 2. Create an engine over a simulated cluster and load data.
    let mut engine = YSmart::new(catalog, ClusterConfig::small_local());
    engine.load_table(
        "visits",
        &[
            row![1i64, "home", 10i64],
            row![1i64, "search", 12i64],
            row![1i64, "checkout", 15i64],
            row![2i64, "home", 11i64],
            row![2i64, "search", 14i64],
        ],
    )?;

    // 3. A query with an intra-query correlation: the self-join and the
    //    aggregation share the partition key `user_id`, so YSmart runs
    //    everything in one MapReduce job.
    let sql = "SELECT v1.user_id, count(*) AS transitions \
               FROM visits AS v1, visits AS v2 \
               WHERE v1.user_id = v2.user_id AND v1.ts < v2.ts \
               GROUP BY v1.user_id";

    for strategy in [Strategy::Hive, Strategy::YSmart] {
        let outcome = engine.execute_sql(sql, strategy)?;
        println!(
            "{strategy}: {} job(s), simulated {:.1}s",
            outcome.jobs,
            outcome.total_s()
        );
        for r in &outcome.rows {
            println!("  {r}");
        }
    }
    Ok(())
}
