//! Decision-support workloads: the paper's TPC-H-derived queries.
//!
//! ```sh
//! cargo run --release --example tpch_dss
//! ```
//!
//! Generates a TPC-H-shaped database, then runs Q17, Q18 and Q21 under
//! every translation strategy, reporting job counts, simulated times and
//! the I/O savings (HDFS bytes read, bytes shuffled) that correlation
//! merging buys.

use ysmart::core::{Strategy, YSmart};
use ysmart::datagen::TpchSpec;
use ysmart::mapred::ClusterConfig;
use ysmart::queries::tpch_workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workloads = tpch_workloads(&TpchSpec {
        scale: 0.5,
        seed: 7,
    });
    for w in &workloads {
        if w.name == "q21-subtree" {
            continue; // part of q21 proper
        }
        println!("== {} ==", w.name);
        for strategy in Strategy::all() {
            let mut engine = YSmart::new(w.catalog.clone(), ClusterConfig::small_local());
            w.load_into(&mut engine)?;
            // Model a 10 GB volume over the generated instance.
            let real = engine.cluster.hdfs.total_bytes().max(1);
            engine.cluster.config.size_multiplier = 10.0e9 / real as f64;
            match engine.execute_sql(&w.sql, strategy) {
                Ok(out) => println!(
                    "  {strategy:<14} {} jobs  {:>8.1}s  read {:>6.2} GB  shuffled {:>6.2} GB  ({} rows)",
                    out.jobs,
                    out.total_s(),
                    out.metrics.total_hdfs_read() as f64 / 1e9,
                    out.metrics.total_shuffle_bytes() as f64 / 1e9,
                    out.rows.len(),
                ),
                Err(e) => println!("  {strategy:<14} DNF: {e}"),
            }
        }
    }
    Ok(())
}
