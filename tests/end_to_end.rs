//! Cross-crate integration tests through the `ysmart` facade: SQL text in,
//! verified rows and metrics out, across cluster configurations.

use ysmart::core::{Strategy, YSmart};
use ysmart::datagen::{ClicksGen, ClicksSpec, TpchSpec};
use ysmart::mapred::{ClusterConfig, Compression, FailureModel};
use ysmart::queries::rows_approx_equal;
use ysmart::queries::workloads::q_csa_sql;
use ysmart::queries::{clicks_workloads, tpch_workloads};
use ysmart::rel::Row;

fn sorted(rows: &[Row]) -> Vec<Row> {
    let mut v = rows.to_vec();
    v.sort();
    v
}

/// The same query produces the same rows on radically different cluster
/// shapes — the simulator's cost model must never affect results.
#[test]
fn results_invariant_across_cluster_configs() {
    let spec = ClicksSpec {
        users: 20,
        clicks_per_user: 25,
        seed: 3,
        ..ClicksSpec::default()
    };
    let stream = ClicksGen::generate(&spec);
    let sql = q_csa_sql(spec.category_x, spec.category_y);
    let configs = [
        ClusterConfig::small_local(),
        ClusterConfig::ec2(10),
        ClusterConfig::ec2(100),
        ClusterConfig::facebook(7),
        ClusterConfig {
            compression: Some(Compression::default()),
            ..ClusterConfig::default()
        },
        ClusterConfig {
            failures: Some(FailureModel {
                probability: 0.3,
                seed: 18,
            }),
            ..ClusterConfig::default()
        },
    ];
    let mut reference: Option<Vec<Row>> = None;
    for (i, config) in configs.into_iter().enumerate() {
        let mut engine = YSmart::new(ysmart::datagen::clicks_catalog(), config);
        engine.load_table("clicks", &stream.clicks).unwrap();
        let out = engine.execute_sql(&sql, Strategy::YSmart).unwrap();
        let got = sorted(&out.rows);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "config #{i} changed the results"),
        }
    }
}

/// Simulated time scales with data volume; job counts and results do not.
#[test]
fn size_multiplier_scales_time_only() {
    let tpch = tpch_workloads(&TpchSpec {
        scale: 0.1,
        seed: 4,
    });
    let w = tpch.iter().find(|w| w.name == "q17").unwrap();
    let mut times = Vec::new();
    let mut rows = Vec::new();
    for target in [1.0e9, 100.0e9] {
        let mut engine = YSmart::new(w.catalog.clone(), ClusterConfig::small_local());
        w.load_into(&mut engine).unwrap();
        let real = engine.cluster.hdfs.total_bytes().max(1);
        engine.cluster.config.size_multiplier = target / real as f64;
        let out = engine.execute_sql(&w.sql, Strategy::YSmart).unwrap();
        times.push(out.total_s());
        rows.push(sorted(&out.rows));
        assert_eq!(out.jobs, 2);
    }
    // Different multipliers change map-task boundaries, hence float
    // summation order: compare with tolerance.
    assert!(rows_approx_equal(&rows[0], &rows[1], false));
    assert!(times[1] > times[0] * 10.0, "{times:?}");
}

/// YSmart reads and shuffles strictly fewer bytes than Hive on every
/// correlated workload query — the mechanism behind every figure.
#[test]
fn ysmart_saves_io_on_correlated_queries() {
    let tpch = tpch_workloads(&TpchSpec {
        scale: 0.2,
        seed: 5,
    });
    for name in ["q17", "q18", "q21"] {
        let w = tpch.iter().find(|w| w.name == name).unwrap();
        let mut stats = Vec::new();
        for strategy in [Strategy::YSmart, Strategy::Hive] {
            let mut engine = YSmart::new(w.catalog.clone(), ClusterConfig::small_local());
            w.load_into(&mut engine).unwrap();
            let out = engine.execute_sql(&w.sql, strategy).unwrap();
            stats.push((
                out.jobs,
                out.metrics.total_hdfs_read(),
                out.metrics.total_shuffle_bytes(),
            ));
        }
        let (ys, hive) = (stats[0], stats[1]);
        assert!(ys.0 < hive.0, "{name}: fewer jobs");
        assert!(ys.1 < hive.1, "{name}: fewer HDFS bytes read");
        assert!(ys.2 <= hive.2, "{name}: no more shuffle bytes");
    }
}

/// Failure injection changes time, never answers, end to end.
#[test]
fn fault_tolerance_end_to_end() {
    let ws = clicks_workloads(&ClicksSpec {
        users: 12,
        clicks_per_user: 15,
        seed: 6,
        ..ClicksSpec::default()
    });
    let w = ws.iter().find(|w| w.name == "q-csa").unwrap();
    let clean = {
        let mut e = YSmart::new(w.catalog.clone(), ClusterConfig::default());
        w.load_into(&mut e).unwrap();
        e.execute_sql(&w.sql, Strategy::YSmart).unwrap()
    };
    let flaky = {
        let cfg = ClusterConfig {
            // Small blocks create enough map tasks for the injector to hit.
            hdfs_block_mb: 0.0005,
            failures: Some(FailureModel {
                probability: 0.3,
                seed: 18,
            }),
            ..ClusterConfig::default()
        };
        let mut e = YSmart::new(w.catalog.clone(), cfg);
        w.load_into(&mut e).unwrap();
        e.execute_sql(&w.sql, Strategy::YSmart).unwrap()
    };
    assert_eq!(sorted(&clean.rows), sorted(&flaky.rows));
    let failed: usize = flaky.metrics.jobs.iter().map(|j| j.failed_attempts).sum();
    assert!(failed > 0);
    assert!(flaky.total_s() > clean.total_s());
}

/// A translated chain leaves its intermediate files in HDFS under `tmp/`
/// and the final result under `out/` (the materialisation the paper's
/// merging avoids paying repeatedly).
#[test]
fn intermediate_materialisation_visible_in_hdfs() {
    let tpch = tpch_workloads(&TpchSpec {
        scale: 0.1,
        seed: 8,
    });
    let w = tpch.iter().find(|w| w.name == "q17").unwrap();
    let mut engine = YSmart::new(w.catalog.clone(), ClusterConfig::default());
    w.load_into(&mut engine).unwrap();
    engine.execute_sql(&w.sql, Strategy::Hive).unwrap();
    let tmp_files = engine
        .cluster
        .hdfs
        .paths()
        .filter(|p| p.starts_with("tmp/"))
        .count();
    assert_eq!(
        tmp_files, 3,
        "Hive's 4-job chain materialises 3 intermediates"
    );
}

/// Errors carry enough structure to report the paper's DNF cases.
#[test]
fn dnf_cases_are_classified() {
    let ws = clicks_workloads(&ClicksSpec {
        users: 20,
        clicks_per_user: 25,
        seed: 9,
        ..ClicksSpec::default()
    });
    let w = ws.iter().find(|w| w.name == "q-csa").unwrap();

    let mut cfg = ClusterConfig::small_local();
    cfg.disk_capacity_mb = 0.0001;
    let mut engine = YSmart::new(w.catalog.clone(), cfg);
    w.load_into(&mut engine).unwrap();
    let e = engine.execute_sql(&w.sql, Strategy::Pig).unwrap_err();
    assert!(e.is_disk_full());

    let mut cfg = ClusterConfig::small_local();
    cfg.time_limit_s = Some(0.001);
    let mut engine = YSmart::new(w.catalog.clone(), cfg);
    w.load_into(&mut engine).unwrap();
    let e = engine.execute_sql(&w.sql, Strategy::Hive).unwrap_err();
    assert!(e.is_time_limit());
}
