//! End-to-end fault-tolerance invariance: node-loss injection, chain retry
//! with backoff, and checkpointed recovery must change *simulated time*
//! only — every answer is checked against the relational oracle.

use std::collections::BTreeMap;

use ysmart::core::{FaultOptions, Strategy, YSmart};
use ysmart::mapred::{ClusterConfig, NodeFailureModel, RetryPolicy};
use ysmart::plan::build_plan;
use ysmart::queries::workloads::Workload;
use ysmart::queries::{clicks_workloads, oracle_execute, rows_approx_equal};
use ysmart::rel::Row;
use ysmart::sql::parse;

fn workload() -> Workload {
    clicks_workloads(&ysmart::datagen::ClicksSpec {
        users: 12,
        clicks_per_user: 15,
        seed: 6,
        ..ysmart::datagen::ClicksSpec::default()
    })
    .into_iter()
    .find(|w| w.name == "q-csa")
    .unwrap()
}

fn oracle_rows(w: &Workload) -> Vec<Row> {
    let plan = build_plan(&w.catalog, &parse(&w.sql).unwrap()).unwrap();
    let tables: BTreeMap<String, Vec<Row>> = w
        .tables
        .iter()
        .map(|(n, rows)| ((*n).to_string(), rows.clone()))
        .collect();
    oracle_execute(&plan, &tables).unwrap().rows
}

fn run(w: &Workload, strategy: Strategy, faults: &FaultOptions) -> ysmart::core::QueryOutcome {
    // Small blocks create enough map tasks for the injectors to hit.
    let mut cfg = ClusterConfig {
        hdfs_block_mb: 0.0005,
        ..ClusterConfig::default()
    };
    faults.apply(&mut cfg);
    let mut engine = YSmart::new(w.catalog.clone(), cfg);
    w.load_into(&mut engine).unwrap();
    engine.execute_sql(&w.sql, strategy).unwrap()
}

/// Sweep node-failure probability and seed; every run — including those
/// that lost nodes or retried whole jobs — must match the oracle exactly,
/// and injected runs must cost more simulated time than the clean run.
#[test]
fn node_failures_never_change_answers() {
    let w = workload();
    let expected = oracle_rows(&w);
    let clean = run(&w, Strategy::YSmart, &FaultOptions::default());
    assert!(rows_approx_equal(&clean.rows, &expected, false));

    let mut saw_node_loss = false;
    let mut saw_reexecution = false;
    let mut saw_retry = false;
    for probability in [0.15, 0.35, 0.6] {
        for seed in 0..6u64 {
            let mut faults = FaultOptions::injected(probability, seed);
            // The sweep must survive even unlucky seeds, so retry hard.
            faults.retry = Some(RetryPolicy {
                max_retries: 24,
                backoff_base_s: 5.0,
                backoff_factor: 2.0,
                ..RetryPolicy::default()
            });
            let out = run(&w, Strategy::YSmart, &faults);
            assert!(
                rows_approx_equal(&out.rows, &expected, false),
                "p={probability} seed={seed} changed the answer"
            );
            let nodes_lost: usize = out.metrics.jobs.iter().map(|j| j.nodes_lost).sum();
            if nodes_lost > 0 {
                saw_node_loss = true;
            }
            // A dead node may happen to hold no tasks; when it did hold
            // some, the re-execution must be visible and must cost time.
            if out.metrics.total_reexecuted_tasks() > 0 {
                saw_reexecution = true;
                assert!(
                    out.metrics.jobs.iter().map(|j| j.wasted_s).sum::<f64>() > 0.0,
                    "p={probability} seed={seed}: re-execution without waste"
                );
                assert!(
                    out.total_s() > clean.total_s(),
                    "p={probability} seed={seed}: recovery must cost time"
                );
            }
            if out.metrics.retries > 0 {
                saw_retry = true;
                assert!(out.metrics.backoff_delay_s > 0.0);
                assert!(out.metrics.failed_attempt_s > 0.0);
            }
        }
    }
    assert!(saw_node_loss, "the sweep must exercise node loss");
    assert!(saw_reexecution, "the sweep must re-execute lost tasks");
    assert!(saw_retry, "the sweep must exercise whole-job retries");
}

/// Hive's longer chains recover from the checkpoint: a mid-chain failure
/// re-runs only the failed job, earlier outputs stay in HDFS, and the final
/// answer still matches the oracle.
#[test]
fn checkpointed_chain_recovery_matches_oracle() {
    let w = workload();
    let expected = oracle_rows(&w);
    let mut saw_midchain_recovery = false;
    for seed in 0..12u64 {
        let faults = FaultOptions {
            task_failures: None,
            node_failures: Some(NodeFailureModel {
                probability: 0.5,
                seed,
            }),
            retry: Some(RetryPolicy {
                max_retries: 24,
                backoff_base_s: 5.0,
                backoff_factor: 2.0,
                ..RetryPolicy::default()
            }),
            ..FaultOptions::default()
        };
        let out = run(&w, Strategy::Hive, &faults);
        assert!(
            rows_approx_equal(&out.rows, &expected, false),
            "seed={seed} changed the answer"
        );
        assert!(out.jobs > 1, "Hive must run a multi-job chain");
        // A later job retried while an earlier one succeeded first try:
        // the chain resumed from its checkpoint.
        if out.metrics.jobs[0].attempt == 0
            && out.metrics.jobs.iter().skip(1).any(|j| j.attempt > 0)
        {
            saw_midchain_recovery = true;
        }
    }
    assert!(
        saw_midchain_recovery,
        "12 seeds at p=0.5 must recover mid-chain at least once"
    );
}

/// Byte corruption end to end: checksummed blocks fail over, shuffle
/// segments are re-fetched, torn records are skipped — and every answer
/// still matches the relational oracle bit for bit, for both translators.
#[test]
fn corruption_never_changes_answers() {
    let w = workload();
    let expected = oracle_rows(&w);
    let mut events = 0u64;
    for strategy in [Strategy::YSmart, Strategy::Hive] {
        for rate in [0.0, 0.01, 0.05] {
            for seed in 0..3u64 {
                let out = run(&w, strategy, &FaultOptions::corrupted(rate, seed));
                assert!(
                    rows_approx_equal(&out.rows, &expected, false),
                    "{strategy} rate={rate} seed={seed} changed the answer"
                );
                let run_events = out.metrics.total_integrity_events();
                if rate == 0.0 {
                    assert_eq!(
                        run_events, 0,
                        "{strategy} seed={seed}: clean run saw events"
                    );
                }
                // With a corruption model configured the checksum pass is
                // always paid, whether or not it catches anything.
                assert!(out.metrics.total_verify_s() > 0.0);
                events += run_events;
            }
        }
    }
    assert!(events > 0, "the sweep must exercise integrity recovery");
}

/// Without injection every recovery field is zero, end to end.
#[test]
fn recovery_fields_zero_end_to_end_without_injection() {
    let w = workload();
    let out = run(&w, Strategy::YSmart, &FaultOptions::default());
    assert_eq!(out.metrics.retries, 0);
    assert_eq!(out.metrics.backoff_delay_s, 0.0);
    assert_eq!(out.metrics.failed_attempt_s, 0.0);
    assert_eq!(out.metrics.recovery_s(), 0.0);
    assert_eq!(out.metrics.total_reexecuted_tasks(), 0);
    for j in &out.metrics.jobs {
        assert_eq!(j.nodes_lost, 0);
        assert_eq!(j.wasted_s, 0.0);
        assert_eq!(j.attempt, 0);
    }
}
