//! Property-based tests: on randomly generated data and randomly
//! parameterised queries, every translation strategy must agree with the
//! in-memory oracle. This is the strongest statement of the merging rules'
//! soundness — Rule 1–4 merging may never change a result set.

use std::collections::BTreeMap;

use proptest::prelude::*;
use ysmart::core::{Strategy, YSmart};
use ysmart::mapred::ClusterConfig;
use ysmart::plan::Catalog;
use ysmart::queries::{oracle_execute, rows_approx_equal};
use ysmart::rel::{DataType, Row, Schema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "events",
        Schema::of(
            "events",
            &[
                ("uid", DataType::Int),
                ("kind", DataType::Int),
                ("amount", DataType::Int),
                ("ts", DataType::Int),
            ],
        ),
    );
    c.add_table(
        "users",
        Schema::of(
            "users",
            &[("uid", DataType::Int), ("region", DataType::Int)],
        ),
    );
    c
}

prop_compose! {
    fn arb_events(max_rows: usize)
        (rows in prop::collection::vec((0..8i64, 0..4i64, -20..100i64, 0..50i64), 1..max_rows))
        -> Vec<Row>
    {
        rows.into_iter()
            .map(|(u, k, a, t)| Row::new(vec![
                Value::Int(u), Value::Int(k), Value::Int(a), Value::Int(t),
            ]))
            .collect()
    }
}

prop_compose! {
    fn arb_users()
        (rows in prop::collection::vec((0..10i64, 0..3i64), 1..12))
        -> Vec<Row>
    {
        rows.into_iter()
            .map(|(u, r)| Row::new(vec![Value::Int(u), Value::Int(r)]))
            .collect()
    }
}

/// Runs `sql` under every strategy and checks each against the oracle.
fn check_all_strategies(sql: &str, events: &[Row], users: &[Row]) {
    let catalog = catalog();
    let mut tables = BTreeMap::new();
    tables.insert("events".to_string(), events.to_vec());
    tables.insert("users".to_string(), users.to_vec());
    let plan = {
        let q = ysmart::sql::parse(sql).unwrap();
        ysmart::plan::build_plan(&catalog, &q).unwrap()
    };
    let expected = oracle_execute(&plan, &tables).unwrap().rows;
    for strategy in Strategy::all() {
        let mut engine = YSmart::new(catalog.clone(), ClusterConfig::default());
        engine.load_table("events", events).unwrap();
        engine.load_table("users", users).unwrap();
        let out = engine
            .execute_sql(sql, strategy)
            .unwrap_or_else(|e| panic!("{strategy} on `{sql}`: {e}"));
        assert!(
            rows_approx_equal(&out.rows, &expected, false),
            "{strategy} on `{sql}`: {} vs oracle {} rows",
            out.rows.len(),
            expected.len(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Grouped aggregation with a random filter and aggregate function.
    #[test]
    fn grouped_aggregation_agrees(
        events in arb_events(40),
        users in arb_users(),
        threshold in -20..100i64,
        func in prop::sample::select(vec!["count(*)", "sum(amount)", "avg(amount)", "min(amount)", "max(amount)", "count(distinct kind)"]),
    ) {
        let sql = format!(
            "SELECT uid, {func} FROM events WHERE amount > {threshold} GROUP BY uid"
        );
        check_all_strategies(&sql, &events, &users);
    }

    /// Join between two tables with a random join type and residual.
    #[test]
    fn two_table_join_agrees(
        events in arb_events(30),
        users in arb_users(),
        jt in prop::sample::select(vec!["JOIN", "LEFT OUTER JOIN", "RIGHT OUTER JOIN", "FULL OUTER JOIN"]),
        cut in 0..4i64,
    ) {
        let sql = format!(
            "SELECT users.uid, region, amount FROM users {jt} events \
             ON users.uid = events.uid AND kind >= {cut}"
        );
        // ON residuals only make sense on the probe side for outer joins in
        // our subset when they reference the inner table; keep them on
        // events (the right side) for LEFT, which is the common shape.
        if jt == "JOIN" || jt == "LEFT OUTER JOIN" {
            check_all_strategies(&sql, &events, &users);
        } else {
            let sql = format!(
                "SELECT users.uid, region, amount FROM users {jt} events ON users.uid = events.uid"
            );
            check_all_strategies(&sql, &events, &users);
        }
    }

    /// The paper's core pattern: a self-join plus an aggregation on the
    /// same key, which YSmart merges into one job.
    #[test]
    fn self_join_aggregation_agrees(
        events in arb_events(30),
        users in arb_users(),
        k1 in 0..4i64,
        k2 in 0..4i64,
    ) {
        let sql = format!(
            "SELECT e1.uid, count(*) FROM events AS e1, events AS e2 \
             WHERE e1.uid = e2.uid AND e1.ts < e2.ts \
               AND e1.kind = {k1} AND e2.kind = {k2} \
             GROUP BY e1.uid"
        );
        check_all_strategies(&sql, &events, &users);
    }

    /// Aggregation over a join output (job-flow correlation shape).
    #[test]
    fn join_then_aggregate_agrees(
        events in arb_events(30),
        users in arb_users(),
    ) {
        let sql = "SELECT users.uid, sum(amount) FROM users, events \
                   WHERE users.uid = events.uid GROUP BY users.uid";
        check_all_strategies(sql, &events, &users);
    }

    /// First-aggregation-then-join (the flattening shape of Q17/Q18/Q21).
    #[test]
    fn aggregate_then_join_agrees(
        events in arb_events(30),
        users in arb_users(),
        cut in -20..40i64,
    ) {
        let sql = format!(
            "SELECT t.uid, t.total, region FROM \
             (SELECT uid, sum(amount) AS total FROM events GROUP BY uid) AS t, users \
             WHERE t.uid = users.uid AND t.total > {cut}"
        );
        check_all_strategies(&sql, &events, &users);
    }

    /// DISTINCT, ORDER BY and LIMIT compose with the merged jobs.
    #[test]
    fn distinct_sort_limit_agrees(
        events in arb_events(30),
        users in arb_users(),
        n in 1..10u64,
    ) {
        let sql = format!("SELECT DISTINCT uid, kind FROM events ORDER BY uid, kind LIMIT {n}");
        // Ordered comparison: sort+limit output is deterministic.
        let catalog = catalog();
        let mut tables = BTreeMap::new();
        tables.insert("events".to_string(), events.clone());
        tables.insert("users".to_string(), users.clone());
        let plan = {
            let q = ysmart::sql::parse(&sql).unwrap();
            ysmart::plan::build_plan(&catalog, &q).unwrap()
        };
        let expected = oracle_execute(&plan, &tables).unwrap().rows;
        for strategy in [Strategy::Hive, Strategy::YSmart] {
            let mut engine = YSmart::new(catalog.clone(), ClusterConfig::default());
            engine.load_table("events", &events).unwrap();
            engine.load_table("users", &users).unwrap();
            let out = engine.execute_sql(&sql, strategy).unwrap();
            prop_assert!(
                rows_approx_equal(&out.rows, &expected, true),
                "{strategy}: ordered mismatch"
            );
        }
    }
}
