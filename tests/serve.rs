//! End-to-end chaos test of the `ysmart serve` service: kill the process
//! at every journaled point mid-workload (simulated by truncating the
//! journal file, since a crash leaves exactly a byte prefix of the
//! append-only journal), restart, and require the combined answers to be
//! bit-identical to an uninterrupted session — every query answered
//! exactly once, never twice, never differently.

use std::collections::BTreeSet;
use std::path::PathBuf;

use ysmart::core::{Strategy, YSmart};
use ysmart::datagen::{clicks_catalog, ClicksGen, ClicksSpec};
use ysmart::mapred::journal::{recover, JournalRecord, JOURNAL_MAGIC};
use ysmart::mapred::ClusterConfig;
use ysmart::rel::codec::encode_line;
use ysmart::serve::{Response, ServeError, ServeOptions, Service};

fn demo_engine() -> YSmart {
    let spec = ClicksSpec {
        users: 12,
        clicks_per_user: 10,
        ..ClicksSpec::default()
    };
    let stream = ClicksGen::generate(&spec);
    let lines: Vec<String> = stream.clicks.iter().map(encode_line).collect();
    let mut engine = YSmart::new(clicks_catalog(), ClusterConfig::small_local());
    engine.load_table_lines("clicks", lines);
    engine
}

/// The scripted session: two runs, three queries, then a graceful quit.
const SCRIPT: &[&str] = &[
    "SELECT cid, count(*) AS clicks FROM clicks GROUP BY cid",
    "SELECT page_id, count(*) AS n FROM clicks GROUP BY page_id",
    "!run",
    "SELECT uid, count(*) AS c FROM clicks GROUP BY uid",
    "!quit",
];

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ysmart-serve-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn options(journal: PathBuf) -> ServeOptions {
    let mut o = ServeOptions::new(Strategy::YSmart);
    o.journal_path = Some(journal);
    o
}

/// A query answer with the `recovered` flag normalized away, so answers
/// from recovery compare equal to the uninterrupted originals.
fn results_of(responses: &[Response]) -> Vec<Response> {
    responses
        .iter()
        .filter(|r| matches!(r, Response::Result { .. }))
        .cloned()
        .map(|r| match r {
            Response::Result {
                id,
                label,
                header,
                rows,
                elapsed_s,
                jobs,
                recovered: _,
            } => Response::Result {
                id,
                label,
                header,
                rows,
                elapsed_s,
                jobs,
                recovered: false,
            },
            other => other,
        })
        .collect()
}

fn result_id(r: &Response) -> u64 {
    match r {
        Response::Result { id, .. } => *id,
        _ => unreachable!("results_of returns only Result"),
    }
}

/// Drives the whole script against a fresh service on `journal`; returns
/// (all responses, final journal bytes).
fn uninterrupted_session(journal: &PathBuf) -> (Vec<Response>, Vec<u8>) {
    let (mut service, recovery) =
        Service::open(demo_engine(), options(journal.clone())).expect("open");
    assert!(recovery.is_empty(), "fresh journal has nothing to recover");
    let mut responses = Vec::new();
    for line in SCRIPT {
        responses.extend(service.handle_line(line));
    }
    let bytes = std::fs::read(journal).expect("journal persisted");
    (responses, bytes)
}

/// Segments a recovered record stream the way the service does (runs of
/// `Admitted` records, then their run's records) and returns, per global
/// query id, whether the journal already holds its terminal disposition —
/// i.e. whether the crashed process had already answered it.
fn journal_ids(records: &[JournalRecord]) -> (BTreeSet<u64>, BTreeSet<u64>) {
    let mut all = BTreeSet::new();
    let mut answered = BTreeSet::new();
    let mut batch: Vec<u64> = Vec::new();
    let mut in_run = false;
    for rec in records {
        match rec {
            JournalRecord::Admitted { id, .. } => {
                if in_run {
                    batch.clear();
                    in_run = false;
                }
                batch.push(*id);
                all.insert(*id);
            }
            JournalRecord::Done { id, .. } => {
                in_run = true;
                answered.insert(batch[*id as usize]);
            }
            JournalRecord::JobDone { .. } => in_run = true,
        }
    }
    (all, answered)
}

fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![JOURNAL_MAGIC.len()];
    let mut off = JOURNAL_MAGIC.len();
    while off + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 12 + len;
        boundaries.push(off);
    }
    boundaries
}

/// The headline guarantee, end to end: for every kill point — every
/// record boundary plus torn mid-frame cuts — a restarted service
/// delivers exactly the answers the dead process still owed, bit-identical
/// to the uninterrupted session's.
#[test]
fn killing_the_service_at_any_journal_point_loses_and_corrupts_nothing() {
    let journal = temp_path("chaos.wal");
    let _ = std::fs::remove_file(&journal);
    let (baseline, bytes) = uninterrupted_session(&journal);
    let baseline_results = results_of(&baseline);
    assert_eq!(baseline_results.len(), 3, "script answers three queries");

    let mut cuts = frame_boundaries(&bytes);
    // Torn tails: cuts inside a frame (including inside the magic).
    cuts.extend([3, 20, bytes.len() - 9, bytes.len() - 1]);
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        let cut_journal = temp_path(&format!("chaos-cut-{cut}.wal"));
        std::fs::write(&cut_journal, &bytes[..cut]).expect("write prefix");
        let (all_ids, answered_before) = {
            let recovered = recover(&bytes[..cut]).expect("boundary or torn prefix");
            journal_ids(&recovered.records)
        };

        let (mut service, recovery) =
            Service::open(demo_engine(), options(cut_journal.clone())).expect("reopen");
        let mut responses = recovery;
        // The operator finishes the interrupted session: run whatever was
        // restored to the pending queue, then quit.
        responses.extend(service.handle_line("!run"));
        responses.extend(service.handle_line("!quit"));

        let got = results_of(&responses);
        let got_ids: BTreeSet<u64> = got.iter().map(result_id).collect();
        assert_eq!(
            got_ids.len(),
            got.len(),
            "kill at byte {cut}: a query was answered twice"
        );
        for r in &got {
            let id = result_id(r);
            let want = baseline_results
                .iter()
                .find(|b| result_id(b) == id)
                .unwrap_or_else(|| panic!("kill at byte {cut}: unknown query id {id}"));
            assert_eq!(r, want, "kill at byte {cut}: answer for q{id} diverged");
            assert!(
                !answered_before.contains(&id),
                "kill at byte {cut}: q{id} was answered before the kill and again after"
            );
        }
        // Everything the journal admitted is accounted for: answered
        // before the kill, or answered (identically) after recovery.
        for id in &all_ids {
            assert!(
                answered_before.contains(id) || got_ids.contains(id),
                "kill at byte {cut}: q{id} was lost"
            );
        }
        let _ = std::fs::remove_file(&cut_journal);
    }
    let _ = std::fs::remove_file(&journal);
}

/// Recovery fast-forwards journaled jobs instead of re-executing them:
/// killing after the first run's commits must replay those jobs from the
/// journal (`jobs_replayed`), not burn them again (`jobs_executed`).
#[test]
fn recovery_reexecutes_only_work_past_the_last_checkpoint() {
    let journal = temp_path("checkpoint.wal");
    let _ = std::fs::remove_file(&journal);
    let (_, bytes) = uninterrupted_session(&journal);

    // Cut right before the final record (the last Done): the first run's
    // two queries are fully journaled; the second run's job committed but
    // its disposition did not.
    let boundaries = frame_boundaries(&bytes);
    let cut = boundaries[boundaries.len() - 2];
    let commits = recover(&bytes[..cut])
        .unwrap()
        .records
        .iter()
        .filter(|r| matches!(r, JournalRecord::JobDone { .. }))
        .count();
    assert!(commits >= 3, "all three single-job chains committed");
    let cut_journal = temp_path("checkpoint-cut.wal");
    std::fs::write(&cut_journal, &bytes[..cut]).expect("write prefix");

    let (service, recovery) =
        Service::open(demo_engine(), options(cut_journal.clone())).expect("reopen");
    assert_eq!(
        service.recovery_stats().jobs_replayed,
        commits,
        "every journaled commit fast-forwards"
    );
    assert_eq!(
        service.recovery_stats().jobs_executed,
        0,
        "no journaled work is re-executed"
    );
    // The interrupted query is re-answered from the replayed output.
    assert_eq!(results_of(&recovery).len(), 1);
    drop(service);
    let _ = std::fs::remove_file(&cut_journal);
    let _ = std::fs::remove_file(&journal);
}

/// Mid-stream corruption is a typed startup error, not a panic and not
/// silently wrong answers.
#[test]
fn corrupt_journal_is_a_typed_error_at_startup() {
    let journal = temp_path("corrupt.wal");
    let _ = std::fs::remove_file(&journal);
    let (_, bytes) = uninterrupted_session(&journal);

    let mut corrupt = bytes.clone();
    let mid = JOURNAL_MAGIC.len() + 14; // inside the first record's payload
    corrupt[mid] ^= 0x40;
    let corrupt_journal = temp_path("corrupt-flip.wal");
    std::fs::write(&corrupt_journal, &corrupt).expect("write corrupt");

    match Service::open(demo_engine(), options(corrupt_journal.clone())) {
        Err(ServeError::Journal(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("journal corrupt"), "typed message, got: {msg}");
        }
        Ok(_) => panic!("corrupt journal must not open"),
        Err(other) => panic!("wrong error class: {other}"),
    }
    let _ = std::fs::remove_file(&corrupt_journal);
    let _ = std::fs::remove_file(&journal);
}

/// The protocol's drain lifecycle: after `!drain`, new queries are
/// rejected with the typed draining error while already-admitted work
/// still runs to completion on `!quit`.
#[test]
fn drain_rejects_new_queries_but_completes_admitted_work() {
    let (mut service, _) =
        Service::open(demo_engine(), ServeOptions::new(Strategy::YSmart)).expect("open");
    let ack = service.handle_line(SCRIPT[0]);
    assert!(matches!(&ack[..], [Response::Info(_)]), "admission ack");
    assert!(service.is_ready());

    service.handle_line("!drain");
    assert!(!service.is_ready());
    let rejected = service.handle_line(SCRIPT[1]);
    let [Response::Rejected { error, .. }] = &rejected[..] else {
        panic!("post-drain submission must be rejected, got {rejected:?}");
    };
    assert!(
        error.contains("draining"),
        "typed draining rejection, got: {error}"
    );

    let responses = service.handle_line("!quit");
    assert_eq!(
        results_of(&responses).len(),
        1,
        "the admitted query still completes during drain: {responses:?}"
    );
}

/// Adversarial protocol input: malformed tenant prefixes, unknown tenants,
/// unknown commands and garbage SQL must all produce typed rejections —
/// never a panic, never a journal record, never a pending query.
#[test]
fn malformed_requests_are_rejected_without_panics_or_journal_writes() {
    let (mut service, _) =
        Service::open(demo_engine(), ServeOptions::new(Strategy::YSmart)).expect("open");
    let journal_len = service.journal_bytes().len();

    let rejected = [
        "@",                              // bare sigil
        "@tenant",                        // prefix without a query
        "@default ",                      // prefix with only whitespace after
        "@ SELECT cid FROM clicks",       // empty tenant name
        "@nosuch SELECT cid FROM clicks", // tenant not configured
        "SELECT nope FROM nowhere",       // SQL that does not translate
        "DROP TABLE clicks; --",          // unsupported statement
        "\u{1b}[2J\u{7}",                 // control-character garbage
    ];
    for line in rejected {
        let responses = service.handle_line(line);
        let [Response::Rejected { id, error, .. }] = &responses[..] else {
            panic!("{line:?}: expected one typed rejection, got {responses:?}");
        };
        assert!(id.is_none(), "{line:?}: rejection must not consume an id");
        assert!(!error.is_empty(), "{line:?}: error must say why");
    }
    let responses = service.handle_line("!frobnicate");
    assert!(
        matches!(&responses[..], [Response::Info(msg)] if msg.contains("unknown command")),
        "unknown commands get a help line, got {responses:?}"
    );

    assert_eq!(service.pending_count(), 0, "nothing malformed was admitted");
    assert_eq!(
        service.journal_bytes().len(),
        journal_len,
        "rejected lines must never reach the journal"
    );
    assert!(service.is_ready(), "the service shrugs it all off");

    // A well-formed query still works after the abuse, under both the
    // implicit default tenant and the explicit @default form.
    for line in [SCRIPT[0], &format!("@default {}", SCRIPT[1])] {
        let ack = service.handle_line(line);
        assert!(
            matches!(&ack[..], [Response::Info(msg)] if msg.starts_with("accepted")),
            "{line:?}: expected acceptance, got {ack:?}"
        );
    }
    assert_eq!(results_of(&service.handle_line("!run")).len(), 2);
}

/// With result reuse configured, a repeated query in a later `!run` batch
/// fast-forwards from the cache and answers with the same rows the first
/// execution produced.
#[test]
fn reuse_cache_persists_across_run_batches() {
    let mut opts = ServeOptions::new(Strategy::YSmart);
    opts.reuse = Some(ysmart::mapred::ReuseConfig::with_capacity(1 << 20));
    let (mut service, _) = Service::open(demo_engine(), opts).expect("open");

    service.handle_line(SCRIPT[0]);
    let first = results_of(&service.handle_line("!run"));
    assert_eq!(first.len(), 1);
    assert_eq!(service.reuse_stats().hits, 0, "a fresh cache has no hits");
    assert!(service.reuse_stats().insertions > 0, "commits populate it");

    service.handle_line(SCRIPT[0]);
    let second = results_of(&service.handle_line("!run"));
    assert_eq!(second.len(), 1);
    assert!(service.reuse_stats().hits > 0, "the repeat must hit");

    let (
        Response::Result {
            rows: a,
            header: ha,
            ..
        },
        Response::Result {
            rows: b,
            header: hb,
            ..
        },
    ) = (&first[0], &second[0])
    else {
        panic!("both batches answer");
    };
    assert_eq!(
        (a, ha),
        (b, hb),
        "cached answer must equal the executed one"
    );
    assert!(
        service
            .status_lines()
            .iter()
            .any(|l| l.contains("reuse cache")),
        "!status reports the cache"
    );
}

/// The reuse cache survives a crash: recovery replays the journaled runs
/// through the same committing path, so a restarted service's cache serves
/// hits for queries the dead process executed.
#[test]
fn reuse_cache_is_rebuilt_by_crash_recovery() {
    let journal = temp_path("reuse-recovery.wal");
    let _ = std::fs::remove_file(&journal);
    let reuse_options = |journal: PathBuf| {
        let mut o = options(journal);
        o.reuse = Some(ysmart::mapred::ReuseConfig::with_capacity(1 << 20));
        o
    };

    let first = {
        let (mut service, _) =
            Service::open(demo_engine(), reuse_options(journal.clone())).expect("open");
        service.handle_line(SCRIPT[0]);
        let first = results_of(&service.handle_line("!run"));
        assert_eq!(first.len(), 1);
        first
        // Dropped without !quit: the journal file is the crash image.
    };

    let (mut service, recovery) =
        Service::open(demo_engine(), reuse_options(journal.clone())).expect("reopen");
    assert!(
        results_of(&recovery).is_empty(),
        "the answered query is suppressed, not re-answered"
    );
    assert!(
        service.reuse_stats().insertions > 0,
        "replaying the journal repopulates the cache"
    );

    service.handle_line(SCRIPT[0]);
    let again = results_of(&service.handle_line("!run"));
    assert_eq!(again.len(), 1);
    assert!(
        service.reuse_stats().hits > 0,
        "a post-recovery repeat hits the rebuilt cache"
    );
    let (Some(Response::Result { rows: a, .. }), Some(Response::Result { rows: b, .. })) =
        (first.first(), again.first())
    else {
        panic!("both sessions answer");
    };
    assert_eq!(a, b, "pre-crash and post-recovery answers agree");
    let _ = std::fs::remove_file(&journal);
}
