//! # ysmart — correlation-aware SQL-to-MapReduce translation
//!
//! This is the facade crate of the YSmart workspace, a reproduction of
//! *"YSmart: Yet Another SQL-to-MapReduce Translator"* (Lee et al.,
//! ICDCS 2011). It re-exports the public API of every workspace crate:
//!
//! * [`sql`] — SQL lexer, parser and AST;
//! * [`rel`] — values, rows, schemas, expressions, aggregates;
//! * [`plan`] — logical plans, partition keys and correlation detection;
//! * [`mapred`] — the simulated MapReduce cluster (the Hadoop substitute);
//! * [`exec`] — primitive job types and the Common MapReduce Framework;
//! * [`core`] — translation strategies (YSmart rules 1–4, Hive/Pig
//!   baselines) and the top-level [`core::YSmart`] engine;
//! * [`datagen`] — seeded TPC-H-shaped and click-stream data generators;
//! * [`queries`] — the paper's workload queries and the relational oracle.
//!
//! It also hosts [`serve`], the crash-safe query-service front-end behind
//! `ysmart serve`: a line protocol over the engine with a durable workload
//! journal, deterministic crash recovery and graceful drain.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```text
//! let mut engine = YSmart::new(catalog, cluster_config);
//! engine.load_table("lineitem", rows);
//! let outcome = engine.execute_sql(sql, Strategy::YSmart)?;
//! ```

pub mod serve;

pub use ysmart_core as core;
pub use ysmart_datagen as datagen;
pub use ysmart_exec as exec;
pub use ysmart_mapred as mapred;
pub use ysmart_plan as plan;
pub use ysmart_queries as queries;
pub use ysmart_rel as rel;
pub use ysmart_sql as sql;
