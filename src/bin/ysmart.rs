//! The stand-alone SQL-to-MapReduce translator the paper's conclusion
//! promises ("will also be an independent SQL-to-MapReduce translator").
//!
//! ```text
//! ysmart --catalog schema.sql --data DIR [options] "SELECT ..."
//! ysmart --demo [options] ["SELECT ..."]
//! ysmart serve (--demo | --catalog FILE --data DIR) [options]
//!
//!   --catalog FILE     CREATE TABLE statements describing the base tables
//!   --data DIR         directory with one pipe-delimited FILE <table>.tbl
//!                      per catalog table
//!   --demo             use a built-in click-stream catalog and dataset
//!   --strategy NAME    hive | pig | ysmart-no-jfc | ysmart (default) |
//!                      hand-coded
//!   --cluster SPEC     local (default) | ec2:<workers> | facebook
//!   --target-gb N      simulate this data volume (default: actual size)
//!   --explain          print the job pipeline instead of executing
//!   --plan             also print the logical plan and correlation report
//!
//! serve options:
//!   --journal FILE     durable workload journal; a restarted service
//!                      recovers any interrupted workload from it
//!   --requests FILE    read protocol lines from FILE instead of stdin
//!   --trace-dir DIR    export a Chrome trace per !run as the trace handle
//!   --reuse-mb N       keep up to N MB of committed job outputs cached and
//!                      fast-forward repeated queries from them
//! ```

use std::io::{BufReader, Write};
use std::process::ExitCode;

use ysmart::core::{Strategy, YSmart};
use ysmart::datagen::{ClicksGen, ClicksSpec};
use ysmart::mapred::ClusterConfig;
use ysmart::plan::{analyze, Catalog};
use ysmart::rel::codec::encode_line;
use ysmart::serve::{serve_loop, ServeOptions, Service};

struct Args {
    catalog: Option<String>,
    data: Option<String>,
    demo: bool,
    strategy: Strategy,
    cluster: ClusterConfig,
    target_gb: Option<f64>,
    explain: bool,
    plan: bool,
    serve: bool,
    journal: Option<String>,
    requests: Option<String>,
    trace_dir: Option<String>,
    reuse_mb: Option<f64>,
    sql: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        catalog: None,
        data: None,
        demo: false,
        strategy: Strategy::YSmart,
        cluster: ClusterConfig::small_local(),
        target_gb: None,
        explain: false,
        plan: false,
        serve: false,
        journal: None,
        requests: None,
        trace_dir: None,
        reuse_mb: None,
        sql: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "serve" if !args.serve && args.sql.is_none() => args.serve = true,
            "--journal" => args.journal = Some(it.next().ok_or("--journal needs a file")?),
            "--requests" => args.requests = Some(it.next().ok_or("--requests needs a file")?),
            "--trace-dir" => args.trace_dir = Some(it.next().ok_or("--trace-dir needs a dir")?),
            "--reuse-mb" => {
                args.reuse_mb = Some(
                    it.next()
                        .ok_or("--reuse-mb needs a number")?
                        .parse()
                        .map_err(|_| "bad --reuse-mb value".to_string())?,
                );
            }
            "--catalog" => args.catalog = Some(it.next().ok_or("--catalog needs a file")?),
            "--data" => args.data = Some(it.next().ok_or("--data needs a directory")?),
            "--demo" => args.demo = true,
            "--strategy" => {
                let s = it.next().ok_or("--strategy needs a name")?;
                args.strategy = match s.as_str() {
                    "hive" => Strategy::Hive,
                    "pig" => Strategy::Pig,
                    "ysmart-no-jfc" => Strategy::YSmartNoJfc,
                    "ysmart" => Strategy::YSmart,
                    "hand-coded" => Strategy::HandCoded,
                    other => return Err(format!("unknown strategy `{other}`")),
                };
            }
            "--cluster" => {
                let s = it.next().ok_or("--cluster needs a spec")?;
                args.cluster = if s == "local" {
                    ClusterConfig::small_local()
                } else if s == "facebook" {
                    ClusterConfig::facebook(1)
                } else if let Some(n) = s.strip_prefix("ec2:") {
                    ClusterConfig::ec2(n.parse().map_err(|_| "bad ec2 worker count")?)
                } else {
                    return Err(format!("unknown cluster `{s}`"));
                };
            }
            "--target-gb" => {
                args.target_gb = Some(
                    it.next()
                        .ok_or("--target-gb needs a number")?
                        .parse()
                        .map_err(|_| "bad --target-gb value".to_string())?,
                );
            }
            "--explain" => args.explain = true,
            "--plan" => args.plan = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            sql => args.sql = Some(sql.to_string()),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: ysmart (--demo | --catalog schema.sql --data DIR) \\\n\
         \u{20}        [--strategy hive|pig|ysmart-no-jfc|ysmart|hand-coded] \\\n\
         \u{20}        [--cluster local|ec2:<n>|facebook] [--target-gb N] \\\n\
         \u{20}        [--explain] [--plan] \"SELECT ...\"\n\
         \u{20}  ysmart serve (--demo | --catalog schema.sql --data DIR) \\\n\
         \u{20}        [--journal FILE] [--requests FILE] [--trace-dir DIR] \\\n\
         \u{20}        [--reuse-mb N]"
    );
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if msg.is_empty() {
                usage();
                return ExitCode::SUCCESS;
            }
            eprintln!("ysmart: {msg}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // ---- catalog + data -----------------------------------------------
    let (catalog, tables): (Catalog, Vec<(String, Vec<String>)>) = if args.demo {
        let spec = ClicksSpec::default();
        let stream = ClicksGen::generate(&spec);
        let lines = stream.clicks.iter().map(encode_line).collect();
        (
            ysmart::datagen::clicks_catalog(),
            vec![("clicks".to_string(), lines)],
        )
    } else {
        let catalog_file = args
            .catalog
            .as_ref()
            .ok_or("either --demo or --catalog is required")?;
        let ddl = std::fs::read_to_string(catalog_file)
            .map_err(|e| format!("cannot read {catalog_file}: {e}"))?;
        let catalog = Catalog::parse_ddl(&ddl).map_err(|e| e.to_string())?;
        let dir = args
            .data
            .as_ref()
            .ok_or("--data is required with --catalog")?;
        let mut tables = Vec::new();
        for (name, _) in catalog.iter() {
            let path = format!("{dir}/{name}.tbl");
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let lines: Vec<String> = text.lines().map(str::to_string).collect();
            tables.push((name.to_string(), lines));
        }
        (catalog, tables)
    };

    let mut engine = YSmart::new(catalog, args.cluster.clone());
    for (name, lines) in tables {
        engine.load_table_lines(&name, lines);
    }
    if let Some(gb) = args.target_gb {
        let real = engine.cluster.hdfs.total_bytes().max(1);
        engine.cluster.config.size_multiplier = gb * 1e9 / real as f64;
    }

    if args.serve {
        return run_serve(engine, &args);
    }

    let sql = match args.sql {
        Some(s) => s,
        None if args.demo => "SELECT cid, count(*) AS clicks FROM clicks GROUP BY cid".to_string(),
        None => return Err("no SQL query given".into()),
    };

    // ---- plan / correlations -------------------------------------------
    if args.plan {
        let plan = engine.plan(&sql).map_err(|e| e.to_string())?;
        println!("-- logical plan --\n{}", plan.render());
        let report = analyze(&plan);
        println!("-- correlations --");
        for info in &report.nodes {
            println!("  {} partitions by {}", info.id, info.pk);
        }
        println!("  transit-correlated: {:?}", report.transit_correlated);
        println!("  job-flow (parent<-child): {:?}", report.job_flow);
        println!();
    }

    // ---- translate -------------------------------------------------------
    let translation = engine
        .translate(&sql, args.strategy)
        .map_err(|e| e.to_string())?;
    if args.explain {
        print!("{}", translation.explain());
        return Ok(());
    }

    // ---- execute -----------------------------------------------------------
    let outcome = engine
        .execute_translation(&translation)
        .map_err(|e| e.to_string())?;
    let header: Vec<String> = outcome
        .schema
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .collect();
    println!("{}", header.join("|"));
    for row in &outcome.rows {
        println!("{}", encode_line(row));
    }
    eprintln!(
        "-- {} ({}): {} job(s), simulated {:.1}s, {} rows",
        args.strategy,
        if args.target_gb.is_some() {
            "scaled"
        } else {
            "actual size"
        },
        outcome.jobs,
        outcome.total_s(),
        outcome.rows.len()
    );
    Ok(())
}

/// `ysmart serve`: open (recovering any interrupted workload), deliver the
/// recovery responses, then drive the line protocol from stdin or the
/// request file until `!quit` or end of input.
fn run_serve(engine: YSmart, args: &Args) -> Result<(), String> {
    let mut options = ServeOptions::new(args.strategy);
    options.journal_path = args.journal.clone().map(Into::into);
    options.trace_dir = args.trace_dir.clone().map(Into::into);
    options.reuse = args
        .reuse_mb
        .map(|mb| ysmart::mapred::ReuseConfig::with_capacity((mb * 1e6) as u64));

    let (mut service, recovery) =
        Service::open(engine, options).map_err(|e| format!("serve: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for resp in recovery {
        out.write_all(resp.render().as_bytes())
            .map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;

    let result = match &args.requests {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            serve_loop(&mut service, BufReader::new(file), &mut out)
        }
        None => serve_loop(&mut service, std::io::stdin().lock(), &mut out),
    };
    result.map_err(|e| e.to_string())
}
