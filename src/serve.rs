//! `ysmart serve` — a crash-safe, journaled query service over the engine.
//!
//! The ROADMAP's "query service front-end over the multi-tenant scheduler":
//! a long-running mode that accepts SQL over a line protocol (stdin or a
//! request file), batches admitted queries through
//! [`ysmart_mapred::scheduler::run_workload_journaled`], and returns result
//! rows plus trace handles. Every admission and every scheduler-side commit
//! is appended to a checksummed [`Journal`] and flushed, so a process that
//! dies at *any* instant can be restarted against the same journal file and
//! resume: committed jobs fast-forward from their journaled outputs,
//! interrupted chains re-execute only work past their last checkpoint, and
//! queries already answered before the crash are not answered twice.
//!
//! ## Protocol
//!
//! One request or command per line:
//!
//! | line                 | meaning                                        |
//! |----------------------|------------------------------------------------|
//! | `SELECT ...`         | admit a query for the default (first) tenant   |
//! | `@tenant SELECT ...` | admit a query for a named tenant               |
//! | `!run`               | execute the pending batch through the scheduler |
//! | `!status`            | health/readiness report                        |
//! | `!drain`             | stop admitting; pending work still runs        |
//! | `!quit`              | drain, run pending, flush, stop                |
//!
//! Blank lines and `#` comments are ignored. Admissions are journaled (and
//! flushed) *before* they are acknowledged; `!run` journals every job
//! commit and disposition as it happens in simulated time.
//!
//! ## Recovery model
//!
//! The journal's record stream is segmented positionally into batches: a
//! run of `Admitted` records followed by the `JobDone`/`Done` records of
//! the `!run` that executed them (the service is synchronous, so no
//! admission can interleave with a run). On open, each batch is re-created
//! — the journaled SQL is re-translated under its original deterministic
//! tag (`svc-q<id>`), so every HDFS path is identical — and replayed with
//! [`run_workload_recovered`]. A trailing batch with no run records was
//! admitted but never started; it is restored to the pending queue, not
//! executed. Because translation, scheduling and execution are all
//! deterministic, a recovered service's results, dispositions and metrics
//! are bit-identical to an uninterrupted run's.

use std::collections::BTreeSet;
use std::fmt;
use std::io::{BufRead, Write};
use std::mem;
use std::path::PathBuf;

use ysmart_core::{Strategy, Translation, YSmart};
use ysmart_mapred::journal::{Journal, JournalRecord};
use ysmart_mapred::reuse::{ReuseCache, ReuseConfig};
use ysmart_mapred::scheduler::{
    run_workload_reusing, Disposition, QueryReport, QueryRequest, RecoveryStats, SchedulerConfig,
    TenantSpec,
};
use ysmart_mapred::MapRedError;
use ysmart_rel::codec::encode_line;

/// Configuration for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Translation strategy applied to every submitted query.
    pub strategy: Strategy,
    /// Scheduler the batches run under. Must be identical across restarts
    /// of the same journal for recovery to be bit-identical.
    pub scheduler: SchedulerConfig,
    /// Journal file. `None` runs with an in-memory journal — crash-safe
    /// bookkeeping is exercised, but nothing survives the process.
    pub journal_path: Option<PathBuf>,
    /// Directory for per-run Chrome trace exports. `Some` turns workload
    /// tracing on; each `!run` writes `run-<n>.trace.json` there and the
    /// response carries the path as the trace handle.
    pub trace_dir: Option<PathBuf>,
    /// Cross-query result-reuse cache ([`ReuseCache`]). `Some` keeps one
    /// cache alive across every `!run` batch — repeated queries
    /// fast-forward from cached job outputs — and recovery rebuilds it by
    /// replaying the journal, so it also survives crashes. `None` disables
    /// reuse entirely.
    pub reuse: Option<ReuseConfig>,
}

impl ServeOptions {
    /// Options with the default single-tenant scheduler.
    #[must_use]
    pub fn new(strategy: Strategy) -> Self {
        ServeOptions {
            strategy,
            scheduler: default_scheduler(),
            journal_path: None,
            trace_dir: None,
            reuse: None,
        }
    }
}

/// The scheduler `ysmart serve` uses unless told otherwise: two slots, one
/// `default` tenant with a deep queue and a modest retry budget.
#[must_use]
pub fn default_scheduler() -> SchedulerConfig {
    SchedulerConfig {
        max_running: 2,
        tenants: vec![TenantSpec::new("default", 64, 8)],
        trace: false,
        drain_at_s: None,
    }
}

/// Why the service could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Journal file I/O failed.
    Io(std::io::Error),
    /// The journal is corrupt ([`MapRedError::JournalCorrupt`]) or
    /// inconsistent with the catalog (a journaled query no longer
    /// translates).
    Journal(MapRedError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "journal io: {e}"),
            ServeError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One protocol interaction's outcome. Structured (rather than a printed
/// string) so tests can compare recovered and uninterrupted runs
/// bit-for-bit; [`Response::render`] produces the wire text.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed query's rows.
    Result {
        /// Service-wide query id (`svc-q<id>` tags its HDFS paths).
        id: u64,
        /// `tenant/q<id>`.
        label: String,
        /// `|`-joined output column names.
        header: String,
        /// Result rows, one encoded line each.
        rows: Vec<String>,
        /// Simulated chain time, seconds.
        elapsed_s: f64,
        /// MapReduce jobs executed (or fast-forwarded) for this query.
        jobs: usize,
        /// True when this answer was produced by crash recovery.
        recovered: bool,
    },
    /// A query that was not answered: translation failure, shed, deadline,
    /// chain failure.
    Rejected {
        /// Service-wide id, if one was assigned before the rejection.
        id: Option<u64>,
        /// Best available label for the query.
        label: String,
        /// Typed error, rendered.
        error: String,
    },
    /// Acknowledgements, status lines, trace handles.
    Info(String),
}

impl Response {
    /// Renders the response as protocol output text.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Response::Result {
                id,
                label,
                header,
                rows,
                elapsed_s,
                jobs,
                recovered,
            } => {
                let mut out = format!(
                    "ok q{id} {label}: {} row(s), {jobs} job(s), simulated {elapsed_s:.1}s{}\n",
                    rows.len(),
                    if *recovered { " [recovered]" } else { "" },
                );
                out.push_str(header);
                out.push('\n');
                for r in rows {
                    out.push_str(r);
                    out.push('\n');
                }
                out
            }
            Response::Rejected { id, label, error } => match id {
                Some(id) => format!("err q{id} {label}: {error}\n"),
                None => format!("err {label}: {error}\n"),
            },
            Response::Info(s) => format!("{s}\n"),
        }
    }
}

/// Service lifecycle state, reported by `!status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Admitting queries.
    Ready,
    /// Admission closed; pending and in-flight work still completes.
    Draining,
    /// `!quit` processed; the protocol loop should exit.
    Stopped,
}

impl fmt::Display for ServiceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServiceState::Ready => "ready",
            ServiceState::Draining => "draining",
            ServiceState::Stopped => "stopped",
        })
    }
}

/// An admitted-but-not-yet-run query.
#[derive(Debug)]
struct Pending {
    id: u64,
    tenant: String,
    label: String,
    seed: u64,
    submit_s: f64,
    translation: Translation,
}

/// The query service: engine + scheduler + durable workload journal.
#[derive(Debug)]
pub struct Service {
    engine: YSmart,
    options: ServeOptions,
    journal: Journal,
    pending: Vec<Pending>,
    next_id: u64,
    runs: usize,
    recovered_runs: usize,
    answered: usize,
    suppressed: usize,
    recovery: RecoveryStats,
    state: ServiceState,
    /// Result-reuse cache, persistent across `!run` batches. Disabled
    /// (capacity 0, never inserts) unless [`ServeOptions::reuse`] is set.
    cache: ReuseCache,
}

/// Per-request scheduling seed, derived from the service-wide id so a
/// restart recomputes the identical value (it is also journaled).
#[must_use]
fn request_seed(id: u64) -> u64 {
    // splitmix64 finalizer over the id; any fixed bijection works.
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Service {
    /// Opens the service: loads the journal, recovers any interrupted
    /// workload, and returns the service plus the responses produced by
    /// recovery (answers the crashed process never delivered — queries
    /// already answered before the crash are suppressed).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on journal file I/O failure;
    /// [`ServeError::Journal`] when the journal is corrupt mid-stream or
    /// references SQL that no longer translates under the engine's catalog.
    pub fn open(
        engine: YSmart,
        options: ServeOptions,
    ) -> Result<(Self, Vec<Response>), ServeError> {
        let mut journal = match &options.journal_path {
            Some(p) => Journal::open(p)?,
            None => Journal::in_memory(),
        };
        let recovered = journal.recover_and_reset().map_err(ServeError::Journal)?;
        let cache = options.reuse.map(ReuseCache::new).unwrap_or_default();
        let mut svc = Service {
            engine,
            options,
            journal,
            pending: Vec::new(),
            next_id: 0,
            runs: 0,
            recovered_runs: 0,
            answered: 0,
            suppressed: 0,
            recovery: RecoveryStats::default(),
            state: ServiceState::Ready,
            cache,
        };
        let mut responses = Vec::new();
        if recovered.truncated_bytes > 0 {
            responses.push(Response::Info(format!(
                "journal: dropped {} torn byte(s) at tail, recovered {} record(s)",
                recovered.truncated_bytes,
                recovered.records.len(),
            )));
        }
        svc.replay(recovered.records, &mut responses)?;
        svc.journal.flush()?;
        for r in &responses {
            if let Response::Result { .. } = r {
                svc.answered += 1;
            }
        }
        Ok((svc, responses))
    }

    /// Replays a recovered record stream: re-runs every journaled batch
    /// (fast-forwarding committed jobs), restores a trailing unstarted
    /// batch to the pending queue, and re-journals everything into the
    /// fresh epoch.
    fn replay(
        &mut self,
        records: Vec<JournalRecord>,
        out: &mut Vec<Response>,
    ) -> Result<(), ServeError> {
        // Segment positionally: a new batch starts at an Admitted record
        // that follows run records (the service is synchronous, so a run's
        // records never interleave with admissions).
        let mut batches: Vec<(Vec<JournalRecord>, Vec<JournalRecord>)> = Vec::new();
        for rec in records {
            match (rec, batches.last_mut()) {
                (rec @ JournalRecord::Admitted { .. }, Some((admitted, runrecs)))
                    if runrecs.is_empty() =>
                {
                    admitted.push(rec);
                }
                (rec @ JournalRecord::Admitted { .. }, _) => {
                    batches.push((vec![rec], Vec::new()));
                }
                (other, Some((_, runrecs))) => runrecs.push(other),
                // Run records before any admission can only come from a
                // foreign (scheduler-only) journal; nothing to resume.
                (_, None) => {}
            }
        }
        let total = batches.len();
        for (bi, (admitted, runrecs)) in batches.into_iter().enumerate() {
            let mut batch = Vec::with_capacity(admitted.len());
            // Queries already answered before the crash (terminal Done in
            // the journal): replayed for state, suppressed from output.
            let done_ids: BTreeSet<u64> = runrecs
                .iter()
                .filter_map(|r| match r {
                    JournalRecord::Done { id, .. } => Some(*id),
                    _ => None,
                })
                .collect();
            for rec in admitted {
                let JournalRecord::Admitted {
                    id,
                    tenant,
                    label,
                    seed,
                    deadline_s: _,
                    submit_s,
                    payload,
                } = rec
                else {
                    // The segmentation above puts only Admitted records in
                    // this group; skip rather than assume.
                    continue;
                };
                self.next_id = self.next_id.max(id + 1);
                let tag = format!("svc-q{id}");
                let translation = self
                    .engine
                    .translate_tagged(&payload, self.options.strategy, &tag)
                    .map_err(|e| {
                        ServeError::Journal(MapRedError::JournalCorrupt {
                            offset: 0,
                            reason: format!("journaled query q{id} no longer translates: {e}"),
                        })
                    })?;
                // Re-journal the admission into the fresh epoch so a second
                // crash recovers from the same structure.
                self.journal.append(&JournalRecord::Admitted {
                    id,
                    tenant: tenant.clone(),
                    label: label.clone(),
                    seed,
                    deadline_s: None,
                    submit_s,
                    payload: payload.clone(),
                });
                batch.push(Pending {
                    id,
                    tenant,
                    label,
                    seed,
                    submit_s,
                    translation,
                });
            }
            if runrecs.is_empty() && bi + 1 == total {
                // Admitted but never started: back onto the pending queue.
                out.push(Response::Info(format!(
                    "recovered {} pending quer{} (admitted, not yet run)",
                    batch.len(),
                    if batch.len() == 1 { "y" } else { "ies" },
                )));
                self.pending = batch;
                continue;
            }
            let requests = self.build_requests(&batch, out);
            let config = self.run_config();
            let (report, stats) = run_workload_reusing(
                &mut self.engine.cluster,
                &config,
                requests,
                Some(&mut self.journal),
                &runrecs,
                &mut self.cache,
            );
            self.recovery.jobs_replayed += stats.jobs_replayed;
            self.recovery.jobs_executed += stats.jobs_executed;
            self.recovery.already_done += stats.already_done;
            self.runs += 1;
            self.recovered_runs += 1;
            for rep in &report.reports {
                let p = &batch[rep.index];
                if done_ids.contains(&(rep.index as u64)) {
                    self.suppressed += 1;
                    continue;
                }
                out.push(self.report_response(p, rep, true));
            }
            self.export_trace(report.trace, out);
        }
        Ok(())
    }

    /// The per-run scheduler config: the configured scheduler with tracing
    /// forced on when a trace directory was given.
    fn run_config(&self) -> SchedulerConfig {
        let mut c = self.options.scheduler.clone();
        c.trace = c.trace || self.options.trace_dir.is_some();
        c
    }

    /// Builds scheduler requests for a batch. A chain that fails to
    /// materialize (deterministically — the same failure recurs on
    /// recovery) is rejected here and excluded from the batch in a way
    /// that keeps request indices dense and stable.
    fn build_requests(&self, batch: &[Pending], out: &mut Vec<Response>) -> Vec<QueryRequest> {
        let mut requests = Vec::with_capacity(batch.len());
        for p in batch {
            match self.engine.chain_for(&p.translation) {
                Ok(chain) => requests.push(QueryRequest {
                    tenant: p.tenant.clone(),
                    label: p.label.clone(),
                    chain,
                    seed: p.seed,
                    deadline_s: None,
                    submit_s: p.submit_s,
                }),
                Err(e) => out.push(Response::Rejected {
                    id: Some(p.id),
                    label: p.label.clone(),
                    error: e.to_string(),
                }),
            }
        }
        requests
    }

    /// Converts one scheduler report into a protocol response.
    fn report_response(&self, p: &Pending, rep: &QueryReport, recovered: bool) -> Response {
        match &rep.disposition {
            Disposition::Completed(outcome) => match self.engine.decode_output(&p.translation) {
                Ok(rows) => Response::Result {
                    id: p.id,
                    label: p.label.clone(),
                    header: p
                        .translation
                        .output_schema
                        .fields()
                        .iter()
                        .map(|f| f.name.clone())
                        .collect::<Vec<_>>()
                        .join("|"),
                    rows: rows.iter().map(encode_line).collect(),
                    elapsed_s: outcome.metrics.total_s(),
                    jobs: outcome.metrics.jobs.len(),
                    recovered,
                },
                Err(e) => Response::Rejected {
                    id: Some(p.id),
                    label: p.label.clone(),
                    error: e.to_string(),
                },
            },
            Disposition::Shed(e) => Response::Rejected {
                id: Some(p.id),
                label: p.label.clone(),
                error: e.to_string(),
            },
            Disposition::DeadlineCancelled(f) | Disposition::Failed(f) => Response::Rejected {
                id: Some(p.id),
                label: p.label.clone(),
                error: f.error.to_string(),
            },
        }
    }

    /// Writes the run's trace to the trace directory (when configured) and
    /// emits the handle.
    fn export_trace(&self, trace: Option<ysmart_mapred::Trace>, out: &mut Vec<Response>) {
        let (Some(dir), Some(trace)) = (&self.options.trace_dir, trace) else {
            return;
        };
        let path = dir.join(format!("run-{}.trace.json", self.runs));
        match std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, trace.to_chrome_json()))
        {
            Ok(()) => out.push(Response::Info(format!("trace: {}", path.display()))),
            Err(e) => out.push(Response::Info(format!(
                "warning: trace export to {} failed: {e}",
                path.display()
            ))),
        }
    }

    /// Handles one protocol line; returns the responses it produced.
    pub fn handle_line(&mut self, line: &str) -> Vec<Response> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Vec::new();
        }
        match line {
            "!run" => self.run_pending(),
            "!status" => self
                .status_lines()
                .into_iter()
                .map(Response::Info)
                .collect(),
            "!drain" => {
                self.state = ServiceState::Draining;
                vec![Response::Info(format!(
                    "draining: admission closed, {} pending quer{} will still run",
                    self.pending.len(),
                    if self.pending.len() == 1 { "y" } else { "ies" },
                ))]
            }
            "!quit" => {
                self.state = ServiceState::Draining;
                let mut out = if self.pending.is_empty() {
                    Vec::new()
                } else {
                    self.run_pending()
                };
                if let Err(e) = self.journal.flush() {
                    out.push(Response::Info(format!(
                        "warning: journal flush failed: {e}"
                    )));
                }
                self.state = ServiceState::Stopped;
                out.push(Response::Info(format!(
                    "stopped: {} quer{} answered over {} run(s)",
                    self.answered,
                    if self.answered == 1 { "y" } else { "ies" },
                    self.runs,
                )));
                out
            }
            cmd if cmd.starts_with('!') => {
                vec![Response::Info(format!(
                    "unknown command {cmd}; commands: !run !status !drain !quit"
                ))]
            }
            sql => vec![self.submit(sql)],
        }
    }

    /// Admits one query: translate, journal (durably), queue.
    fn submit(&mut self, line: &str) -> Response {
        if self.state != ServiceState::Ready {
            return Response::Rejected {
                id: None,
                label: "admission".into(),
                error: MapRedError::Draining.to_string(),
            };
        }
        let reject = |error: String| Response::Rejected {
            id: None,
            label: "admission".into(),
            error,
        };
        let (tenant, sql) = match line.strip_prefix('@') {
            Some(rest) => match rest.split_once(char::is_whitespace) {
                Some((t, q)) if !t.is_empty() && !q.trim().is_empty() => (t.to_string(), q.trim()),
                _ => {
                    return reject(format!(
                        "malformed @tenant prefix in {line:?}: expected \"@tenant SELECT ...\""
                    ))
                }
            },
            None => match self.options.scheduler.tenants.first() {
                Some(t) => (t.name.clone(), line),
                None => return reject("no tenants configured".into()),
            },
        };
        // An unknown tenant would be journaled, then shed by the scheduler
        // on every replay; reject it before it consumes an id or a journal
        // record.
        if !self
            .options
            .scheduler
            .tenants
            .iter()
            .any(|t| t.name == tenant)
        {
            return reject(format!(
                "unknown tenant {tenant:?}; configured: {}",
                self.options
                    .scheduler
                    .tenants
                    .iter()
                    .map(|t| t.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let id = self.next_id;
        let tag = format!("svc-q{id}");
        let translation = match self
            .engine
            .translate_tagged(sql, self.options.strategy, &tag)
        {
            Ok(t) => t,
            // Failed translations consume no id and are never journaled, so
            // a recovered process (which replays only journaled admissions)
            // assigns the same ids this one did.
            Err(e) => {
                return Response::Rejected {
                    id: None,
                    label: tag,
                    error: e.to_string(),
                }
            }
        };
        self.next_id += 1;
        let label = format!("{tenant}/q{id}");
        let seed = request_seed(id);
        let submit_s = self.pending.len() as f64;
        self.journal.append(&JournalRecord::Admitted {
            id,
            tenant: tenant.clone(),
            label: label.clone(),
            seed,
            deadline_s: None,
            submit_s,
            payload: sql.to_string(),
        });
        let mut ack = format!(
            "accepted q{id} ({label}), {} pending",
            self.pending.len() + 1
        );
        if let Err(e) = self.journal.flush() {
            ack.push_str(&format!("; warning: journal flush failed: {e}"));
        }
        self.pending.push(Pending {
            id,
            tenant,
            label,
            seed,
            submit_s,
            translation,
        });
        Response::Info(ack)
    }

    /// Runs the pending batch through the journaled scheduler.
    fn run_pending(&mut self) -> Vec<Response> {
        if self.pending.is_empty() {
            return vec![Response::Info("nothing to run".into())];
        }
        let batch = mem::take(&mut self.pending);
        let mut out = Vec::new();
        let requests = self.build_requests(&batch, &mut out);
        let config = self.run_config();
        let (report, _stats) = run_workload_reusing(
            &mut self.engine.cluster,
            &config,
            requests,
            Some(&mut self.journal),
            &[],
            &mut self.cache,
        );
        self.runs += 1;
        if let Err(e) = self.journal.flush() {
            out.push(Response::Info(format!(
                "warning: journal flush failed: {e}"
            )));
        }
        for rep in &report.reports {
            let resp = self.report_response(&batch[rep.index], rep, false);
            if let Response::Result { .. } = resp {
                self.answered += 1;
            }
            out.push(resp);
        }
        self.export_trace(report.trace, &mut out);
        out
    }

    /// Health/readiness lines for `!status`.
    #[must_use]
    pub fn status_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!(
                "state: {} ({})",
                self.state,
                if self.is_ready() {
                    "accepting queries"
                } else {
                    "admission closed"
                }
            ),
            format!("pending: {}", self.pending.len()),
            format!(
                "runs: {} ({} recovered), answered: {}, suppressed duplicates: {}",
                self.runs, self.recovered_runs, self.answered, self.suppressed,
            ),
            format!(
                "journal: {} record(s), {} byte(s){}",
                self.journal.record_count(),
                self.journal.bytes().len(),
                self.options
                    .journal_path
                    .as_ref()
                    .map(|p| format!(", {}", p.display()))
                    .unwrap_or_else(|| ", in-memory".into()),
            ),
        ];
        if self.options.reuse.is_some() {
            let s = self.cache.stats();
            lines.push(format!(
                "reuse cache: {} entr{} ({} of {} byte(s)), {} hit(s) / {} miss(es), \
                 {} eviction(s), {} integrity failure(s), {:.1}s reused",
                self.cache.len(),
                if self.cache.len() == 1 { "y" } else { "ies" },
                s.bytes_cached,
                self.cache.capacity_bytes(),
                s.hits,
                s.misses,
                s.evictions,
                s.integrity_failures,
                s.reused_work_s,
            ));
        }
        if self.recovered_runs > 0 {
            lines.push(format!(
                "recovery: {} job(s) fast-forwarded, {} executed, {} already done",
                self.recovery.jobs_replayed,
                self.recovery.jobs_executed,
                self.recovery.already_done,
            ));
        }
        lines
    }

    /// True while the service accepts new queries.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.state == ServiceState::Ready
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> ServiceState {
        self.state
    }

    /// Queries admitted but not yet run.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Aggregate recovery statistics across all recovered runs.
    #[must_use]
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Lifetime counters of the result-reuse cache (all zero when reuse is
    /// disabled).
    #[must_use]
    pub fn reuse_stats(&self) -> &ysmart_mapred::ReuseStats {
        self.cache.stats()
    }

    /// The underlying engine (e.g. to load tables before serving).
    pub fn engine_mut(&mut self) -> &mut YSmart {
        &mut self.engine
    }

    /// The journal's current byte image — a crash at any moment leaves a
    /// prefix of exactly these bytes on disk (tests cut it at arbitrary
    /// points to simulate kills).
    #[must_use]
    pub fn journal_bytes(&self) -> &[u8] {
        self.journal.bytes()
    }
}

/// Drives the line protocol: reads commands from `input`, writes rendered
/// responses to `output`, returns when the stream ends or `!quit` stops
/// the service. The recovery responses from [`Service::open`] should be
/// written by the caller before entering the loop.
///
/// # Errors
///
/// I/O failures on either stream.
pub fn serve_loop(
    service: &mut Service,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        for resp in service.handle_line(&line) {
            output.write_all(resp.render().as_bytes())?;
        }
        output.flush()?;
        if service.state() == ServiceState::Stopped {
            break;
        }
    }
    Ok(())
}
