//! Integration tests of the Common MapReduce Framework on the simulated
//! cluster: hand-built blueprints executed end-to-end, checking that the
//! CMF's sharing machinery (tagged pairs, shared scans, tagged multi-output
//! files, post-job computations) never changes results relative to
//! dedicated jobs.

use ysmart_exec::{
    EmitSpec, InputSpec, JobBlueprint, MapBranch, OpKind, PartialAgg, ROp, RSource, RowOp,
    StreamSpec,
};
use ysmart_mapred::{run_job, Cluster, ClusterConfig};
use ysmart_plan::JoinKind;
use ysmart_rel::{AggFunc, BinOp, DataType, Expr, Schema, SortKey};

fn schema() -> Schema {
    Schema::of(
        "t",
        &[
            ("k", DataType::Int),
            ("a", DataType::Int),
            ("b", DataType::Int),
        ],
    )
}

fn cluster_with_data(rows: usize) -> Cluster {
    let mut c = Cluster::new(ClusterConfig::default());
    let lines: Vec<String> = (0..rows)
        .map(|i| format!("{}|{}|{}", i % 7, i % 3, i))
        .collect();
    c.load_table("t", lines);
    c
}

fn base_input(branches: Vec<MapBranch>) -> InputSpec {
    InputSpec {
        path: "data/t".into(),
        schema: schema(),
        key_exprs: vec![Expr::col(0)],
        value_cols: vec![0, 1, 2],
        branches,
        tag_filter: None,
    }
}

fn identity_stream() -> StreamSpec {
    StreamSpec {
        projection: vec![Expr::col(0), Expr::col(1), Expr::col(2)],
    }
}

fn sorted_lines(c: &Cluster, path: &str) -> Vec<String> {
    let mut l = c.hdfs.get(path).unwrap().lines.clone();
    l.sort();
    l
}

/// A shared scan with two selections produces exactly what two dedicated
/// scans produce.
#[test]
fn shared_scan_equals_dedicated_scans() {
    let pred_a = Some(Expr::binary(BinOp::Eq, Expr::col(1), Expr::lit(0i64)));
    let pred_b = Some(Expr::binary(BinOp::Gt, Expr::col(2), Expr::lit(50i64)));

    // Merged: one input, two branches, tagged emit of both passes.
    let merged = JobBlueprint {
        name: "merged".into(),
        inputs: vec![base_input(vec![
            MapBranch {
                stream: 0,
                predicate: pred_a.clone(),
            },
            MapBranch {
                stream: 1,
                predicate: pred_b.clone(),
            },
        ])],
        streams: vec![identity_stream(), identity_stream()],
        ops: vec![
            ROp {
                kind: OpKind::Pass,
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            },
            ROp {
                kind: OpKind::Pass,
                inputs: vec![RSource::Stream(1)],
                transforms: vec![],
            },
        ],
        emit: EmitSpec::Tagged(vec![RSource::Op(0), RSource::Op(1)]),
        output: "out/merged".into(),
        reduce_tasks: Some(3),
        combiner: None,
        map_only: false,
        short_circuit_streams: vec![],
        pad_bytes: 0,
        key_cardinality: None,
    };
    let mut c1 = cluster_with_data(200);
    let m = run_job(&mut c1, &merged.to_jobspec().unwrap()).unwrap();

    // Dedicated: two jobs, one per selection.
    let dedicated = |name: &str, pred: Option<Expr>, out: &str| JobBlueprint {
        name: name.into(),
        inputs: vec![base_input(vec![MapBranch {
            stream: 0,
            predicate: pred,
        }])],
        streams: vec![identity_stream()],
        ops: vec![ROp {
            kind: OpKind::Pass,
            inputs: vec![RSource::Stream(0)],
            transforms: vec![],
        }],
        emit: EmitSpec::Single(RSource::Op(0)),
        output: out.into(),
        reduce_tasks: Some(3),
        combiner: None,
        map_only: false,
        short_circuit_streams: vec![],
        pad_bytes: 0,
        key_cardinality: None,
    };
    let mut c2 = cluster_with_data(200);
    let ja = run_job(
        &mut c2,
        &dedicated("a", pred_a, "out/a").to_jobspec().unwrap(),
    )
    .unwrap();
    let jb = run_job(
        &mut c2,
        &dedicated("b", pred_b, "out/b").to_jobspec().unwrap(),
    )
    .unwrap();

    // Same rows (tagged lines 0|… and 1|… match the dedicated outputs).
    let merged_a: Vec<String> = sorted_lines(&c1, "out/merged")
        .iter()
        .filter_map(|l| l.strip_prefix("0|").map(str::to_string))
        .collect();
    let merged_b: Vec<String> = sorted_lines(&c1, "out/merged")
        .iter()
        .filter_map(|l| l.strip_prefix("1|").map(str::to_string))
        .collect();
    assert_eq!(merged_a, sorted_lines(&c2, "out/a"));
    assert_eq!(merged_b, sorted_lines(&c2, "out/b"));

    // And the merged job read the table once, not twice.
    assert_eq!(m.hdfs_read_bytes, ja.hdfs_read_bytes);
    assert_eq!(ja.hdfs_read_bytes, jb.hdfs_read_bytes);
}

/// A tag-filtered consumer reads exactly its slice of a multi-output file.
#[test]
fn tag_filter_consumes_one_source() {
    let mut c = Cluster::new(ClusterConfig::default());
    c.hdfs.put(
        "tmp/multi",
        vec![
            "0|1|10|100".into(),
            "1|2|20|200".into(),
            "0|3|30|300".into(),
        ],
    );
    let consumer = JobBlueprint {
        name: "consume".into(),
        inputs: vec![InputSpec {
            path: "tmp/multi".into(),
            schema: schema(),
            key_exprs: vec![Expr::col(0)],
            value_cols: vec![0, 1, 2],
            branches: vec![MapBranch {
                stream: 0,
                predicate: None,
            }],
            tag_filter: Some(0),
        }],
        streams: vec![identity_stream()],
        ops: vec![ROp {
            kind: OpKind::Pass,
            inputs: vec![RSource::Stream(0)],
            transforms: vec![],
        }],
        emit: EmitSpec::Single(RSource::Op(0)),
        output: "out/c".into(),
        reduce_tasks: Some(1),
        combiner: None,
        map_only: false,
        short_circuit_streams: vec![],
        pad_bytes: 0,
        key_cardinality: None,
    };
    run_job(&mut c, &consumer.to_jobspec().unwrap()).unwrap();
    assert_eq!(sorted_lines(&c, "out/c"), vec!["1|10|100", "3|30|300"]);
}

/// Post-job computation (join feeding an aggregation in the same reduce
/// call) equals running the two ops as two jobs.
#[test]
fn post_job_computation_equals_two_jobs() {
    // One job: self-join on k (a=0 side vs a=1 side), then count per key.
    let merged = JobBlueprint {
        name: "join+agg".into(),
        inputs: vec![base_input(vec![
            MapBranch {
                stream: 0,
                predicate: Some(Expr::binary(BinOp::Eq, Expr::col(1), Expr::lit(0i64))),
            },
            MapBranch {
                stream: 1,
                predicate: Some(Expr::binary(BinOp::Eq, Expr::col(1), Expr::lit(1i64))),
            },
        ])],
        streams: vec![identity_stream(), identity_stream()],
        ops: vec![
            ROp {
                kind: OpKind::Join {
                    kind: JoinKind::Inner,
                    residual: None,
                    left_width: 3,
                    right_width: 3,
                },
                inputs: vec![RSource::Stream(0), RSource::Stream(1)],
                transforms: vec![],
            },
            ROp {
                kind: OpKind::Agg {
                    group_cols: vec![0],
                    aggs: vec![(AggFunc::Count, None)],
                    having: None,
                    merge_partials: false,
                },
                inputs: vec![RSource::Op(0)],
                transforms: vec![],
            },
        ],
        emit: EmitSpec::Single(RSource::Op(1)),
        output: "out/one".into(),
        reduce_tasks: Some(2),
        combiner: None,
        map_only: false,
        short_circuit_streams: vec![],
        pad_bytes: 0,
        key_cardinality: None,
    };
    let mut c1 = cluster_with_data(120);
    run_job(&mut c1, &merged.to_jobspec().unwrap()).unwrap();

    // Two jobs: join writes its output; a second job aggregates it.
    let join_only = JobBlueprint {
        emit: EmitSpec::Single(RSource::Op(0)),
        ops: vec![merged.ops[0].clone()],
        output: "tmp/join".into(),
        name: "join".into(),
        ..merged.clone()
    };
    let join_out_schema = {
        // join output: t ⨯ t = 6 int columns
        Schema::of(
            "j",
            &[
                ("k", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Int),
                ("k2", DataType::Int),
                ("a2", DataType::Int),
                ("b2", DataType::Int),
            ],
        )
    };
    let agg_only = JobBlueprint {
        name: "agg".into(),
        inputs: vec![InputSpec {
            path: "tmp/join".into(),
            schema: join_out_schema,
            key_exprs: vec![Expr::col(0)],
            value_cols: vec![0],
            branches: vec![MapBranch {
                stream: 0,
                predicate: None,
            }],
            tag_filter: None,
        }],
        streams: vec![StreamSpec {
            projection: vec![Expr::col(0)],
        }],
        ops: vec![ROp {
            kind: OpKind::Agg {
                group_cols: vec![0],
                aggs: vec![(AggFunc::Count, None)],
                having: None,
                merge_partials: false,
            },
            inputs: vec![RSource::Stream(0)],
            transforms: vec![],
        }],
        emit: EmitSpec::Single(RSource::Op(0)),
        output: "out/two".into(),
        reduce_tasks: Some(2),
        combiner: None,
        map_only: false,
        short_circuit_streams: vec![],
        pad_bytes: 0,
        key_cardinality: None,
    };
    let mut c2 = cluster_with_data(120);
    run_job(&mut c2, &join_only.to_jobspec().unwrap()).unwrap();
    run_job(&mut c2, &agg_only.to_jobspec().unwrap()).unwrap();

    assert_eq!(sorted_lines(&c1, "out/one"), sorted_lines(&c2, "out/two"));
}

/// Short-circuiting changes work, never output, when the stream is
/// required by an inner join.
#[test]
fn short_circuit_output_invariant() {
    let mk = |short: Vec<usize>, out: &str| JobBlueprint {
        name: "sc".into(),
        inputs: vec![base_input(vec![
            MapBranch {
                stream: 0,
                predicate: Some(Expr::binary(BinOp::Eq, Expr::col(1), Expr::lit(0i64))),
            },
            MapBranch {
                stream: 1,
                predicate: Some(Expr::binary(BinOp::Eq, Expr::col(1), Expr::lit(2i64))),
            },
        ])],
        streams: vec![identity_stream(), identity_stream()],
        ops: vec![ROp {
            kind: OpKind::Join {
                kind: JoinKind::Inner,
                residual: None,
                left_width: 3,
                right_width: 3,
            },
            inputs: vec![RSource::Stream(0), RSource::Stream(1)],
            transforms: vec![],
        }],
        emit: EmitSpec::Single(RSource::Op(0)),
        output: out.into(),
        reduce_tasks: Some(2),
        combiner: None,
        map_only: false,
        short_circuit_streams: short,
        pad_bytes: 0,
        key_cardinality: None,
    };
    let mut c1 = cluster_with_data(140);
    let plain = run_job(&mut c1, &mk(vec![], "out/plain").to_jobspec().unwrap()).unwrap();
    let mut c2 = cluster_with_data(140);
    let fast = run_job(&mut c2, &mk(vec![0, 1], "out/fast").to_jobspec().unwrap()).unwrap();
    assert_eq!(
        sorted_lines(&c1, "out/plain"),
        sorted_lines(&c2, "out/fast")
    );
    // The tag pre-pass costs a little on keys that do not skip, so allow a
    // small tolerance; net it must not be materially slower.
    assert!(fast.reduce_time_s <= plain.reduce_time_s * 1.05);
}

/// Combiner with a PK-subset group (group wider than the shuffle key)
/// produces the same result as the raw path.
#[test]
fn combiner_with_wider_group_than_key() {
    // Group by (k, a), partition by k only; sum(b).
    let mk = |combine: bool, out: &str| {
        let reduce_op = if combine {
            ROp {
                kind: OpKind::Agg {
                    group_cols: vec![0, 1],
                    aggs: vec![(AggFunc::Sum, Some(Expr::col(2)))],
                    having: None,
                    merge_partials: true,
                },
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }
        } else {
            ROp {
                kind: OpKind::Agg {
                    group_cols: vec![0, 1],
                    aggs: vec![(AggFunc::Sum, Some(Expr::col(2)))],
                    having: None,
                    merge_partials: false,
                },
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }
        };
        JobBlueprint {
            name: "agg".into(),
            inputs: vec![base_input(vec![MapBranch {
                stream: 0,
                predicate: None,
            }])],
            streams: vec![identity_stream()],
            ops: vec![reduce_op],
            emit: EmitSpec::Single(RSource::Op(0)),
            output: out.into(),
            reduce_tasks: Some(3),
            combiner: combine.then(|| PartialAgg {
                group_cols: vec![0, 1],
                aggs: vec![(AggFunc::Sum, Some(Expr::col(2)))],
            }),
            map_only: false,
            short_circuit_streams: vec![],
            pad_bytes: 0,
            key_cardinality: None,
        }
    };
    let mut c1 = cluster_with_data(150);
    run_job(&mut c1, &mk(false, "out/raw").to_jobspec().unwrap()).unwrap();
    let mut c2 = cluster_with_data(150);
    run_job(&mut c2, &mk(true, "out/comb").to_jobspec().unwrap()).unwrap();
    assert_eq!(sorted_lines(&c1, "out/raw"), sorted_lines(&c2, "out/comb"));
}

/// Sort + limit transforms on a single-reducer pass job give a global
/// top-N.
#[test]
fn sort_limit_job() {
    let bp = JobBlueprint {
        name: "top".into(),
        inputs: vec![InputSpec {
            key_exprs: vec![], // single group: global sort
            ..base_input(vec![MapBranch {
                stream: 0,
                predicate: None,
            }])
        }],
        streams: vec![identity_stream()],
        ops: vec![ROp {
            kind: OpKind::Pass,
            inputs: vec![RSource::Stream(0)],
            transforms: vec![RowOp::Sort(vec![SortKey::desc(2)]), RowOp::Limit(3)],
        }],
        emit: EmitSpec::Single(RSource::Op(0)),
        output: "out/top".into(),
        reduce_tasks: Some(1),
        combiner: None,
        map_only: false,
        short_circuit_streams: vec![],
        pad_bytes: 0,
        key_cardinality: None,
    };
    let mut c = cluster_with_data(50);
    run_job(&mut c, &bp.to_jobspec().unwrap()).unwrap();
    let lines = c.hdfs.get("out/top").unwrap().lines.clone();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].ends_with("|49"));
    assert!(lines[1].ends_with("|48"));
}
