//! # ysmart-exec — primitive job types and the Common MapReduce Framework
//!
//! This crate turns *physical job blueprints* into executable
//! [`ysmart_mapred::JobSpec`]s. It implements both:
//!
//! * the four **primitive job types** of §V-A — SELECTION-PROJECTION
//!   (map-only), AGGREGATION (with optional map-side combiner, Hive's
//!   footnote-2 optimisation), JOIN (including the self-join single-scan
//!   optimisation: two instances of the same table share one scan, with an
//!   instance tag in each map-output pair) and SORT (single-reducer total
//!   order, as Hive's `ORDER BY`);
//! * the **Common MapReduce Framework** of §VI — a [`CommonMapper`] that
//!   evaluates every merged job's selection on each raw record and emits
//!   *one* tagged pair carrying the union of the merged jobs' projections
//!   (the tag is the *inverted* visibility set: the streams that must NOT
//!   see the pair), and a [`CommonReducer`] that makes one pass over the
//!   values of a key, dispatches each value to the merged reducers
//!   (Algorithm 1), and then runs *post-job computations* — the per-key
//!   operator DAG that job-flow-correlation merging creates.
//!
//! The unit of composition is the [`JobBlueprint`]: a pure-data description
//! (expressions, schemas, operator specs) that is cheap to clone into the
//! per-task mapper/reducer factories the simulator requires.

pub mod blueprint;
pub mod colexpr;
pub mod combiner;
pub mod error;
pub mod mapper;
pub mod reducer;
pub mod rowop;

pub use blueprint::{
    EmitSpec, InputSpec, JobBlueprint, MapBranch, OpKind, PartialAgg, ROp, RSource, StreamSpec,
};
pub use colexpr::eval_mask;
pub use combiner::PartialAggCombiner;
pub use error::ExecError;
pub use mapper::CommonMapper;
pub use reducer::CommonReducer;
pub use rowop::RowOp;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ExecError>;
