//! Execution-layer errors.

use std::fmt;

use ysmart_mapred::MapRedError;
use ysmart_rel::RelError;

/// Errors raised while building or executing physical jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A blueprint was internally inconsistent (bad stream/op references).
    InvalidBlueprint(String),
    /// An expression failed during map/reduce evaluation.
    Rel(RelError),
    /// The underlying MapReduce engine failed.
    MapRed(MapRedError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidBlueprint(msg) => write!(f, "invalid job blueprint: {msg}"),
            ExecError::Rel(e) => write!(f, "expression error: {e}"),
            ExecError::MapRed(e) => write!(f, "mapreduce error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Rel(e) => Some(e),
            ExecError::MapRed(e) => Some(e),
            ExecError::InvalidBlueprint(_) => None,
        }
    }
}

impl From<RelError> for ExecError {
    fn from(e: RelError) -> Self {
        ExecError::Rel(e)
    }
}

impl From<MapRedError> for ExecError {
    fn from(e: MapRedError) -> Self {
        ExecError::MapRed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: ExecError = RelError::DivideByZero.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ExecError = MapRedError::NoSuchFile("x".into()).into();
        assert!(e.to_string().contains("mapreduce"));
        assert!(std::error::Error::source(&ExecError::InvalidBlueprint("b".into())).is_none());
    }
}
