//! The common mapper (§VI-A).
//!
//! For each raw record, the mapper evaluates every branch's selection and
//! emits at most *one* key/value pair:
//!
//! * **direct mode** (single branch in the whole job): the value is the
//!   stream's projected row — no tag byte, enabling the map-side combiner;
//! * **tagged mode** (merged jobs): the value is `[tag, union columns…]`
//!   where the tag is the *inverted* visibility set — the streams that must
//!   NOT see this pair (the paper inverts the tag because merged jobs
//!   mostly overlap, keeping per-record bookkeeping near zero).
//!
//! Evaluation errors (a failing predicate, key or projection expression)
//! are planner bugs, not data problems: they abort the job via
//! [`MapOutput::record_fatal`], which the engine surfaces as a typed
//! `MapRedError::User` failure of the whole job — no panic unwinds through
//! the executor. *Decode* errors are a data problem — torn or corrupted
//! records — so they are counted via [`MapOutput::record_bad`] and the
//! record is skipped, mirroring Hadoop's skipping mode; the engine enforces
//! the `ClusterConfig::skip_bad_records` budget.
//!
//! Each record visible to a branch is also counted via
//! [`MapOutput::record_dispatch`], giving merged (CMF) jobs per-stream
//! fan-out visibility in `JobMetrics::map_dispatches`.

use std::sync::Arc;

use ysmart_mapred::{MapOutput, Mapper};
use ysmart_rel::codec::{decode_line, decode_line_projected};
use ysmart_rel::colbatch::{Column, ColumnBatch};
use ysmart_rel::{Expr, Row, Value};

use crate::blueprint::JobBlueprint;
use crate::colexpr::{eval_mask, Mask};

/// The CMF mapper for one input of a job.
#[derive(Debug)]
pub struct CommonMapper {
    blueprint: Arc<JobBlueprint>,
    input_idx: usize,
    tagged: bool,
    /// Bits of streams not fed by this input — always forbidden.
    foreign_mask: u64,
    /// Key expressions as column indices when all are plain references —
    /// evaluated by direct indexing instead of walking expression trees.
    plain_keys: Option<Vec<usize>>,
    /// Per input column: whether any predicate, key expression or carried
    /// value reads it. `None` when every column is needed. Unneeded fields
    /// are skipped at decode time (left NULL) — a scan-side projection.
    needed_cols: Option<Vec<bool>>,
    /// Raw-row column indices of the emitted value when it is a plain,
    /// duplicate-free column list (tagged mode: `value_cols`; direct and
    /// map-only modes: stream 0's projection composed through
    /// `value_cols`). The decoded row is dead once the value is built, so
    /// these columns are *moved* out of it instead of cloned — `None`
    /// falls back to the expression-evaluating path.
    value_move: Option<Vec<usize>>,
}

fn plain_cols(exprs: &[Expr]) -> Option<Vec<usize>> {
    exprs
        .iter()
        .map(|e| match e {
            Expr::Column(i) => Some(*i),
            _ => None,
        })
        .collect()
}

/// `cols` usable as a move source: each raw column taken at most once.
fn duplicate_free(cols: &[usize]) -> bool {
    let mut sorted = cols.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).all(|w| w[0] != w[1])
}

/// Builds a row by moving the given columns out of `row` (which must not
/// repeat a column — the second take would see a NULL).
fn take_cols(row: Row, cols: &[usize]) -> Row {
    let mut vals = row.into_values();
    cols.iter()
        .map(|&c| std::mem::replace(&mut vals[c], Value::Null))
        .collect()
}

impl CommonMapper {
    /// Creates the mapper for `input_idx` of `blueprint`.
    #[must_use]
    pub fn new(blueprint: Arc<JobBlueprint>, input_idx: usize) -> Self {
        let tagged = blueprint.tagged();
        let input = &blueprint.inputs[input_idx];
        let mine: u64 = input.branches.iter().fold(0, |m, b| m | (1 << b.stream));
        let all: u64 = if blueprint.streams.len() >= 64 {
            u64::MAX
        } else {
            (1 << blueprint.streams.len()) - 1
        };
        let plain_keys = plain_cols(&input.key_exprs);
        let mut needed = vec![false; input.schema.len()];
        let mut mark = |c: usize| {
            if let Some(slot) = needed.get_mut(c) {
                *slot = true;
            }
        };
        for b in &input.branches {
            if let Some(p) = &b.predicate {
                p.for_each_column(&mut mark);
            }
        }
        for e in &input.key_exprs {
            e.for_each_column(&mut mark);
        }
        // Stream projections and the pad read the *carried* row, whose
        // columns are exactly `value_cols` of the raw row.
        for &c in &input.value_cols {
            mark(c);
        }
        let needed_cols = if needed.iter().all(|&n| n) {
            None
        } else {
            Some(needed)
        };
        let value_move = if tagged {
            duplicate_free(&input.value_cols).then(|| input.value_cols.clone())
        } else {
            // Stream 0's projection runs map-side: compose it through
            // `value_cols` back to raw column indices.
            plain_cols(&blueprint.streams[0].projection)
                .and_then(|p| {
                    p.iter()
                        .map(|&i| input.value_cols.get(i).copied())
                        .collect::<Option<Vec<usize>>>()
                })
                .filter(|raw| duplicate_free(raw))
        };
        CommonMapper {
            blueprint,
            input_idx,
            tagged,
            foreign_mask: all & !mine,
            plain_keys,
            needed_cols,
            value_move,
        }
    }
}

impl Mapper for CommonMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let input = &self.blueprint.inputs[self.input_idx];
        // Tagged multi-output files mix records of several merged ops; keep
        // only this consumer's tag and decode the rest of the line.
        let payload = match input.tag_filter {
            None => line,
            Some(want) => {
                let Some((tag, rest)) = line.split_once('|') else {
                    return;
                };
                if tag.parse::<i64>() != Ok(want) {
                    return;
                }
                rest
            }
        };
        let row = match &self.needed_cols {
            Some(needed) => decode_line_projected(payload, &input.schema, needed),
            None => decode_line(payload, &input.schema),
        };
        let row = match row {
            Ok(r) => r,
            // A record that won't decode is corrupt input, not a planner
            // bug: count it and move on (the engine enforces the
            // skip-budget and fails the job past it).
            Err(_) => {
                out.record_bad();
                return;
            }
        };
        // Evaluate each branch's selection; charge one work unit per
        // branch beyond the first (the shared-scan overhead).
        out.add_work(input.branches.len() as u64 - 1);
        let mut forbidden = self.foreign_mask;
        let mut any = false;
        for b in &input.branches {
            let visible = match &b.predicate {
                None => true,
                Some(p) => match p.eval_predicate(&row) {
                    Ok(v) => v,
                    Err(e) => {
                        out.record_fatal(format!(
                            "predicate failed in {}: {e}",
                            self.blueprint.name
                        ));
                        return;
                    }
                },
            };
            if visible {
                any = true;
                out.record_dispatch(b.stream);
            } else {
                forbidden |= 1 << b.stream;
            }
        }
        if !any {
            return;
        }
        let key: Result<Row, _> = match &self.plain_keys {
            Some(cols) => cols.iter().map(|&c| row.get(c).cloned()).collect(),
            None => input.key_exprs.iter().map(|e| e.eval(&row)).collect(),
        };
        let key = match key {
            Ok(k) => k,
            Err(err) => {
                out.record_fatal(format!("key expr failed in {}: {err}", self.blueprint.name));
                return;
            }
        };

        if self.blueprint.map_only {
            // Apply stream 0's projection map-side and emit the final row.
            let projected: Row = match &self.value_move {
                Some(cols) => take_cols(row, cols),
                None => {
                    let carried = row.project(&input.value_cols);
                    let projected: Result<Row, _> = self.blueprint.streams[0]
                        .projection
                        .iter()
                        .map(|e| e.eval(&carried))
                        .collect();
                    match projected {
                        Ok(p) => p,
                        Err(err) => {
                            out.record_fatal(format!(
                                "projection failed in {}: {err}",
                                self.blueprint.name
                            ));
                            return;
                        }
                    }
                }
            };
            out.emit(key, projected);
            return;
        }

        let value = if self.tagged {
            let mut vals = Vec::with_capacity(input.value_cols.len() + 1);
            vals.push(Value::Int(forbidden as i64));
            match &self.value_move {
                Some(cols) => {
                    let mut raw = row.into_values();
                    vals.extend(
                        cols.iter()
                            .map(|&c| std::mem::replace(&mut raw[c], Value::Null)),
                    );
                }
                None => vals.extend(row.project(&input.value_cols).into_values()),
            }
            Row::new(vals)
        } else {
            // Direct mode: project for the single stream map-side.
            match &self.value_move {
                Some(cols) => take_cols(row, cols),
                None => {
                    let carried = row.project(&input.value_cols);
                    let projected: Result<Row, _> = self.blueprint.streams[0]
                        .projection
                        .iter()
                        .map(|e| e.eval(&carried))
                        .collect();
                    match projected {
                        Ok(p) => p,
                        Err(err) => {
                            out.record_fatal(format!(
                                "projection failed in {}: {err}",
                                self.blueprint.name
                            ));
                            return;
                        }
                    }
                }
            }
        };
        out.emit(key, self.pad(value));
    }

    fn map_batch(&mut self, batch: &ColumnBatch, out: &mut MapOutput) {
        // Per-branch visibility, resolved batch-at-a-time where a kernel
        // exists; `RowEval` rows materialize lazily below.
        enum Vis {
            Always,
            Mask(Mask),
            RowEval,
        }
        let input = &self.blueprint.inputs[self.input_idx];
        // Tagged multi-output files carry the tag as a leading Int column
        // (the columnar form of the `tag|rest` line prefix): keep matching
        // rows, drop the tag column.
        let owned;
        let batch = match input.tag_filter {
            None => batch,
            Some(want) => {
                if batch.num_rows() == 0 {
                    return;
                }
                let mask: Vec<bool> = match batch.columns().first() {
                    Some(Column::Int { data, nulls }) => data
                        .iter()
                        .zip(nulls)
                        .map(|(&t, &n)| !n && t == want)
                        .collect(),
                    Some(col) => (0..batch.num_rows())
                        .map(|r| col.value(r).as_int() == Some(want))
                        .collect(),
                    None => return,
                };
                owned = batch.filter(&mask).slice_cols(1);
                &owned
            }
        };
        let rows = batch.num_rows();
        // The text path surfaces a wrong-width record as a decode error;
        // a wrong-width batch is the same data problem, counted per row.
        if rows > 0 && batch.columns().len() != input.schema.len() {
            for _ in 0..rows {
                out.record_bad();
            }
            return;
        }
        let viz: Vec<Vis> = input
            .branches
            .iter()
            .map(|b| match &b.predicate {
                None => Vis::Always,
                Some(p) => match eval_mask(p, batch) {
                    Some(m) => Vis::Mask(m),
                    None => Vis::RowEval,
                },
            })
            .collect();
        let cols = batch.columns();
        for r in 0..rows {
            out.add_work(input.branches.len() as u64 - 1);
            let mut forbidden = self.foreign_mask;
            let mut any = false;
            let mut cached: Option<Row> = None;
            for (b, vis) in input.branches.iter().zip(&viz) {
                let visible = match vis {
                    Vis::Always => true,
                    Vis::Mask(m) => m[r] == Some(true),
                    Vis::RowEval => {
                        let row = cached.get_or_insert_with(|| batch.row(r));
                        let p = b.predicate.as_ref().expect("row-eval branch has predicate");
                        match p.eval_predicate(row) {
                            Ok(v) => v,
                            Err(e) => {
                                out.record_fatal(format!(
                                    "predicate failed in {}: {e}",
                                    self.blueprint.name
                                ));
                                return;
                            }
                        }
                    }
                };
                if visible {
                    any = true;
                    out.record_dispatch(b.stream);
                } else {
                    forbidden |= 1 << b.stream;
                }
            }
            if !any {
                continue;
            }
            let key = match &self.plain_keys {
                Some(kcols) if kcols.iter().all(|&c| c < cols.len()) => {
                    Row::new(kcols.iter().map(|&c| cols[c].value(r)).collect())
                }
                Some(_) => {
                    out.record_fatal(format!(
                        "key expr failed in {}: column out of range",
                        self.blueprint.name
                    ));
                    return;
                }
                None => {
                    let row = cached.get_or_insert_with(|| batch.row(r));
                    let key: Result<Row, _> = input.key_exprs.iter().map(|e| e.eval(row)).collect();
                    match key {
                        Ok(k) => k,
                        Err(err) => {
                            out.record_fatal(format!(
                                "key expr failed in {}: {err}",
                                self.blueprint.name
                            ));
                            return;
                        }
                    }
                }
            };

            if self.blueprint.map_only {
                let projected = match &self.value_move {
                    Some(vcols) => Row::new(vcols.iter().map(|&c| cols[c].value(r)).collect()),
                    None => {
                        let row = cached.get_or_insert_with(|| batch.row(r));
                        let carried = row.project(&input.value_cols);
                        let projected: Result<Row, _> = self.blueprint.streams[0]
                            .projection
                            .iter()
                            .map(|e| e.eval(&carried))
                            .collect();
                        match projected {
                            Ok(p) => p,
                            Err(err) => {
                                out.record_fatal(format!(
                                    "projection failed in {}: {err}",
                                    self.blueprint.name
                                ));
                                return;
                            }
                        }
                    }
                };
                out.emit(key, projected);
                continue;
            }

            let value = if self.tagged {
                let mut vals = Vec::with_capacity(input.value_cols.len() + 1);
                vals.push(Value::Int(forbidden as i64));
                match &self.value_move {
                    Some(vcols) => vals.extend(vcols.iter().map(|&c| cols[c].value(r))),
                    None => {
                        let row = cached.get_or_insert_with(|| batch.row(r));
                        vals.extend(row.project(&input.value_cols).into_values());
                    }
                }
                Row::new(vals)
            } else {
                match &self.value_move {
                    Some(vcols) => Row::new(vcols.iter().map(|&c| cols[c].value(r)).collect()),
                    None => {
                        let row = cached.get_or_insert_with(|| batch.row(r));
                        let carried = row.project(&input.value_cols);
                        let projected: Result<Row, _> = self.blueprint.streams[0]
                            .projection
                            .iter()
                            .map(|e| e.eval(&carried))
                            .collect();
                        match projected {
                            Ok(p) => p,
                            Err(err) => {
                                out.record_fatal(format!(
                                    "projection failed in {}: {err}",
                                    self.blueprint.name
                                ));
                                return;
                            }
                        }
                    }
                }
            };
            out.emit(key, self.pad(value));
        }
    }
}

impl CommonMapper {
    /// Appends the Pig-style serialisation pad, if configured.
    fn pad(&self, value: Row) -> Row {
        if self.blueprint.pad_bytes == 0 {
            return value;
        }
        let mut vals = value.into_values();
        vals.push(Value::Str("x".repeat(self.blueprint.pad_bytes)));
        Row::new(vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::{EmitSpec, InputSpec, MapBranch, OpKind, ROp, RSource, StreamSpec};
    use ysmart_rel::{BinOp, DataType, Expr, Schema};

    fn schema() -> Schema {
        Schema::of("t", &[("k", DataType::Int), ("v", DataType::Int)])
    }

    fn blueprint(branches: Vec<MapBranch>, nstreams: usize) -> Arc<JobBlueprint> {
        Arc::new(JobBlueprint {
            name: "j".into(),
            inputs: vec![InputSpec {
                path: "data/t".into(),
                schema: schema(),
                key_exprs: vec![Expr::col(0)],
                value_cols: vec![0, 1],
                branches,
                tag_filter: None,
            }],
            streams: (0..nstreams)
                .map(|_| StreamSpec {
                    projection: vec![Expr::col(0), Expr::col(1)],
                })
                .collect(),
            ops: vec![ROp {
                kind: OpKind::Pass,
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }],
            emit: EmitSpec::Single(RSource::Op(0)),
            output: "out".into(),
            reduce_tasks: Some(1),
            combiner: None,
            map_only: false,
            short_circuit_streams: vec![],
            pad_bytes: 0,
            key_cardinality: None,
        })
    }

    #[test]
    fn direct_mode_emits_projected_row() {
        let bp = blueprint(
            vec![MapBranch {
                stream: 0,
                predicate: None,
            }],
            1,
        );
        let mut m = CommonMapper::new(bp, 0);
        let mut out = MapOutput::default();
        m.map("7|42", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.keys()[0], ysmart_rel::row![7i64]);
        assert_eq!(out.values()[0], ysmart_rel::row![7i64, 42i64]);
    }

    #[test]
    fn selection_drops_record() {
        let bp = blueprint(
            vec![MapBranch {
                stream: 0,
                predicate: Some(Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(100i64))),
            }],
            1,
        );
        let mut m = CommonMapper::new(bp, 0);
        let mut out = MapOutput::default();
        m.map("7|42", &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tagged_mode_inverted_visibility() {
        // Branch 0 selects v > 10, branch 1 selects v < 100: a record with
        // v=42 is visible to both (tag 0); v=5 only to stream 1 (tag bit 0).
        let bp = blueprint(
            vec![
                MapBranch {
                    stream: 0,
                    predicate: Some(Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(10i64))),
                },
                MapBranch {
                    stream: 1,
                    predicate: Some(Expr::binary(BinOp::Lt, Expr::col(1), Expr::lit(100i64))),
                },
            ],
            2,
        );
        let mut m = CommonMapper::new(Arc::clone(&bp), 0);
        let mut out = MapOutput::default();
        m.map("1|42", &mut out);
        m.map("1|5", &mut out);
        m.map("1|1000", &mut out); // only stream 0
        let tags: Vec<i64> = out
            .values()
            .iter()
            .map(|v| v.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(tags, vec![0b00, 0b01, 0b10]);
        // The shared scan emitted one pair per record, not one per branch.
        assert_eq!(out.len(), 3);
        assert_eq!(out.work(), 3, "one extra branch evaluation per record");
    }

    #[test]
    fn foreign_streams_always_forbidden() {
        // Two inputs: input 0 feeds stream 0, input 1 feeds stream 1. Pairs
        // from input 0 must carry stream 1's bit in the forbidden mask.
        let bp = Arc::new(JobBlueprint {
            name: "j".into(),
            inputs: vec![
                InputSpec {
                    path: "data/a".into(),
                    schema: schema(),
                    key_exprs: vec![Expr::col(0)],
                    value_cols: vec![0, 1],
                    branches: vec![MapBranch {
                        stream: 0,
                        predicate: None,
                    }],
                    tag_filter: None,
                },
                InputSpec {
                    path: "data/b".into(),
                    schema: schema(),
                    key_exprs: vec![Expr::col(0)],
                    value_cols: vec![0],
                    branches: vec![MapBranch {
                        stream: 1,
                        predicate: None,
                    }],
                    tag_filter: None,
                },
            ],
            streams: vec![
                StreamSpec {
                    projection: vec![Expr::col(0), Expr::col(1)],
                },
                StreamSpec {
                    projection: vec![Expr::col(0)],
                },
            ],
            ops: vec![ROp {
                kind: OpKind::Pass,
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }],
            emit: EmitSpec::Single(RSource::Op(0)),
            output: "out".into(),
            reduce_tasks: Some(1),
            combiner: None,
            map_only: false,
            short_circuit_streams: vec![],
            pad_bytes: 0,
            key_cardinality: None,
        });
        let mut m0 = CommonMapper::new(Arc::clone(&bp), 0);
        let mut out = MapOutput::default();
        m0.map("1|2", &mut out);
        let tag = out.values()[0].get(0).unwrap().as_int().unwrap();
        assert_eq!(tag, 0b10, "stream 1 must not see input 0's pairs");
    }

    #[test]
    fn map_batch_matches_row_path() {
        // The same records through the text path and the columnar path
        // must emit identical keys, values, dispatch counts and work.
        let bp = blueprint(
            vec![
                MapBranch {
                    stream: 0,
                    predicate: Some(Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(10i64))),
                },
                MapBranch {
                    stream: 1,
                    predicate: Some(Expr::binary(BinOp::Lt, Expr::col(1), Expr::lit(100i64))),
                },
            ],
            2,
        );
        let rows = vec![
            ysmart_rel::row![1i64, 42i64],
            ysmart_rel::row![2i64, 5i64],
            ysmart_rel::row![3i64, 1000i64],
            ysmart_rel::row![4i64, 10i64],
        ];
        let mut text_out = MapOutput::default();
        let mut m = CommonMapper::new(Arc::clone(&bp), 0);
        for r in &rows {
            m.map(&ysmart_rel::codec::encode_line(r), &mut text_out);
        }
        let mut col_out = MapOutput::default();
        let mut m = CommonMapper::new(bp, 0);
        let batch = ysmart_rel::ColumnBatch::from_rows(&rows).unwrap();
        m.map_batch(&batch, &mut col_out);
        assert_eq!(text_out.keys(), col_out.keys());
        assert_eq!(text_out.values(), col_out.values());
        assert_eq!(text_out.work(), col_out.work());
        assert_eq!(text_out.take_dispatches(), col_out.take_dispatches());
    }

    #[test]
    fn map_batch_tag_filter_keeps_only_matching_rows() {
        // An intermediate tagged file: leading Int tag column; the mapper
        // for tag 1 must only see rows tagged 1 (with the tag stripped).
        let bp = Arc::new(JobBlueprint {
            inputs: vec![InputSpec {
                tag_filter: Some(1),
                ..bp_input()
            }],
            ..(*blueprint(
                vec![MapBranch {
                    stream: 0,
                    predicate: None,
                }],
                1,
            ))
            .clone()
        });
        let mut m = CommonMapper::new(bp, 0);
        let rows = vec![
            ysmart_rel::row![0i64, 7i64, 1i64],
            ysmart_rel::row![1i64, 8i64, 2i64],
            ysmart_rel::row![1i64, 9i64, 3i64],
        ];
        let batch = ysmart_rel::ColumnBatch::from_rows(&rows).unwrap();
        let mut out = MapOutput::default();
        m.map_batch(&batch, &mut out);
        assert_eq!(out.len(), 2, "tag-0 row dropped");
        assert_eq!(out.keys()[0], ysmart_rel::row![8i64]);
        assert_eq!(out.values()[1], ysmart_rel::row![9i64, 3i64]);
    }

    fn bp_input() -> InputSpec {
        InputSpec {
            path: "data/t".into(),
            schema: schema(),
            key_exprs: vec![Expr::col(0)],
            value_cols: vec![0, 1],
            branches: vec![MapBranch {
                stream: 0,
                predicate: None,
            }],
            tag_filter: None,
        }
    }

    #[test]
    fn bad_record_is_counted_and_skipped() {
        let bp = blueprint(
            vec![MapBranch {
                stream: 0,
                predicate: None,
            }],
            1,
        );
        let mut m = CommonMapper::new(bp, 0);
        let mut out = MapOutput::default();
        m.map("not-a-number|x", &mut out);
        m.map("7|42", &mut out);
        assert_eq!(out.bad_records(), 1, "torn record counted, not fatal");
        assert_eq!(out.len(), 1, "good record still processed");
    }
}
