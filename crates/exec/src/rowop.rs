//! Row-stream transforms attached to operator outputs.
//!
//! `Filter`, `Project`, `Sort` and `Limit` never get a MapReduce job of
//! their own (§V-A: selections/projections "are executed by the job
//! itself"); they run as cheap per-row transforms on the output of the
//! operator they are attached to.

use ysmart_rel::sort::sort_rows;
use ysmart_rel::{Expr, Row, SortKey};

use crate::error::ExecError;

/// One transform applied to an operator's output rows.
#[derive(Debug, Clone, PartialEq)]
pub enum RowOp {
    /// Keep rows satisfying the predicate.
    Filter(Expr),
    /// Compute a new row per input row.
    Project(Vec<Expr>),
    /// Sort the collection (only meaningful on single-reducer outputs,
    /// which is how Hive executes `ORDER BY` too).
    Sort(Vec<SortKey>),
    /// Keep the first `n` rows.
    Limit(usize),
}

impl RowOp {
    /// Applies the transform to a row collection, reporting the work done.
    ///
    /// # Errors
    ///
    /// Expression failures from `Filter`/`Project`.
    pub fn apply(&self, mut rows: Vec<Row>, work: &mut u64) -> Result<Vec<Row>, ExecError> {
        *work += rows.len() as u64;
        match self {
            RowOp::Filter(pred) => {
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    if pred.eval_predicate(&r)? {
                        out.push(r);
                    }
                }
                Ok(out)
            }
            RowOp::Project(exprs) => {
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    let mut vals = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        vals.push(e.eval(&r)?);
                    }
                    out.push(Row::new(vals));
                }
                Ok(out)
            }
            RowOp::Sort(keys) => {
                sort_rows(keys, &mut rows);
                Ok(rows)
            }
            RowOp::Limit(n) => {
                rows.truncate(*n);
                Ok(rows)
            }
        }
    }
}

/// Applies a transform chain in order.
///
/// # Errors
///
/// Propagates the first failing transform.
pub fn apply_chain(ops: &[RowOp], rows: Vec<Row>, work: &mut u64) -> Result<Vec<Row>, ExecError> {
    let mut rows = rows;
    for op in ops {
        rows = op.apply(rows, work)?;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::{row, BinOp};

    #[test]
    fn filter_project_chain() {
        let rows = vec![row![1i64, 10i64], row![2i64, 20i64], row![3i64, 30i64]];
        let ops = vec![
            RowOp::Filter(Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(1i64))),
            RowOp::Project(vec![Expr::col(1)]),
        ];
        let mut work = 0;
        let out = apply_chain(&ops, rows, &mut work).unwrap();
        assert_eq!(out, vec![row![20i64], row![30i64]]);
        assert_eq!(work, 3 + 2, "filter saw 3 rows, project saw 2");
    }

    #[test]
    fn sort_and_limit() {
        let rows = vec![row![3i64], row![1i64], row![2i64]];
        let ops = vec![RowOp::Sort(vec![SortKey::desc(0)]), RowOp::Limit(2)];
        let mut work = 0;
        let out = apply_chain(&ops, rows, &mut work).unwrap();
        assert_eq!(out, vec![row![3i64], row![2i64]]);
    }

    #[test]
    fn filter_error_propagates() {
        let rows = vec![row!["x"]];
        let ops = vec![RowOp::Filter(Expr::binary(
            BinOp::Add,
            Expr::col(0),
            Expr::lit(1i64),
        ))];
        let mut work = 0;
        assert!(apply_chain(&ops, rows, &mut work).is_err());
    }
}
