//! Physical job blueprints.
//!
//! A [`JobBlueprint`] is a pure-data description of one (possibly merged)
//! MapReduce job, the output of YSmart's job generation. It lists:
//!
//! * **inputs** — files to scan, each with the shared partition-key
//!   expressions and one or more *branches* (a branch is one merged job's
//!   view of this input: its selection predicate feeding one stream);
//! * **streams** — the logical inputs of the reduce-side operators, each
//!   with a projection from the carried value columns to the operator's
//!   input row;
//! * **ops** — the per-key operator DAG of the common reducer: the merged
//!   reducers (consuming streams) and the post-job computations (consuming
//!   other ops' outputs), in evaluation order;
//! * an **emit** source whose rows become the job output.
//!
//! Blueprints convert to executable [`ysmart_mapred::JobSpec`]s via
//! [`JobBlueprint::to_jobspec`].

use std::sync::Arc;

use ysmart_mapred::JobSpec;
use ysmart_plan::JoinKind;
use ysmart_rel::{AggFunc, Expr, Schema};

use crate::combiner::PartialAggCombiner;
use crate::error::ExecError;
use crate::mapper::CommonMapper;
use crate::reducer::CommonReducer;
use crate::rowop::RowOp;

/// One merged job's view of an input: its selection, feeding one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MapBranch {
    /// The stream this branch feeds.
    pub stream: usize,
    /// Selection over the input schema; `None` accepts every record.
    pub predicate: Option<Expr>,
}

/// One input file of the job.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    /// HDFS path.
    pub path: String,
    /// Schema for decoding the file's lines.
    pub schema: Schema,
    /// Partition-key expressions over the schema — shared by all branches
    /// of this input (transit correlation guarantees this).
    pub key_exprs: Vec<Expr>,
    /// The input columns carried in the map-output value: the union of the
    /// columns any branch's stream needs (§VI-A).
    pub value_cols: Vec<usize>,
    /// Branches reading this input.
    pub branches: Vec<MapBranch>,
    /// When reading the *tagged multi-output* file of an earlier merged job
    /// (a job whose reducers wrote several merged operations' results into
    /// one file, each line prefixed with a source tag — §VI-B), only lines
    /// with this tag are decoded; the rest are skipped.
    pub tag_filter: Option<i64>,
}

/// Reduce-side view of one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Projection from the carried value columns (the input's `value_cols`,
    /// in order) to the operator-input row for this stream.
    pub projection: Vec<Expr>,
}

/// Where an operator reads its per-key input rows from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RSource {
    /// A map-output stream.
    Stream(usize),
    /// The output of an earlier operator in the same job (a post-job
    /// computation consuming merged-reducer results, §VI-B).
    Op(usize),
}

/// What a job writes to its output file.
#[derive(Debug, Clone, PartialEq)]
pub enum EmitSpec {
    /// The rows of one source.
    Single(RSource),
    /// Several sources' rows into one file, each line prefixed with its
    /// source index — how a Rule-1-merged job without job-flow correlation
    /// publishes the outputs of all its merged operations ("an additional
    /// tag is used for each output key/value pair to distinguish its
    /// source", §VI-B).
    Tagged(Vec<RSource>),
}

/// The relational work an operator performs per key.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Equi-join of two sources. Because the partition key *is* the full
    /// equi-key set, every left row matches every right row within a key;
    /// only the residual predicate discriminates further.
    Join {
        /// Inner/left/right/full.
        kind: JoinKind,
        /// Non-equi residual over the concatenated row.
        residual: Option<Expr>,
        /// Width of left-source rows (for outer-join null padding).
        left_width: usize,
        /// Width of right-source rows.
        right_width: usize,
    },
    /// Grouping aggregation within the key (the group may extend the
    /// partition key — e.g. Q-CSA's AGG1 groups by `(uid, ts1)` but
    /// partitions by `uid` alone).
    Agg {
        /// Grouping columns within the source row.
        group_cols: Vec<usize>,
        /// Aggregate calls `(function, argument)`.
        aggs: Vec<(AggFunc, Option<Expr>)>,
        /// `HAVING` over the output row (groups then aggregates).
        having: Option<Expr>,
        /// When set, source rows are combiner partials
        /// (`[group…, partial fields…]`) to merge rather than raw rows.
        merge_partials: bool,
    },
    /// Pass rows through unchanged (sort/limit jobs, repartition).
    Pass,
}

/// One operator of the per-key DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct ROp {
    /// What it computes.
    pub kind: OpKind,
    /// Its sources (1 for `Agg`/`Pass`, 2 for `Join`).
    pub inputs: Vec<RSource>,
    /// Transforms applied to its output rows.
    pub transforms: Vec<RowOp>,
}

/// Map-side partial aggregation (the combiner of an AGGREGATION job —
/// Hive's "internal hash-aggregate map", paper footnote 2). Only valid for
/// single-stream *direct* jobs; the matching reduce op must set
/// `merge_partials`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialAgg {
    /// Grouping columns within the direct value row.
    pub group_cols: Vec<usize>,
    /// The aggregates (all must be [`AggFunc::combinable`]).
    pub aggs: Vec<(AggFunc, Option<Expr>)>,
}

impl PartialAgg {
    /// Number of columns a partial row carries for one aggregate.
    #[must_use]
    pub fn partial_width(func: AggFunc) -> usize {
        match func {
            AggFunc::Avg => 2, // sum, count
            _ => 1,
        }
    }
}

/// A full physical job description.
#[derive(Debug, Clone, PartialEq)]
pub struct JobBlueprint {
    /// Job name (metrics, figures).
    pub name: String,
    /// Input files with their branches.
    pub inputs: Vec<InputSpec>,
    /// Reduce-side streams (indexed by `MapBranch::stream`).
    pub streams: Vec<StreamSpec>,
    /// The per-key operator DAG, in evaluation order.
    pub ops: Vec<ROp>,
    /// Which source's rows the job outputs.
    pub emit: EmitSpec,
    /// Output path.
    pub output: String,
    /// Reduce-task count (`None` = cluster default; sorts and global
    /// aggregations use 1).
    pub reduce_tasks: Option<usize>,
    /// Map-side combiner (single-stream aggregation jobs only).
    pub combiner: Option<PartialAgg>,
    /// Map-only job (SELECTION-PROJECTION): the mapper applies stream 0's
    /// projection and the engine writes the rows directly.
    pub map_only: bool,
    /// Hand-coded-style short-circuit: if any of these streams is empty for
    /// a key, the whole key is skipped without evaluating any operator
    /// (§VII-C case 4).
    pub short_circuit_streams: Vec<usize>,
    /// Filler bytes appended to every map-output value — models Pig's
    /// bulkier intermediate serialisation (the paper's Pig runs produced
    /// "much larger intermediate results"). The reducer strips the pad.
    pub pad_bytes: usize,
    /// Estimated distinct shuffle keys (from table statistics), forwarded
    /// to the engine as a reduce-task cap.
    pub key_cardinality: Option<u64>,
}

impl JobBlueprint {
    /// Whether map-output values carry a visibility tag. Single-branch jobs
    /// skip the tag (and may then use a combiner).
    #[must_use]
    pub fn tagged(&self) -> bool {
        self.inputs.iter().map(|i| i.branches.len()).sum::<usize>() > 1
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidBlueprint`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ExecError> {
        let bad = |msg: String| Err(ExecError::InvalidBlueprint(msg));
        if self.inputs.is_empty() {
            return bad("no inputs".into());
        }
        let nstreams = self.streams.len();
        let mut fed = vec![false; nstreams];
        for (i, input) in self.inputs.iter().enumerate() {
            if input.branches.is_empty() {
                return bad(format!("input {i} has no branches"));
            }
            for b in &input.branches {
                if b.stream >= nstreams {
                    return bad(format!("branch stream {} out of range", b.stream));
                }
                if fed[b.stream] {
                    return bad(format!("stream {} fed by two branches", b.stream));
                }
                fed[b.stream] = true;
            }
        }
        if let Some(unfed) = fed.iter().position(|f| !f) {
            return bad(format!("stream {unfed} not fed by any branch"));
        }
        if nstreams > 64 {
            return bad("more than 64 streams (tag is a 64-bit mask)".into());
        }
        for (i, op) in self.ops.iter().enumerate() {
            let arity = match op.kind {
                OpKind::Join { .. } => 2,
                OpKind::Agg { .. } | OpKind::Pass => 1,
            };
            if op.inputs.len() != arity {
                return bad(format!(
                    "op {i} expects {arity} inputs, has {}",
                    op.inputs.len()
                ));
            }
            for src in &op.inputs {
                match src {
                    RSource::Stream(s) if *s >= nstreams => {
                        return bad(format!("op {i} reads missing stream {s}"));
                    }
                    RSource::Op(o) if *o >= i => {
                        return bad(format!("op {i} reads op {o} (not yet evaluated)"));
                    }
                    _ => {}
                }
            }
        }
        let emit_sources: Vec<RSource> = match &self.emit {
            EmitSpec::Single(s) => vec![*s],
            EmitSpec::Tagged(ss) => ss.clone(),
        };
        if emit_sources.is_empty() {
            return bad("tagged emit with no sources".into());
        }
        for src in &emit_sources {
            match src {
                RSource::Stream(s) if *s >= nstreams => {
                    return bad("emit stream out of range".into())
                }
                RSource::Op(o) if *o >= self.ops.len() => return bad("emit op out of range".into()),
                _ => {}
            }
        }
        if self.map_only {
            if self.tagged() || !self.ops.is_empty() {
                return bad("map-only jobs take one branch and no ops".into());
            }
            if self.emit != EmitSpec::Single(RSource::Stream(0)) {
                return bad("map-only jobs emit stream 0".into());
            }
        }
        if self.combiner.is_some() {
            if self.tagged() {
                return bad("combiner requires a single (direct) stream".into());
            }
            if self.pad_bytes > 0 {
                return bad("combiner and value padding are mutually exclusive".into());
            }
            if let Some(c) = &self.combiner {
                if let Some((f, _)) = c.aggs.iter().find(|(f, _)| !f.combinable()) {
                    return bad(format!("aggregate {f} is not combinable"));
                }
            }
        }
        for &s in &self.short_circuit_streams {
            if s >= nstreams {
                return bad(format!("short-circuit stream {s} out of range"));
            }
        }
        Ok(())
    }

    /// Canonical fingerprint of the blueprint's *structure*: every field
    /// that determines what the job computes — operator DAG, schemas, key
    /// and value expressions, emit shape, combiner, padding, reduce-task
    /// count — excluding the job name and the concrete input/output paths,
    /// which vary per submission tag even when the computation is
    /// identical. Two blueprints with equal structural fingerprints perform
    /// the same computation over whatever data their inputs hold; combined
    /// with the identity of those inputs (producer fingerprints for
    /// intermediates, content checksums for base tables — see the chain
    /// builder in `ysmart_core`) this yields the full cross-query reuse
    /// fingerprint.
    ///
    /// The canonical encoding is the derived `Debug` rendering of a copy
    /// with the excluded fields blanked: deterministic, covers every field
    /// (new fields change the fingerprint by construction), hashed with the
    /// same XXH64 used for block integrity.
    #[must_use]
    pub fn structural_fingerprint(&self) -> u64 {
        let mut canon = self.clone();
        canon.name.clear();
        canon.output.clear();
        for input in &mut canon.inputs {
            input.path.clear();
        }
        ysmart_mapred::hash::checksum_bytes(format!("{canon:?}").as_bytes())
    }

    /// Converts the blueprint into an executable job spec.
    ///
    /// # Errors
    ///
    /// Validation failures.
    pub fn to_jobspec(&self) -> Result<JobSpec, ExecError> {
        self.validate()?;
        let me = Arc::new(self.clone());
        let mut builder = JobSpec::builder(&self.name).output(&self.output);
        for (idx, input) in self.inputs.iter().enumerate() {
            let bp = Arc::clone(&me);
            builder = builder.input(&input.path, move || {
                Box::new(CommonMapper::new(Arc::clone(&bp), idx))
            });
        }
        if !self.map_only {
            let bp = Arc::clone(&me);
            builder = builder.reducer(move || Box::new(CommonReducer::new(Arc::clone(&bp))));
            if self.combiner.is_some() {
                let bp = Arc::clone(&me);
                builder =
                    builder.combiner(move || Box::new(PartialAggCombiner::new(Arc::clone(&bp))));
            }
        }
        if let Some(n) = self.reduce_tasks {
            builder = builder.reduce_tasks(n);
        }
        if let Some(k) = self.key_cardinality {
            builder = builder.key_cardinality_hint(k);
        }
        Ok(builder.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::DataType;

    fn simple_schema() -> Schema {
        Schema::of("t", &[("k", DataType::Int), ("v", DataType::Int)])
    }

    fn minimal() -> JobBlueprint {
        JobBlueprint {
            name: "j".into(),
            inputs: vec![InputSpec {
                path: "data/t".into(),
                schema: simple_schema(),
                key_exprs: vec![Expr::col(0)],
                value_cols: vec![0, 1],
                branches: vec![MapBranch {
                    stream: 0,
                    predicate: None,
                }],
                tag_filter: None,
            }],
            streams: vec![StreamSpec {
                projection: vec![Expr::col(0), Expr::col(1)],
            }],
            ops: vec![ROp {
                kind: OpKind::Pass,
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }],
            emit: EmitSpec::Single(RSource::Op(0)),
            output: "out/j".into(),
            reduce_tasks: Some(1),
            combiner: None,
            map_only: false,
            short_circuit_streams: vec![],
            pad_bytes: 0,
            key_cardinality: None,
        }
    }

    #[test]
    fn minimal_validates_and_is_direct() {
        let bp = minimal();
        bp.validate().unwrap();
        assert!(!bp.tagged());
        bp.to_jobspec().unwrap();
    }

    #[test]
    fn two_branches_are_tagged() {
        let mut bp = minimal();
        bp.inputs[0].branches.push(MapBranch {
            stream: 1,
            predicate: None,
        });
        bp.streams.push(StreamSpec {
            projection: vec![Expr::col(0)],
        });
        assert!(bp.tagged());
        bp.validate().unwrap();
    }

    #[test]
    fn rejects_unfed_stream() {
        let mut bp = minimal();
        bp.streams.push(StreamSpec { projection: vec![] });
        let e = bp.validate().unwrap_err();
        assert!(e.to_string().contains("not fed"));
    }

    #[test]
    fn rejects_forward_op_reference() {
        let mut bp = minimal();
        bp.ops[0].inputs = vec![RSource::Op(0)];
        assert!(bp.validate().is_err());
    }

    #[test]
    fn rejects_join_with_one_input() {
        let mut bp = minimal();
        bp.ops[0].kind = OpKind::Join {
            kind: JoinKind::Inner,
            residual: None,
            left_width: 2,
            right_width: 2,
        };
        assert!(bp.validate().is_err());
    }

    #[test]
    fn rejects_combiner_on_tagged_job() {
        let mut bp = minimal();
        bp.inputs[0].branches.push(MapBranch {
            stream: 1,
            predicate: None,
        });
        bp.streams.push(StreamSpec {
            projection: vec![Expr::col(0)],
        });
        bp.combiner = Some(PartialAgg {
            group_cols: vec![],
            aggs: vec![(AggFunc::Sum, Some(Expr::col(1)))],
        });
        assert!(bp.validate().is_err());
    }

    #[test]
    fn rejects_non_combinable_combiner() {
        let mut bp = minimal();
        bp.combiner = Some(PartialAgg {
            group_cols: vec![],
            aggs: vec![(AggFunc::CountDistinct, Some(Expr::col(1)))],
        });
        assert!(bp.validate().is_err());
    }

    #[test]
    fn map_only_constraints() {
        let mut bp = minimal();
        bp.map_only = true;
        assert!(bp.validate().is_err(), "ops must be empty");
        bp.ops.clear();
        bp.emit = EmitSpec::Single(RSource::Stream(0));
        bp.validate().unwrap();
    }

    #[test]
    fn partial_width_avg_is_two() {
        assert_eq!(PartialAgg::partial_width(AggFunc::Avg), 2);
        assert_eq!(PartialAgg::partial_width(AggFunc::Sum), 1);
    }

    #[test]
    fn structural_fingerprint_ignores_names_and_paths() {
        let a = minimal();
        let mut b = minimal();
        b.name = "renamed".into();
        b.output = "tmp/other-tag-j1".into();
        b.inputs[0].path = "tmp/other-tag-j0".into();
        assert_eq!(a.structural_fingerprint(), b.structural_fingerprint());
    }

    #[test]
    fn structural_fingerprint_sees_semantic_changes() {
        let a = minimal();
        let mut pred = minimal();
        pred.inputs[0].branches[0].predicate = Some(Expr::col(1));
        let mut tasks = minimal();
        tasks.reduce_tasks = Some(4);
        let mut agg = minimal();
        agg.ops[0].kind = OpKind::Agg {
            group_cols: vec![0],
            aggs: vec![(AggFunc::Sum, Some(Expr::col(1)))],
            having: None,
            merge_partials: false,
        };
        let fp = a.structural_fingerprint();
        assert_ne!(fp, pred.structural_fingerprint());
        assert_ne!(fp, tasks.structural_fingerprint());
        assert_ne!(fp, agg.structural_fingerprint());
    }
}
