//! Vectorized predicate evaluation over [`ColumnBatch`]es.
//!
//! [`eval_mask`] evaluates a predicate [`Expr`] against a whole batch at
//! once, returning one Kleene truth value per row (`Some(true)` /
//! `Some(false)` / `None` = SQL unknown) — the columnar counterpart of
//! [`Expr::eval_predicate`] called row by row, with identical semantics:
//! a row passes the predicate iff its mask slot is `Some(true)`.
//!
//! Only the shapes the translated plans actually produce get fast paths:
//! comparisons of a column against a literal (typed per-column kernels; a
//! dictionary-encoded string column is compared once per *dictionary
//! entry*, not once per row) or against another column (Q21's
//! `l_receiptdate > l_commitdate`), `AND`/`OR`/`NOT` in Kleene logic, and
//! `IS [NOT] NULL` of a column. Anything else returns `None` and the
//! caller falls back to materializing rows — correctness never depends on
//! a fast path existing. Every supported shape is total (comparisons
//! yield unknown, never an error), so the mask path cannot diverge from
//! the row evaluator on error behaviour.

use std::cmp::Ordering;

use ysmart_rel::colbatch::{Column, ColumnBatch};
use ysmart_rel::{BinOp, Expr, UnOp, Value};

/// One Kleene truth value per batch row.
pub type Mask = Vec<Option<bool>>;

/// Does `ord` satisfy the comparison `op`? Mirrors the row evaluator's
/// ordering-to-bool mapping exactly.
fn ord_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("comparison op"),
    }
}

fn combine(op: BinOp, l: Mask, r: Mask) -> Mask {
    l.into_iter()
        .zip(r)
        .map(|(a, b)| match op {
            BinOp::And => match (a, b) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (a, b) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!("logic op"),
        })
        .collect()
}

/// Comparison of a column against a literal. `flipped` means the literal
/// was the left operand (`lit OP col`), handled by reversing the ordering.
fn cmp_col_lit(col: &Column, lit: &Value, op: BinOp, flipped: bool, rows: usize) -> Mask {
    let fix = |ord: Ordering| if flipped { ord.reverse() } else { ord };
    match (col, lit) {
        (_, Value::Null) => vec![None; rows],
        (Column::Int { data, nulls }, Value::Int(b)) => data
            .iter()
            .zip(nulls)
            .map(|(a, &n)| (!n).then(|| ord_matches(op, fix(a.cmp(b)))))
            .collect(),
        (Column::Int { data, nulls }, Value::Float(b)) => data
            .iter()
            .zip(nulls)
            .map(|(a, &n)| {
                if n {
                    None
                } else {
                    (*a as f64).partial_cmp(b).map(|o| ord_matches(op, fix(o)))
                }
            })
            .collect(),
        (Column::Float { data, nulls }, Value::Int(_) | Value::Float(_)) => {
            let b = lit.as_float().expect("numeric literal");
            data.iter()
                .zip(nulls)
                .map(|(a, &n)| {
                    if n {
                        None
                    } else {
                        a.partial_cmp(&b).map(|o| ord_matches(op, fix(o)))
                    }
                })
                .collect()
        }
        (Column::Bool { data, nulls }, Value::Bool(b)) => data
            .iter()
            .zip(nulls)
            .map(|(a, &n)| (!n).then(|| ord_matches(op, fix(a.cmp(b)))))
            .collect(),
        (Column::Str { dict, idx, nulls }, Value::Str(s)) => {
            // One comparison per distinct string, then an index lookup per
            // row — the dictionary-encoding payoff.
            let table: Vec<bool> = dict
                .iter()
                .map(|d| ord_matches(op, fix(d.as_str().cmp(s.as_str()))))
                .collect();
            idx.iter()
                .zip(nulls)
                .map(|(&i, &n)| (!n).then(|| table[i as usize]))
                .collect()
        }
        (Column::Var(vals), _) => vals
            .iter()
            .map(|v| v.sql_cmp(lit).map(|o| ord_matches(op, fix(o))))
            .collect(),
        // Cross-type comparisons (e.g. a string column against an integer
        // literal): `Value::sql_cmp` yields `None` for every non-null pair
        // and NULLs compare unknown too, so the whole mask is unknown.
        _ => vec![None; rows],
    }
}

/// Comparison of two columns element-wise, mirroring the row evaluator's
/// `sql_cmp` semantics: NULL on either side compares unknown, numerics
/// widen, and mismatched types are unknown per pair.
fn cmp_col_col(a: &Column, b: &Column, op: BinOp, rows: usize) -> Mask {
    match (a, b) {
        (
            Column::Int {
                data: da,
                nulls: na,
            },
            Column::Int {
                data: db,
                nulls: nb,
            },
        ) => da
            .iter()
            .zip(db)
            .zip(na.iter().zip(nb))
            .map(|((x, y), (&nx, &ny))| (!nx && !ny).then(|| ord_matches(op, x.cmp(y))))
            .collect(),
        (
            Column::Float {
                data: da,
                nulls: na,
            },
            Column::Float {
                data: db,
                nulls: nb,
            },
        ) => da
            .iter()
            .zip(db)
            .zip(na.iter().zip(nb))
            .map(|((x, y), (&nx, &ny))| {
                if nx || ny {
                    None
                } else {
                    x.partial_cmp(y).map(|o| ord_matches(op, o))
                }
            })
            .collect(),
        (
            Column::Int {
                data: da,
                nulls: na,
            },
            Column::Float {
                data: db,
                nulls: nb,
            },
        ) => da
            .iter()
            .zip(db)
            .zip(na.iter().zip(nb))
            .map(|((x, y), (&nx, &ny))| {
                if nx || ny {
                    None
                } else {
                    (*x as f64).partial_cmp(y).map(|o| ord_matches(op, o))
                }
            })
            .collect(),
        (
            Column::Float {
                data: da,
                nulls: na,
            },
            Column::Int {
                data: db,
                nulls: nb,
            },
        ) => da
            .iter()
            .zip(db)
            .zip(na.iter().zip(nb))
            .map(|((x, y), (&nx, &ny))| {
                if nx || ny {
                    None
                } else {
                    x.partial_cmp(&(*y as f64)).map(|o| ord_matches(op, o))
                }
            })
            .collect(),
        (
            Column::Bool {
                data: da,
                nulls: na,
            },
            Column::Bool {
                data: db,
                nulls: nb,
            },
        ) => da
            .iter()
            .zip(db)
            .zip(na.iter().zip(nb))
            .map(|((x, y), (&nx, &ny))| (!nx && !ny).then(|| ord_matches(op, x.cmp(y))))
            .collect(),
        (
            Column::Str {
                dict: dict_a,
                idx: idx_a,
                nulls: na,
            },
            Column::Str {
                dict: dict_b,
                idx: idx_b,
                nulls: nb,
            },
        ) => idx_a
            .iter()
            .zip(idx_b)
            .zip(na.iter().zip(nb))
            .map(|((&ia, &ib), (&nx, &ny))| {
                (!nx && !ny).then(|| ord_matches(op, dict_a[ia as usize].cmp(&dict_b[ib as usize])))
            })
            .collect(),
        // Mixed or Var-typed pairs: per-row `sql_cmp` on materialized
        // values — still one pass, no row materialization.
        _ => (0..rows)
            .map(|r| a.value(r).sql_cmp(&b.value(r)).map(|o| ord_matches(op, o)))
            .collect(),
    }
}

/// Evaluates `expr` as a predicate over every row of `batch` at once.
///
/// Returns `None` when the expression has a shape without a vectorized
/// kernel (arithmetic, out-of-bounds column references) — the caller must
/// then fall back to the row evaluator.
#[must_use]
pub fn eval_mask(expr: &Expr, batch: &ColumnBatch) -> Option<Mask> {
    let rows = batch.num_rows();
    match expr {
        Expr::Literal(v) => Some(vec![v.as_bool(); rows]),
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::And | BinOp::Or => {
                let l = eval_mask(lhs, batch)?;
                let r = eval_mask(rhs, batch)?;
                Some(combine(*op, l, r))
            }
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                match (&**lhs, &**rhs) {
                    (Expr::Column(i), Expr::Literal(v)) => {
                        Some(cmp_col_lit(batch.columns().get(*i)?, v, *op, false, rows))
                    }
                    (Expr::Literal(v), Expr::Column(i)) => {
                        Some(cmp_col_lit(batch.columns().get(*i)?, v, *op, true, rows))
                    }
                    (Expr::Column(i), Expr::Column(j)) => Some(cmp_col_col(
                        batch.columns().get(*i)?,
                        batch.columns().get(*j)?,
                        *op,
                        rows,
                    )),
                    _ => None,
                }
            }
            // Arithmetic doesn't yield a truth value; let the row path
            // handle (and reject) it.
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => None,
        },
        Expr::Unary { op, operand } => match op {
            UnOp::Not => {
                let m = eval_mask(operand, batch)?;
                Some(m.into_iter().map(|v| v.map(|b| !b)).collect())
            }
            UnOp::IsNull | UnOp::IsNotNull => {
                let Expr::Column(i) = &**operand else {
                    return None;
                };
                let col = batch.columns().get(*i)?;
                let want = *op == UnOp::IsNull;
                Some(
                    (0..rows)
                        .map(|r| Some(col.value(r).is_null() == want))
                        .collect(),
                )
            }
            UnOp::Neg => None,
        },
        // A bare column as a predicate: only boolean columns make sense,
        // everything else evaluates to unknown like the row path.
        Expr::Column(i) => match batch.columns().get(*i)? {
            Column::Bool { data, nulls } => Some(
                data.iter()
                    .zip(nulls)
                    .map(|(&b, &n)| (!n).then_some(b))
                    .collect(),
            ),
            Column::Var(vals) => Some(vals.iter().map(Value::as_bool).collect()),
            _ => Some(vec![None; rows]),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::{row, Row};

    fn batch(rows: &[Row]) -> ColumnBatch {
        ColumnBatch::from_rows(rows).unwrap()
    }

    /// Every mask slot must equal the row evaluator's verdict.
    fn assert_matches_rows(e: &Expr, rows: &[Row]) {
        let b = batch(rows);
        let mask = eval_mask(e, &b).expect("mask kernel exists");
        for (r, row) in rows.iter().enumerate() {
            let via_row = e.eval_predicate(row).unwrap();
            assert_eq!(
                mask[r] == Some(true),
                via_row,
                "row {r}: mask {:?} vs eval_predicate {via_row} for {e}",
                mask[r]
            );
        }
    }

    #[test]
    fn int_comparisons_match_row_eval() {
        let rows = vec![row![1i64, 10i64], row![5i64, 3i64], row![7i64, 7i64]];
        for op in [
            BinOp::Eq,
            BinOp::NotEq,
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
        ] {
            assert_matches_rows(&Expr::binary(op, Expr::col(0), Expr::lit(5i64)), &rows);
            assert_matches_rows(&Expr::binary(op, Expr::lit(5i64), Expr::col(0)), &rows);
        }
    }

    #[test]
    fn col_vs_col_comparisons_match_row_eval() {
        // Typed same-type pairs (Q21's date-vs-date shape), widened
        // numeric pairs, strings, and NULLs on either side.
        let int_rows = vec![
            row![1i64, 10i64],
            row![5i64, 3i64],
            row![7i64, 7i64],
            row![Value::Null, 1i64],
            row![2i64, Value::Null],
        ];
        let float_rows = vec![row![1.5f64, 2i64], row![3.0f64, 3i64], row![9.5f64, 1i64]];
        let str_rows = vec![row!["a", "b"], row!["b", "b"], row!["c", "a"]];
        for op in [
            BinOp::Eq,
            BinOp::NotEq,
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
        ] {
            let e = Expr::binary(op, Expr::col(0), Expr::col(1));
            assert_matches_rows(&e, &int_rows);
            assert_matches_rows(&e, &float_rows);
            assert_matches_rows(&e, &str_rows);
            assert_matches_rows(&Expr::binary(op, Expr::col(1), Expr::col(0)), &float_rows);
        }
    }

    #[test]
    fn str_dictionary_comparison() {
        let rows = vec![row!["F", 1i64], row!["M", 2i64], row!["F", 3i64]];
        let e = Expr::col(0).eq(Expr::lit("F"));
        let b = batch(&rows);
        assert_eq!(
            eval_mask(&e, &b).unwrap(),
            vec![Some(true), Some(false), Some(true)]
        );
        assert_matches_rows(
            &Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit("M")),
            &rows,
        );
    }

    #[test]
    fn mixed_numeric_comparison() {
        let rows = vec![row![1i64, 0.5f64], row![2i64, 2.5f64]];
        assert_matches_rows(
            &Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(1.0f64)),
            &rows,
        );
        assert_matches_rows(
            &Expr::binary(BinOp::LtEq, Expr::col(0), Expr::lit(1.5f64)),
            &rows,
        );
    }

    #[test]
    fn null_compares_unknown() {
        let rows = vec![
            Row::new(vec![Value::Null, Value::Int(1)]),
            Row::new(vec![Value::Int(3), Value::Int(1)]),
        ];
        let e = Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(1i64));
        let b = batch(&rows);
        assert_eq!(eval_mask(&e, &b).unwrap(), vec![None, Some(true)]);
        // NULL literal: unknown everywhere.
        let e = Expr::col(1).eq(Expr::Literal(Value::Null));
        assert_eq!(eval_mask(&e, &b).unwrap(), vec![None, None]);
    }

    #[test]
    fn kleene_and_or_not() {
        let rows = vec![
            Row::new(vec![Value::Int(5), Value::Null]),
            Row::new(vec![Value::Int(1), Value::Int(9)]),
            Row::new(vec![Value::Int(5), Value::Int(0)]),
        ];
        let gt = Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(3i64));
        let lt = Expr::binary(BinOp::Lt, Expr::col(1), Expr::lit(5i64));
        assert_matches_rows(&gt.clone().and(lt.clone()), &rows);
        assert_matches_rows(&gt.clone().or(lt.clone()), &rows);
        let not = Expr::Unary {
            op: UnOp::Not,
            operand: Box::new(gt.and(lt)),
        };
        assert_matches_rows(&not, &rows);
    }

    #[test]
    fn is_null_kernels() {
        let rows = vec![
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Str("x".into())]),
        ];
        let b = batch(&rows);
        let isnull = Expr::Unary {
            op: UnOp::IsNull,
            operand: Box::new(Expr::col(0)),
        };
        assert_eq!(
            eval_mask(&isnull, &b).unwrap(),
            vec![Some(true), Some(false)]
        );
        let notnull = Expr::Unary {
            op: UnOp::IsNotNull,
            operand: Box::new(Expr::col(0)),
        };
        assert_eq!(
            eval_mask(&notnull, &b).unwrap(),
            vec![Some(false), Some(true)]
        );
    }

    #[test]
    fn cross_type_comparison_is_unknown() {
        let rows = vec![row!["a", 1i64]];
        let e = Expr::col(0).eq(Expr::lit(1i64));
        assert_eq!(eval_mask(&e, &batch(&rows)).unwrap(), vec![None]);
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let rows = vec![row![1i64, 2i64]];
        let b = batch(&rows);
        // Arithmetic inside a predicate: no kernel.
        let arith = Expr::binary(
            BinOp::Gt,
            Expr::binary(BinOp::Add, Expr::col(0), Expr::lit(1i64)),
            Expr::lit(0i64),
        );
        assert!(eval_mask(&arith, &b).is_none());
        // Out-of-bounds column: no kernel (row path reports the error).
        assert!(eval_mask(&Expr::col(9).eq(Expr::lit(1i64)), &b).is_none());
    }
}
