//! The common reducer (§VI-B, Algorithm 1).
//!
//! For each key the reducer makes **one pass** over the value list,
//! dispatching each value to the streams allowed by its (inverted) tag.
//! It then evaluates the per-key operator DAG: merged reducers (join /
//! aggregation / pass ops reading streams) first, post-job computations
//! (ops reading other ops' outputs) after — exactly the structure rules
//! 2–4 of §V-B create. Only the emit source's rows are written to HDFS; the
//! outputs of intermediate ops stay in memory, which is the entire point of
//! job-flow-correlation merging (the paper: "the persistence and
//! re-partitioning of intermediate tables inner and outer are actually
//! avoided").
//!
//! Every value routed to a stream is counted via
//! [`ReduceOutput::record_dispatch`], surfacing the post-shuffle fan-out of
//! merged jobs in `JobMetrics::reduce_dispatches`. Evaluation errors —
//! planner bugs, not data problems — abort the job via
//! [`ReduceOutput::record_fatal`], which the engine turns into a typed
//! `MapRedError::User` failure instead of a panic.

use std::collections::BTreeMap;
use std::sync::Arc;

use ysmart_mapred::{ReduceOutput, Reducer};
use ysmart_plan::JoinKind;
use ysmart_rel::{AggState, Expr, Row, Value};

use crate::blueprint::{EmitSpec, JobBlueprint, OpKind, RSource};
use crate::combiner::{decode_partial, update_states};
use crate::rowop::apply_chain;

/// The CMF reducer for a job.
#[derive(Debug)]
pub struct CommonReducer {
    blueprint: Arc<JobBlueprint>,
    tagged: bool,
    /// Per stream: the projection's column indices when every expression is
    /// a plain column reference — the overwhelmingly common case, dispatched
    /// without materialising a carried row or walking the expression tree.
    plain_projections: Vec<Option<Vec<usize>>>,
    /// Per-stream dispatch buffers, cleared and refilled for every key
    /// group instead of reallocated — reduce tasks see thousands of groups.
    streams: Vec<Vec<Row>>,
    /// Retired dispatch rows, recycled across key groups: a projected row
    /// reuses a spare row's allocation instead of hitting the allocator
    /// once per dispatched value.
    spare: Vec<Vec<Value>>,
}

/// One operator's output: owned rows, or an alias back to its input when
/// the op passed rows through untouched (no copy per key group).
enum OpRows {
    Owned(Vec<Row>),
    Alias(RSource),
}

impl CommonReducer {
    /// Creates the reducer for a blueprint.
    #[must_use]
    pub fn new(blueprint: Arc<JobBlueprint>) -> Self {
        let tagged = blueprint.tagged();
        let plain_projections = blueprint
            .streams
            .iter()
            .map(|spec| {
                spec.projection
                    .iter()
                    .map(|e| match e {
                        Expr::Column(i) => Some(*i),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        let streams = vec![Vec::new(); blueprint.streams.len()];
        CommonReducer {
            blueprint,
            tagged,
            plain_projections,
            streams,
            spare: Vec::new(),
        }
    }

    fn source_rows<'a>(
        streams: &'a [&'a [Row]],
        op_outputs: &'a [OpRows],
        mut src: RSource,
    ) -> &'a [Row] {
        loop {
            match src {
                RSource::Stream(s) => return streams[s],
                RSource::Op(o) => match &op_outputs[o] {
                    OpRows::Owned(rows) => return rows,
                    OpRows::Alias(a) => src = *a,
                },
            }
        }
    }
}

impl Reducer for CommonReducer {
    fn reduce(&mut self, _key: &Row, values: &[Row], out: &mut ReduceOutput) {
        let bp = &self.blueprint;
        // ---- Algorithm 1: one pass over the values, dispatch by tag ------
        // Retire the previous group's dispatch rows into the spare pool
        // instead of freeing them.
        for s in &mut self.streams {
            self.spare.extend(s.drain(..).map(Row::into_values));
        }
        // Strip the Pig-style serialisation pad (one trailing column)
        // before any processing. Tagged dispatch already re-slices every
        // value, so there the pad is dropped by shortening that slice; only
        // direct mode — where the group's rows feed the op DAG as-is — has
        // to materialise unpadded rows.
        let pad_cols = usize::from(bp.pad_bytes > 0);
        let unpadded: Vec<Row>;
        let values: &[Row] = if pad_cols > 0 && !self.tagged {
            unpadded = values
                .iter()
                .map(|v| {
                    let mut vals = v.values().to_vec();
                    vals.pop();
                    Row::new(vals)
                })
                .collect();
            &unpadded
        } else {
            values
        };
        // ---- hand-coded short-circuit (§VII-C case 4) ---------------------
        // The paper's hand-written reducer returns immediately when a
        // required input (e.g. the `orders` side with status 'F') has no
        // pairs for this key — *before* doing any per-value work. A cheap
        // tag-only pre-pass detects that; it costs roughly an eighth of a
        // full dispatch per value (an integer check vs. projection).
        if !bp.short_circuit_streams.is_empty() && self.tagged {
            let mut present = 0u64;
            for v in values {
                let tag = v.get(0).ok().and_then(Value::as_int).unwrap_or(0) as u64;
                present |= !tag;
            }
            out.add_work(values.len() as u64 / 8);
            for &s in &bp.short_circuit_streams {
                if present & (1 << s) == 0 {
                    return;
                }
            }
        }

        if self.tagged {
            for v in values {
                let tag = v.get(0).ok().and_then(Value::as_int).unwrap_or(0) as u64;
                let vals = &v.values()[1..v.len() - pad_cols];
                // Materialised only for streams with computed projections.
                let mut carried: Option<Row> = None;
                for (s, spec) in bp.streams.iter().enumerate() {
                    if tag & (1 << s) != 0 {
                        continue; // inverted tag: this stream must not see it
                    }
                    out.add_work(1);
                    out.record_dispatch(s);
                    let projected: Result<Row, String> = match &self.plain_projections[s] {
                        Some(cols) => {
                            let mut buf = self.spare.pop().unwrap_or_default();
                            buf.clear();
                            buf.reserve(cols.len());
                            let mut missing = None;
                            for &c in cols {
                                match vals.get(c) {
                                    Some(v) => buf.push(v.clone()),
                                    None => {
                                        missing = Some(c);
                                        break;
                                    }
                                }
                            }
                            match missing {
                                None => Ok(Row::new(buf)),
                                Some(c) => Err(format!("column {c} out of range")),
                            }
                        }
                        None => {
                            let carried = carried.get_or_insert_with(|| Row::new(vals.to_vec()));
                            spec.projection
                                .iter()
                                .map(|e| e.eval(carried).map_err(|err| err.to_string()))
                                .collect()
                        }
                    };
                    let projected = match projected {
                        Ok(p) => p,
                        Err(err) => {
                            out.record_fatal(format!(
                                "stream projection failed in {}: {err}",
                                bp.name
                            ));
                            return;
                        }
                    };
                    self.streams[s].push(projected);
                }
            }
        }
        // Direct mode: the single stream's rows ARE the group slice — view
        // it in place instead of copying every value row.
        let stream_views: Vec<&[Row]> = if self.tagged {
            self.streams.iter().map(Vec::as_slice).collect()
        } else {
            // Direct mode: every value of the group feeds the single stream.
            out.record_dispatches(0, values.len() as u64);
            let mut views: Vec<&[Row]> = vec![&[]; bp.streams.len()];
            views[0] = values;
            views
        };

        // Direct-mode short-circuit (single stream): empty groups never
        // reach the reducer, so only the tagged path above can skip keys;
        // this residual check keeps semantics for hand-built blueprints.
        for &s in &bp.short_circuit_streams {
            if stream_views[s].is_empty() {
                return;
            }
        }

        // ---- evaluate the per-key operator DAG ----------------------------
        let mut op_outputs: Vec<OpRows> = Vec::with_capacity(bp.ops.len());
        for op in &bp.ops {
            let mut work = 0u64;
            let rows = match &op.kind {
                OpKind::Pass => {
                    let input = Self::source_rows(&stream_views, &op_outputs, op.inputs[0]);
                    work += input.len() as u64;
                    if op.transforms.is_empty() {
                        // Untransformed pass-through: alias the input rather
                        // than copying every row of the group.
                        out.add_work(work);
                        op_outputs.push(OpRows::Alias(op.inputs[0]));
                        continue;
                    }
                    input.to_vec()
                }
                OpKind::Agg {
                    group_cols,
                    aggs,
                    having,
                    merge_partials,
                } => {
                    let input = Self::source_rows(&stream_views, &op_outputs, op.inputs[0]);
                    match eval_agg(
                        input,
                        group_cols,
                        aggs,
                        having.as_ref(),
                        *merge_partials,
                        &mut work,
                    ) {
                        Ok(rows) => rows,
                        Err(e) => {
                            out.add_work(work);
                            out.record_fatal(format!("{e} (job {})", bp.name));
                            return;
                        }
                    }
                }
                OpKind::Join {
                    kind,
                    residual,
                    left_width,
                    right_width,
                } => {
                    let left = Self::source_rows(&stream_views, &op_outputs, op.inputs[0]);
                    let right = Self::source_rows(&stream_views, &op_outputs, op.inputs[1]);
                    match eval_join(
                        left,
                        right,
                        *kind,
                        residual.as_ref(),
                        *left_width,
                        *right_width,
                        &mut work,
                    ) {
                        Ok(rows) => rows,
                        Err(e) => {
                            out.add_work(work);
                            out.record_fatal(format!("{e} (job {})", bp.name));
                            return;
                        }
                    }
                }
            };
            let rows = match apply_chain(&op.transforms, rows, &mut work) {
                Ok(rows) => rows,
                Err(e) => {
                    out.add_work(work);
                    out.record_fatal(format!("transform failed in {}: {e}", bp.name));
                    return;
                }
            };
            out.add_work(work);
            op_outputs.push(OpRows::Owned(rows));
        }

        // ---- emit only the final source(s) (§VI-B) -------------------------
        // Typed rows, not pre-rendered lines: the engine renders text or
        // packs columnar frames depending on the job's data format. An
        // emit source that resolves to an op's owned output is *moved*
        // out, not cloned — for intermediate jobs this is the entire next
        // job's input; only stream-backed emits (borrowed from the value
        // slice) still copy.
        // Resolve alias chains up front: `Ok(op)` for an owned op output,
        // `Err(stream)` for a stream-backed source.
        let resolve = |op_outputs: &[OpRows], mut src: RSource| -> Result<usize, usize> {
            loop {
                match src {
                    RSource::Stream(s) => return Err(s),
                    RSource::Op(o) => match &op_outputs[o] {
                        OpRows::Owned(_) => return Ok(o),
                        OpRows::Alias(a) => src = *a,
                    },
                }
            }
        };
        match &bp.emit {
            EmitSpec::Single(src) => match resolve(&op_outputs, *src) {
                Ok(o) => {
                    let OpRows::Owned(rows) = &mut op_outputs[o] else {
                        unreachable!("resolve returns owned ops")
                    };
                    for row in std::mem::take(rows) {
                        out.emit_row(row);
                    }
                }
                Err(s) => {
                    for row in stream_views[s] {
                        out.emit_row(row.clone());
                    }
                }
            },
            EmitSpec::Tagged(srcs) => {
                let resolved: Vec<Result<usize, usize>> =
                    srcs.iter().map(|&s| resolve(&op_outputs, s)).collect();
                for (tag, res) in resolved.iter().enumerate() {
                    match *res {
                        // Move only the last emit backed by this op — an
                        // earlier take would empty a repeated source.
                        Ok(o) if !resolved[tag + 1..].contains(&Ok(o)) => {
                            let OpRows::Owned(rows) = &mut op_outputs[o] else {
                                unreachable!("resolve returns owned ops")
                            };
                            for row in std::mem::take(rows) {
                                out.emit_tagged_row(tag as i64, row);
                            }
                        }
                        Ok(o) => {
                            let OpRows::Owned(rows) = &op_outputs[o] else {
                                unreachable!("resolve returns owned ops")
                            };
                            for row in rows {
                                out.emit_tagged_row(tag as i64, row.clone());
                            }
                        }
                        Err(s) => {
                            for row in stream_views[s] {
                                out.emit_tagged_row(tag as i64, row.clone());
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Grouped aggregation within one key group.
fn eval_agg(
    input: &[Row],
    group_cols: &[usize],
    aggs: &[(ysmart_rel::AggFunc, Option<Expr>)],
    having: Option<&Expr>,
    merge_partials: bool,
    work: &mut u64,
) -> Result<Vec<Row>, String> {
    let update = |states: &mut [AggState], row: &Row| -> Result<(), String> {
        if merge_partials {
            // Partial fields follow the group columns in combiner layout.
            let mut offset = group_cols.len();
            for (state, (func, _)) in states.iter_mut().zip(aggs) {
                let width = crate::blueprint::PartialAgg::partial_width(*func);
                let fields = &row.values()[offset..offset + width];
                let partial = decode_partial(*func, fields);
                state
                    .merge(&partial)
                    .map_err(|e| format!("partial merge failed: {e}"))?;
                offset += width;
            }
        } else {
            update_states(states, aggs, row).map_err(|e| format!("aggregation failed: {e}"))?;
        }
        Ok(())
    };
    let finished: Vec<(Vec<Value>, Vec<AggState>)> = if group_cols.is_empty() && !input.is_empty() {
        // Single group (the reduce key is the whole GROUP BY): no per-row
        // group vector, no map. Empty input still yields no groups, as the
        // map-based path does.
        let mut states: Vec<AggState> = aggs.iter().map(|(f, _)| f.new_state()).collect();
        for row in input {
            *work += 1;
            update(&mut states, row)?;
        }
        vec![(Vec::new(), states)]
    } else {
        let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
        for row in input {
            *work += 1;
            let group: Vec<Value> = group_cols
                .iter()
                .map(|&c| row.get(c).cloned().unwrap_or(Value::Null))
                .collect();
            let states = groups
                .entry(group)
                .or_insert_with(|| aggs.iter().map(|(f, _)| f.new_state()).collect());
            update(states, row)?;
        }
        groups.into_iter().collect()
    };
    let mut out = Vec::with_capacity(finished.len());
    for (group, states) in finished {
        let mut vals = group;
        for s in &states {
            vals.push(s.finish());
        }
        let row = Row::new(vals);
        if let Some(h) = having {
            match h.eval_predicate(&row) {
                Ok(true) => out.push(row),
                Ok(false) => {}
                Err(e) => return Err(format!("HAVING failed: {e}")),
            }
        } else {
            out.push(row);
        }
    }
    Ok(out)
}

/// Equi-join within one key group: the partition key is the full equi-key,
/// so every left row pairs with every right row; the residual predicate and
/// outer-join padding do the rest.
fn eval_join(
    left: &[Row],
    right: &[Row],
    kind: JoinKind,
    residual: Option<&Expr>,
    left_width: usize,
    right_width: usize,
    work: &mut u64,
) -> Result<Vec<Row>, String> {
    let mut out = Vec::new();
    let mut right_matched = vec![false; right.len()];
    for l in left {
        let mut matched = false;
        for (ri, r) in right.iter().enumerate() {
            *work += 1;
            let joined = l.concat(r);
            let pass = match residual {
                None => true,
                Some(p) => p
                    .eval_predicate(&joined)
                    .map_err(|e| format!("join residual failed: {e}"))?,
            };
            if pass {
                matched = true;
                right_matched[ri] = true;
                out.push(joined);
            }
        }
        if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
            out.push(l.concat(&Row::nulls(right_width)));
        }
    }
    if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
        for (ri, r) in right.iter().enumerate() {
            if !right_matched[ri] {
                out.push(Row::nulls(left_width).concat(r));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::{EmitSpec, InputSpec, JobBlueprint, MapBranch, OpKind, ROp, StreamSpec};
    use crate::rowop::RowOp;
    use ysmart_rel::{row, AggFunc, BinOp, DataType, Schema};

    fn bp_with_ops(nstreams: usize, ops: Vec<ROp>, emit: RSource) -> Arc<JobBlueprint> {
        bp_with_emit(nstreams, ops, EmitSpec::Single(emit))
    }

    fn bp_with_emit(nstreams: usize, ops: Vec<ROp>, emit: EmitSpec) -> Arc<JobBlueprint> {
        // Schema/inputs are irrelevant for direct reducer tests; they are
        // only used by the mapper.
        Arc::new(JobBlueprint {
            name: "t".into(),
            inputs: vec![InputSpec {
                path: "data/x".into(),
                schema: Schema::of("x", &[("a", DataType::Int)]),
                key_exprs: vec![Expr::col(0)],
                value_cols: vec![0],
                branches: (0..nstreams)
                    .map(|s| MapBranch {
                        stream: s,
                        predicate: None,
                    })
                    .collect(),
                tag_filter: None,
            }],
            streams: (0..nstreams)
                .map(|_| StreamSpec {
                    projection: vec![Expr::col(0), Expr::col(1)],
                })
                .collect(),
            ops,
            emit,
            output: "out".into(),
            reduce_tasks: Some(1),
            combiner: None,
            map_only: false,
            short_circuit_streams: vec![],
            pad_bytes: 0,
            key_cardinality: None,
        })
    }

    fn run_direct(bp: &Arc<JobBlueprint>, values: Vec<Row>) -> Vec<String> {
        let mut r = CommonReducer::new(Arc::clone(bp));
        let mut out = ReduceOutput::default();
        r.reduce(&row![1i64], &values, &mut out);
        out.into_lines()
    }

    #[test]
    fn pass_op_emits_rows() {
        let bp = bp_with_ops(
            1,
            vec![ROp {
                kind: OpKind::Pass,
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }],
            RSource::Op(0),
        );
        let lines = run_direct(&bp, vec![row![1i64, 2i64], row![1i64, 3i64]]);
        assert_eq!(lines, vec!["1|2", "1|3"]);
    }

    #[test]
    fn agg_groups_within_key() {
        // Group by col 1 (beyond the partition key), count rows.
        let bp = bp_with_ops(
            1,
            vec![ROp {
                kind: OpKind::Agg {
                    group_cols: vec![1],
                    aggs: vec![(AggFunc::Count, None)],
                    having: None,
                    merge_partials: false,
                },
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }],
            RSource::Op(0),
        );
        let lines = run_direct(
            &bp,
            vec![row![1i64, 7i64], row![1i64, 7i64], row![1i64, 9i64]],
        );
        assert_eq!(lines, vec!["7|2", "9|1"]);
    }

    #[test]
    fn having_filters_groups() {
        let bp = bp_with_ops(
            1,
            vec![ROp {
                kind: OpKind::Agg {
                    group_cols: vec![1],
                    aggs: vec![(AggFunc::Count, None)],
                    having: Some(Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(1i64))),
                    merge_partials: false,
                },
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }],
            RSource::Op(0),
        );
        let lines = run_direct(
            &bp,
            vec![row![1i64, 7i64], row![1i64, 7i64], row![1i64, 9i64]],
        );
        assert_eq!(lines, vec!["7|2"]);
    }

    fn join_bp(kind: JoinKind, residual: Option<Expr>) -> Arc<JobBlueprint> {
        bp_with_ops(
            2,
            vec![ROp {
                kind: OpKind::Join {
                    kind,
                    residual,
                    left_width: 2,
                    right_width: 2,
                },
                inputs: vec![RSource::Stream(0), RSource::Stream(1)],
                transforms: vec![],
            }],
            RSource::Op(0),
        )
    }

    /// Tagged values: [tag, a, b] — tag bit 0 = hide from stream 0 (left),
    /// bit 1 = hide from stream 1 (right).
    fn tagged(tag: i64, a: i64, b: i64) -> Row {
        row![tag, a, b]
    }

    #[test]
    fn inner_join_within_key() {
        let bp = join_bp(JoinKind::Inner, None);
        let lines = run_direct(
            &bp,
            vec![
                tagged(0b10, 1, 10), // left only
                tagged(0b01, 1, 20), // right only
                tagged(0b01, 1, 30), // right only
            ],
        );
        assert_eq!(lines, vec!["1|10|1|20", "1|10|1|30"]);
    }

    #[test]
    fn left_outer_join_pads_nulls() {
        let bp = join_bp(JoinKind::LeftOuter, None);
        let lines = run_direct(&bp, vec![tagged(0b10, 1, 10)]);
        assert_eq!(lines, vec!["1|10||"]);
    }

    #[test]
    fn full_outer_join_pads_both_sides() {
        let bp = join_bp(
            JoinKind::FullOuter,
            Some(Expr::binary(BinOp::Lt, Expr::col(1), Expr::col(3))),
        );
        let lines = run_direct(
            &bp,
            vec![tagged(0b10, 1, 50), tagged(0b01, 1, 10)], // residual 50 < 10 fails
        );
        // No pair survives the residual, so each side is null-padded once.
        assert_eq!(lines.len(), 2);
        assert!(lines.contains(&"1|50||".to_string()), "{lines:?}");
        assert!(lines.contains(&"||1|10".to_string()), "{lines:?}");
    }

    #[test]
    fn shared_scan_both_sides() {
        // A self-join where one record is visible to both streams.
        let bp = join_bp(JoinKind::Inner, None);
        let lines = run_direct(&bp, vec![tagged(0b00, 1, 5)]);
        assert_eq!(lines, vec!["1|5|1|5"]);
    }

    #[test]
    fn post_job_computation_chains_ops() {
        // Op 0: inner join; Op 1: aggregate the join output (count per b).
        let bp = bp_with_ops(
            2,
            vec![
                ROp {
                    kind: OpKind::Join {
                        kind: JoinKind::Inner,
                        residual: None,
                        left_width: 2,
                        right_width: 2,
                    },
                    inputs: vec![RSource::Stream(0), RSource::Stream(1)],
                    transforms: vec![],
                },
                ROp {
                    kind: OpKind::Agg {
                        group_cols: vec![0],
                        aggs: vec![(AggFunc::Count, None)],
                        having: None,
                        merge_partials: false,
                    },
                    inputs: vec![RSource::Op(0)],
                    transforms: vec![],
                },
            ],
            RSource::Op(1),
        );
        let lines = run_direct(
            &bp,
            vec![
                tagged(0b10, 1, 10),
                tagged(0b01, 1, 20),
                tagged(0b01, 1, 30),
            ],
        );
        assert_eq!(lines, vec!["1|2"]);
    }

    #[test]
    fn transforms_apply_to_op_output() {
        let bp = bp_with_ops(
            1,
            vec![ROp {
                kind: OpKind::Pass,
                inputs: vec![RSource::Stream(0)],
                transforms: vec![
                    RowOp::Filter(Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(5i64))),
                    RowOp::Project(vec![Expr::col(1)]),
                ],
            }],
            RSource::Op(0),
        );
        let lines = run_direct(&bp, vec![row![1i64, 3i64], row![1i64, 9i64]]);
        assert_eq!(lines, vec!["9"]);
    }

    #[test]
    fn short_circuit_skips_key() {
        let mut bp = (*join_bp(JoinKind::Inner, None)).clone();
        bp.short_circuit_streams = vec![0];
        let bp = Arc::new(bp);
        // Only right-side rows: stream 0 empty → skip everything.
        let mut r = CommonReducer::new(Arc::clone(&bp));
        let mut out = ReduceOutput::default();
        r.reduce(&row![1i64], &[tagged(0b01, 1, 20)], &mut out);
        assert!(out.lines().is_empty());
        // The tag-only pre-pass skips the key before any dispatch work.
        assert_eq!(out.work(), 0);
    }

    #[test]
    fn merge_partials_mode() {
        // Partial rows: [group, count_partial] — two partials for group 7.
        let bp = bp_with_ops(
            1,
            vec![ROp {
                kind: OpKind::Agg {
                    group_cols: vec![0],
                    aggs: vec![(AggFunc::Count, None)],
                    having: None,
                    merge_partials: true,
                },
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }],
            RSource::Op(0),
        );
        let lines = run_direct(&bp, vec![row![7i64, 2i64], row![7i64, 3i64]]);
        assert_eq!(lines, vec!["7|5"]);
    }

    #[test]
    fn work_scales_with_ops_dispatched() {
        // Same values through 1 op vs 2 ops: more merged ops, more work —
        // the CMF overhead the paper measures in Fig. 9 (YSmart's reduce
        // phase is longer than hand-coded but much shorter than extra jobs).
        let one = bp_with_ops(
            1,
            vec![ROp {
                kind: OpKind::Pass,
                inputs: vec![RSource::Stream(0)],
                transforms: vec![],
            }],
            RSource::Op(0),
        );
        let two = bp_with_ops(
            1,
            vec![
                ROp {
                    kind: OpKind::Pass,
                    inputs: vec![RSource::Stream(0)],
                    transforms: vec![],
                },
                ROp {
                    kind: OpKind::Pass,
                    inputs: vec![RSource::Op(0)],
                    transforms: vec![],
                },
            ],
            RSource::Op(1),
        );
        let values = vec![row![1i64, 2i64]; 10];
        let mut r1 = CommonReducer::new(one);
        let mut o1 = ReduceOutput::default();
        r1.reduce(&row![1i64], &values, &mut o1);
        let mut r2 = CommonReducer::new(two);
        let mut o2 = ReduceOutput::default();
        r2.reduce(&row![1i64], &values, &mut o2);
        assert!(o2.work() > o1.work());
    }
}
