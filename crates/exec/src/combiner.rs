//! Map-side partial aggregation (the AGGREGATION job's combiner).
//!
//! The combiner groups a map task's output for one key by the extra
//! grouping columns and replaces the raw rows with *partial rows*:
//! `[group values…, partial fields…]`. The reduce-side aggregation op (with
//! `merge_partials` set) merges partials instead of accumulating raw
//! values. This is the optimisation the paper credits for Hive matching
//! hand-coded MapReduce on the simple Q-AGG query (footnote 2).

use std::collections::BTreeMap;
use std::sync::Arc;

use ysmart_mapred::Combiner;
use ysmart_rel::{AggFunc, AggState, Expr, Row, Value};

use crate::blueprint::JobBlueprint;

/// Encodes a finished accumulator as partial-row fields.
#[must_use]
pub fn encode_partial(state: &AggState) -> Vec<Value> {
    match state {
        AggState::Count(c) => vec![Value::Int(*c)],
        AggState::Sum(v) => vec![v.clone().unwrap_or(Value::Null)],
        AggState::Avg { sum, count } => vec![Value::Float(*sum), Value::Int(*count)],
        AggState::Min(v) | AggState::Max(v) => vec![v.clone().unwrap_or(Value::Null)],
        AggState::CountDistinct(_) => unreachable!("count(distinct) is not combinable"),
    }
}

/// Decodes partial-row fields back into an accumulator for merging.
#[must_use]
pub fn decode_partial(func: AggFunc, fields: &[Value]) -> AggState {
    match func {
        AggFunc::Count => AggState::Count(fields[0].as_int().unwrap_or(0)),
        AggFunc::Sum => AggState::Sum(if fields[0].is_null() {
            None
        } else {
            Some(fields[0].clone())
        }),
        AggFunc::Avg => AggState::Avg {
            sum: fields[0].as_float().unwrap_or(0.0),
            count: fields[1].as_int().unwrap_or(0),
        },
        AggFunc::Min => AggState::Min(if fields[0].is_null() {
            None
        } else {
            Some(fields[0].clone())
        }),
        AggFunc::Max => AggState::Max(if fields[0].is_null() {
            None
        } else {
            Some(fields[0].clone())
        }),
        AggFunc::CountDistinct => unreachable!("count(distinct) is not combinable"),
    }
}

/// Feeds one raw row into a list of accumulators (shared by the combiner
/// and the reduce-side raw aggregation). `count(*)`'s missing argument
/// counts every row.
pub fn update_states(
    states: &mut [AggState],
    aggs: &[(AggFunc, Option<Expr>)],
    row: &Row,
) -> Result<(), ysmart_rel::RelError> {
    for (state, (_, arg)) in states.iter_mut().zip(aggs) {
        let v = match arg {
            Some(e) => e.eval(row)?,
            None => Value::Int(1), // count(*) counts rows
        };
        state.update(&v)?;
    }
    Ok(())
}

/// The combiner instance built per map task.
#[derive(Debug)]
pub struct PartialAggCombiner {
    blueprint: Arc<JobBlueprint>,
    /// First evaluation error hit while combining — surfaced through
    /// [`Combiner::take_error`] so the engine fails the job with a typed
    /// error instead of this task panicking.
    error: Option<String>,
}

impl PartialAggCombiner {
    /// Creates the combiner for a blueprint (which must carry a
    /// [`crate::blueprint::PartialAgg`]).
    #[must_use]
    pub fn new(blueprint: Arc<JobBlueprint>) -> Self {
        PartialAggCombiner {
            blueprint,
            error: None,
        }
    }
}

impl Combiner for PartialAggCombiner {
    fn combine(&mut self, _key: &Row, values: &[Row]) -> Vec<Row> {
        let bp = Arc::clone(&self.blueprint);
        let Some(spec) = bp.combiner.as_ref() else {
            // A blueprint without a PartialAgg never builds this combiner;
            // if one does, report it and pass the rows through unchanged —
            // correctness never depends on combining.
            self.error
                .get_or_insert_with(|| format!("combiner blueprint missing in {}", bp.name));
            return values.to_vec();
        };
        let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
        for row in values {
            let group: Vec<Value> = spec
                .group_cols
                .iter()
                .map(|&c| row.get(c).cloned().unwrap_or(Value::Null))
                .collect();
            let states = groups
                .entry(group)
                .or_insert_with(|| spec.aggs.iter().map(|(f, _)| f.new_state()).collect());
            if let Err(e) = update_states(states, &spec.aggs, row) {
                self.error
                    .get_or_insert_with(|| format!("combiner aggregation failed: {e}"));
                return values.to_vec();
            }
        }
        groups
            .into_iter()
            .map(|(group, states)| {
                let mut vals = group;
                for s in &states {
                    vals.extend(encode_partial(s));
                }
                Row::new(vals)
            })
            .collect()
    }

    fn take_error(&mut self) -> Option<String> {
        self.error.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::row;

    #[test]
    fn partial_round_trip_equals_direct() {
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let xs: Vec<Value> = (1..=6).map(Value::Int).collect();
            // direct
            let mut direct = func.new_state();
            for v in &xs {
                direct.update(v).unwrap();
            }
            // two partials merged through the wire encoding
            let mut a = func.new_state();
            let mut b = func.new_state();
            for v in &xs[..3] {
                a.update(v).unwrap();
            }
            for v in &xs[3..] {
                b.update(v).unwrap();
            }
            let mut merged = decode_partial(func, &encode_partial(&a));
            merged
                .merge(&decode_partial(func, &encode_partial(&b)))
                .unwrap();
            assert_eq!(merged.finish(), direct.finish(), "{func}");
        }
    }

    #[test]
    fn sum_partial_of_empty_is_null() {
        let s = AggFunc::Sum.new_state();
        let p = encode_partial(&s);
        assert!(p[0].is_null());
        assert!(decode_partial(AggFunc::Sum, &p).finish().is_null());
    }

    #[test]
    fn count_star_counts_rows() {
        let aggs = vec![(AggFunc::Count, None)];
        let mut states = vec![AggFunc::Count.new_state()];
        update_states(&mut states, &aggs, &row![1i64]).unwrap();
        update_states(&mut states, &aggs, &row![2i64]).unwrap();
        assert_eq!(states[0].finish(), Value::Int(2));
    }
}
