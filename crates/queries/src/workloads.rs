//! The evaluation workloads (§VII-A).

use ysmart_datagen::{clicks_catalog, tpch_catalog, ClicksGen, ClicksSpec, TpchGen, TpchSpec};
use ysmart_plan::Catalog;
use ysmart_rel::Row;

/// A named query bundled with its catalog and data.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name ("q17", "q-csa", …).
    pub name: &'static str,
    /// The SQL text.
    pub sql: String,
    /// Catalog of the base tables.
    pub catalog: Catalog,
    /// Generated base-table rows.
    pub tables: Vec<(&'static str, Vec<Row>)>,
    /// Whether the result is globally ordered (compare as a sequence
    /// rather than a multiset).
    pub ordered: bool,
}

impl Workload {
    /// Loads the workload's tables into a [`ysmart_core::YSmart`] engine.
    ///
    /// # Errors
    ///
    /// Row/schema mismatches (a generator bug).
    pub fn load_into(
        &self,
        engine: &mut ysmart_core::YSmart,
    ) -> Result<(), ysmart_core::CoreError> {
        for (name, rows) in &self.tables {
            engine.load_table(name, rows)?;
        }
        Ok(())
    }
}

/// Q-AGG: the simple aggregation of Fig. 2(b) — clicks per category.
#[must_use]
pub fn q_agg_sql() -> String {
    "SELECT cid, count(*) AS clicks FROM clicks GROUP BY cid".to_string()
}

/// Q-CSA (Fig. 1): average pages visited between a category-`x` page and a
/// category-`y` page, standard-SQL form.
#[must_use]
pub fn q_csa_sql(x: i64, y: i64) -> String {
    format!(
        "SELECT avg(pageview_count) FROM
        (SELECT c.uid, mp.ts1, (count(*) - 2) AS pageview_count
         FROM clicks AS c,
              (SELECT uid, max(ts1) AS ts1, ts2
               FROM (SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
                     FROM clicks AS c1, clicks AS c2
                     WHERE c1.uid = c2.uid AND c1.ts < c2.ts
                       AND c1.cid = {x} AND c2.cid = {y}
                     GROUP BY c1.uid, c1.ts) AS cp
               GROUP BY uid, ts2) AS mp
         WHERE c.uid = mp.uid AND c.ts >= mp.ts1 AND c.ts <= mp.ts2
         GROUP BY c.uid, mp.ts1) AS pageview_counts"
    )
}

/// Q17 (Fig. 3): the paper's flattened variation of TPC-H Q17.
#[must_use]
pub fn q17_sql() -> String {
    "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
     FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
           FROM lineitem GROUP BY l_partkey) AS inner_t,
          (SELECT l_partkey, l_quantity, l_extendedprice
           FROM lineitem, part
           WHERE p_partkey = l_partkey) AS outer_t
     WHERE outer_t.l_partkey = inner_t.l_partkey
       AND outer_t.l_quantity < inner_t.t1"
        .to_string()
}

/// Q18 (Fig. 8(a) shape): large-quantity orders, flattened with
/// first-aggregation-then-join. `threshold` is the quantity cut-off (the
/// original uses 300 at SF 1; smaller data wants a smaller cut).
#[must_use]
pub fn q18_sql(threshold: i64) -> String {
    format!(
        "SELECT o_orderkey, o_totalprice, sum(l_quantity) AS qty
         FROM (SELECT l_orderkey, l_quantity, o_totalprice, o_orderkey
               FROM lineitem, orders
               WHERE o_orderkey = l_orderkey) AS lo,
              (SELECT l_orderkey AS gk, sum(l_quantity) AS total_qty
               FROM lineitem GROUP BY l_orderkey) AS t
         WHERE lo.o_orderkey = t.gk AND t.total_qty > {threshold}
         GROUP BY o_orderkey, o_totalprice
         ORDER BY o_totalprice DESC, o_orderkey LIMIT 100"
    )
}

/// The Q21 "Left Outer Join 1" subtree, exactly the appendix SQL (with the
/// listing's missing commas restored) — suppliers whose lineitems kept an
/// order waiting.
#[must_use]
pub fn q21_subtree_sql() -> String {
    "SELECT sq12.l_suppkey FROM
        (SELECT sq1.l_orderkey, sq1.l_suppkey FROM
            (SELECT l_suppkey, l_orderkey FROM lineitem, orders
             WHERE o_orderkey = l_orderkey
               AND l_receiptdate > l_commitdate
               AND o_orderstatus = 'F') AS sq1,
            (SELECT l_orderkey, count(distinct l_suppkey) AS cs,
                    max(l_suppkey) AS ms
             FROM lineitem GROUP BY l_orderkey) AS sq2
         WHERE sq1.l_orderkey = sq2.l_orderkey
           AND ((sq2.cs > 1) OR ((sq2.cs = 1) AND (sq1.l_suppkey <> sq2.ms)))
        ) AS sq12
        LEFT OUTER JOIN
        (SELECT l_orderkey, count(distinct l_suppkey) AS cs,
                max(l_suppkey) AS ms
         FROM lineitem WHERE l_receiptdate > l_commitdate
         GROUP BY l_orderkey) AS sq3
        ON sq12.l_orderkey = sq3.l_orderkey
        WHERE (sq3.cs IS NULL) OR ((sq3.cs = 1) AND (sq12.l_suppkey = sq3.ms))"
        .to_string()
}

/// Full flattened Q21: the subtree joined with supplier and nation,
/// counting waiting lineitems per supplier of one nation.
#[must_use]
pub fn q21_sql(nation: &str) -> String {
    format!(
        "SELECT s_name, count(*) AS numwait
         FROM supplier, nation, ({}) AS waiting
         WHERE s_suppkey = waiting.l_suppkey
           AND s_nationkey = n_nationkey
           AND n_name = '{nation}'
         GROUP BY s_name
         ORDER BY numwait DESC, s_name LIMIT 100",
        q21_subtree_sql()
    )
}

/// A TPC-H Q3-shaped query (shipping-priority): a three-way join across
/// *different* keys plus aggregation and sort. Unlike Q17/Q18/Q21 its
/// joins do not share one partition key, so it exercises the translator's
/// non-mergeable paths (only the aggregation above the last join has
/// job-flow correlation).
#[must_use]
pub fn q3_sql(nation: &str) -> String {
    format!(
        "SELECT o_orderkey, sum(l_extendedprice) AS revenue, o_orderdate
         FROM customer, orders, lineitem, supplier, nation
         WHERE c_custkey = o_custkey
           AND l_orderkey = o_orderkey
           AND s_suppkey = l_suppkey
           AND s_nationkey = n_nationkey
           AND n_name = '{nation}'
         GROUP BY o_orderkey, o_orderdate
         ORDER BY revenue DESC, o_orderkey LIMIT 10"
    )
}

/// The three TPC-H workloads (plus the Q21 subtree and the Q3 shape), on
/// freshly generated data.
#[must_use]
pub fn tpch_workloads(spec: &TpchSpec) -> Vec<Workload> {
    let db = TpchGen::generate(spec);
    let catalog = tpch_catalog();
    let tables: Vec<(&'static str, Vec<Row>)> = db
        .tables()
        .into_iter()
        .map(|(n, r)| (n, r.to_vec()))
        .collect();
    let mk = |name: &'static str, sql: String, ordered: bool| Workload {
        name,
        sql,
        catalog: catalog.clone(),
        tables: tables.clone(),
        ordered,
    };
    vec![
        mk("q17", q17_sql(), false),
        mk("q18", q18_sql(250), true),
        mk("q21-subtree", q21_subtree_sql(), false),
        mk("q21", q21_sql("SAUDI ARABIA"), true),
        mk("q3", q3_sql("CHINA"), true),
    ]
}

/// The click-stream workloads on freshly generated data.
#[must_use]
pub fn clicks_workloads(spec: &ClicksSpec) -> Vec<Workload> {
    let g = ClicksGen::generate(spec);
    let catalog = clicks_catalog();
    let tables = vec![("clicks", g.clicks)];
    vec![
        Workload {
            name: "q-agg",
            sql: q_agg_sql(),
            catalog: catalog.clone(),
            tables: tables.clone(),
            ordered: false,
        },
        Workload {
            name: "q-csa",
            sql: q_csa_sql(spec.category_x, spec.category_y),
            catalog,
            tables,
            ordered: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_plan::build_plan;
    use ysmart_sql::parse;

    #[test]
    fn all_workload_queries_parse_and_plan() {
        for w in tpch_workloads(&TpchSpec {
            scale: 0.05,
            seed: 1,
        }) {
            let q = parse(&w.sql).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            build_plan(&w.catalog, &q).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
        for w in clicks_workloads(&ClicksSpec {
            users: 5,
            clicks_per_user: 10,
            ..ClicksSpec::default()
        }) {
            let q = parse(&w.sql).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            build_plan(&w.catalog, &q).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn q_csa_parameters_substituted() {
        let sql = q_csa_sql(3, 7);
        assert!(sql.contains("c1.cid = 3"));
        assert!(sql.contains("c2.cid = 7"));
    }
}
