//! # ysmart-queries — the paper's workload queries and the oracle
//!
//! * [`workloads`] — the evaluation queries of §VII-A as SQL text bundled
//!   with catalogs and generated data: the TPC-H-derived Q17, Q18 and Q21
//!   (flattened with the first-aggregation-then-join algorithm, as the
//!   paper does), the Q21 "Left Outer Join 1" subtree from the appendix,
//!   and the click-stream queries Q-AGG and Q-CSA (Fig. 1).
//! * [`oracle`] — a single-node in-memory relational executor used as
//!   1. the correctness oracle every MapReduce execution is checked
//!      against, and
//!   2. the "ideal parallel PostgreSQL" baseline of §VII-D (single-node
//!      cost divided by the core count, on quarter-size data).

pub mod oracle;
pub mod workloads;

pub use oracle::{oracle_execute, rows_approx_equal, DbmsProfile, OracleOutcome};
pub use workloads::{clicks_workloads, tpch_workloads, Workload};
