//! The relational oracle: a straightforward single-node executor.
//!
//! Evaluates a logical [`Plan`] tuple-at-a-time in memory, with textbook
//! hash joins and hash aggregation. Every MapReduce execution in the test
//! suite and the figure harnesses is checked against this executor, so a
//! translation bug can never masquerade as a performance result.
//!
//! The oracle doubles as the paper's DBMS baseline (§VII-D): it tracks
//! bytes scanned and row operations, and [`DbmsProfile::seconds`] converts
//! them into a simulated single-node time that the benches divide by the
//! core count to build the "ideal parallel PostgreSQL".
//!
//! One deliberate deviation from textbook SQL: a *global* aggregation over
//! zero input rows yields zero rows (not one all-NULL row), matching what
//! a MapReduce job with no reduce groups produces — the behaviour of the
//! systems being modelled.

use std::collections::BTreeMap;

use ysmart_plan::{JoinKind, NodeId, Operator, Plan};
use ysmart_rel::sort::sort_rows;
use ysmart_rel::{AggState, Expr, RelError, Row, Value};

/// What the oracle measured while executing.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// The result rows.
    pub rows: Vec<Row>,
    /// Total row operations performed (scan, probe, aggregate, sort…).
    pub row_ops: u64,
    /// Bytes of base-table data scanned.
    pub bytes_scanned: u64,
}

/// Cost profile of the simulated single-node DBMS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbmsProfile {
    /// Sequential scan bandwidth, MB/s.
    pub scan_mbps: f64,
    /// Row operations per second.
    pub rows_per_sec: f64,
    /// Parallelism divisor for the "ideal parallel DBMS" (the paper
    /// assumes a perfect 4× speedup on the quad-core node).
    pub parallelism: f64,
}

impl Default for DbmsProfile {
    fn default() -> Self {
        DbmsProfile {
            scan_mbps: 200.0,
            rows_per_sec: 4.0e6,
            parallelism: 4.0,
        }
    }
}

impl DbmsProfile {
    /// Simulated seconds for an outcome under this profile.
    #[must_use]
    pub fn seconds(&self, outcome: &OracleOutcome) -> f64 {
        (outcome.bytes_scanned as f64 / (self.scan_mbps * 1e6)
            + outcome.row_ops as f64 / self.rows_per_sec)
            / self.parallelism
    }
}

/// Compares two result sets with a relative tolerance on floats —
/// MapReduce and the oracle sum in different orders, so exact float
/// equality is too strict. `ordered` compares as sequences, otherwise as
/// multisets (sorted).
#[must_use]
pub fn rows_approx_equal(a: &[Row], b: &[Row], ordered: bool) -> bool {
    fn value_eq(x: &Value, y: &Value) -> bool {
        match (x.as_float(), y.as_float()) {
            (Some(fx), Some(fy)) => {
                let scale = fx.abs().max(fy.abs()).max(1.0);
                (fx - fy).abs() <= 1e-9 * scale
            }
            _ => x == y,
        }
    }
    fn row_eq(x: &Row, y: &Row) -> bool {
        x.len() == y.len()
            && x.values()
                .iter()
                .zip(y.values())
                .all(|(a, b)| value_eq(a, b))
    }
    if a.len() != b.len() {
        return false;
    }
    if ordered {
        return a.iter().zip(b).all(|(x, y)| row_eq(x, y));
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort();
    sb.sort();
    sa.iter().zip(&sb).all(|(x, y)| row_eq(x, y))
}

/// Executes a plan against base tables (`name → rows`).
///
/// # Errors
///
/// Expression-evaluation failures ([`RelError`]).
pub fn oracle_execute(
    plan: &Plan,
    tables: &BTreeMap<String, Vec<Row>>,
) -> Result<OracleOutcome, RelError> {
    let mut ctx = Ctx {
        plan,
        tables,
        row_ops: 0,
        bytes_scanned: 0,
    };
    let rows = ctx.eval(plan.root())?;
    Ok(OracleOutcome {
        rows,
        row_ops: ctx.row_ops,
        bytes_scanned: ctx.bytes_scanned,
    })
}

struct Ctx<'a> {
    plan: &'a Plan,
    tables: &'a BTreeMap<String, Vec<Row>>,
    row_ops: u64,
    bytes_scanned: u64,
}

impl Ctx<'_> {
    fn eval(&mut self, id: NodeId) -> Result<Vec<Row>, RelError> {
        let node = self.plan.node(id);
        match &node.op {
            Operator::Scan {
                table, predicate, ..
            } => {
                let rows = self
                    .tables
                    .get(table)
                    .ok_or_else(|| RelError::UnknownColumn(format!("table {table}")))?;
                let mut out = Vec::new();
                for r in rows {
                    self.row_ops += 1;
                    self.bytes_scanned += r.size_bytes() as u64;
                    let keep = match predicate {
                        None => true,
                        Some(p) => p.eval_predicate(r)?,
                    };
                    if keep {
                        out.push(r.clone());
                    }
                }
                Ok(out)
            }
            Operator::Filter { predicate } => {
                let input = self.eval(node.children[0])?;
                let mut out = Vec::with_capacity(input.len());
                for r in input {
                    self.row_ops += 1;
                    if predicate.eval_predicate(&r)? {
                        out.push(r);
                    }
                }
                Ok(out)
            }
            Operator::Project { exprs } => {
                let input = self.eval(node.children[0])?;
                let mut out = Vec::with_capacity(input.len());
                for r in input {
                    self.row_ops += 1;
                    let mut vals = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        vals.push(e.eval(&r)?);
                    }
                    out.push(Row::new(vals));
                }
                Ok(out)
            }
            Operator::Join {
                kind,
                left_keys,
                right_keys,
                residual,
            } => {
                // Widths come from the plan schemas, not the (possibly
                // empty) row collections — outer joins pad with them.
                let left_width = self.plan.node(node.children[0]).schema.len();
                let right_width = self.plan.node(node.children[1]).schema.len();
                let left = self.eval(node.children[0])?;
                let right = self.eval(node.children[1])?;
                self.hash_join(
                    &left,
                    &right,
                    *kind,
                    left_keys,
                    right_keys,
                    residual.as_ref(),
                    left_width,
                    right_width,
                )
            }
            Operator::Aggregate {
                group_by,
                aggs,
                having,
            } => {
                let input = self.eval(node.children[0])?;
                self.aggregate(&input, group_by, aggs, having.as_ref())
            }
            Operator::Distinct => {
                let input = self.eval(node.children[0])?;
                let mut seen = std::collections::BTreeSet::new();
                let mut out = Vec::new();
                for r in input {
                    self.row_ops += 1;
                    if seen.insert(r.clone()) {
                        out.push(r);
                    }
                }
                Ok(out)
            }
            Operator::Sort { keys } => {
                let mut input = self.eval(node.children[0])?;
                self.row_ops += (input.len() as f64 * (input.len().max(2) as f64).log2()) as u64;
                sort_rows(keys, &mut input);
                Ok(input)
            }
            Operator::Limit { n } => {
                let mut input = self.eval(node.children[0])?;
                input.truncate(*n as usize);
                Ok(input)
            }
            Operator::Batch => Err(RelError::UnknownColumn(
                "the oracle evaluates batch members individually".into(),
            )),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &mut self,
        left: &[Row],
        right: &[Row],
        kind: JoinKind,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<&Expr>,
        left_width: usize,
        right_width: usize,
    ) -> Result<Vec<Row>, RelError> {
        let _ = left_width;
        // Build on the right side; SQL NULL keys never match.
        let mut table: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
        for (i, r) in right.iter().enumerate() {
            self.row_ops += 1;
            let key: Vec<Value> = right_keys
                .iter()
                .map(|&k| r.get(k).cloned().unwrap_or(Value::Null))
                .collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(i);
        }
        let mut right_matched = vec![false; right.len()];
        let mut out = Vec::new();
        for l in left {
            self.row_ops += 1;
            let key: Vec<Value> = left_keys
                .iter()
                .map(|&k| l.get(k).cloned().unwrap_or(Value::Null))
                .collect();
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(candidates) = table.get(&key) {
                    for &ri in candidates {
                        self.row_ops += 1;
                        let joined = l.concat(&right[ri]);
                        let pass = match residual {
                            None => true,
                            Some(p) => p.eval_predicate(&joined)?,
                        };
                        if pass {
                            matched = true;
                            right_matched[ri] = true;
                            out.push(joined);
                        }
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
                out.push(l.concat(&Row::nulls(right_width)));
            }
        }
        if matches!(kind, JoinKind::RightOuter | JoinKind::FullOuter) {
            for (ri, r) in right.iter().enumerate() {
                if !right_matched[ri] {
                    out.push(Row::nulls(left_width).concat(r));
                }
            }
        }
        Ok(out)
    }

    fn aggregate(
        &mut self,
        input: &[Row],
        group_by: &[usize],
        aggs: &[ysmart_plan::AggCall],
        having: Option<&Expr>,
    ) -> Result<Vec<Row>, RelError> {
        let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
        for r in input {
            self.row_ops += 1;
            let key: Vec<Value> = group_by
                .iter()
                .map(|&g| r.get(g).cloned().unwrap_or(Value::Null))
                .collect();
            let states = groups
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|a| a.func.new_state()).collect());
            for (state, call) in states.iter_mut().zip(aggs) {
                let v = match &call.arg {
                    Some(e) => e.eval(r)?,
                    None => Value::Int(1), // count(*)
                };
                state.update(&v)?;
            }
        }
        let mut out = Vec::with_capacity(groups.len());
        for (key, states) in groups {
            let mut vals = key;
            for s in &states {
                vals.push(s.finish());
            }
            let row = Row::new(vals);
            let keep = match having {
                None => true,
                Some(h) => h.eval_predicate(&row)?,
            };
            if keep {
                out.push(row);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_plan::{build_plan, Catalog};
    use ysmart_rel::{row, DataType, Schema};
    use ysmart_sql::parse;

    fn setup() -> (Catalog, BTreeMap<String, Vec<Row>>) {
        let mut cat = Catalog::new();
        cat.add_table(
            "t",
            Schema::of("t", &[("k", DataType::Int), ("v", DataType::Int)]),
        );
        cat.add_table(
            "u",
            Schema::of("u", &[("k", DataType::Int), ("w", DataType::Str)]),
        );
        let mut tables = BTreeMap::new();
        tables.insert(
            "t".to_string(),
            vec![row![1i64, 10i64], row![1i64, 20i64], row![2i64, 30i64]],
        );
        tables.insert("u".to_string(), vec![row![1i64, "a"], row![3i64, "b"]]);
        (cat, tables)
    }

    fn run(sql: &str) -> Vec<Row> {
        let (cat, tables) = setup();
        let plan = build_plan(&cat, &parse(sql).unwrap()).unwrap();
        oracle_execute(&plan, &tables).unwrap().rows
    }

    #[test]
    fn scan_filter_project() {
        let rows = run("SELECT v FROM t WHERE k = 1");
        assert_eq!(rows, vec![row![10i64], row![20i64]]);
    }

    #[test]
    fn inner_and_left_join() {
        let rows = run("SELECT v, w FROM t JOIN u ON t.k = u.k");
        assert_eq!(rows.len(), 2);
        let rows = run("SELECT v, w FROM t LEFT OUTER JOIN u ON t.k = u.k");
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|r| r.get(1).unwrap().is_null()));
    }

    #[test]
    fn right_outer_join_pads_left() {
        let rows = run("SELECT v, w FROM t RIGHT OUTER JOIN u ON t.k = u.k");
        // u.k=3 has no t partner.
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().any(|r| r.get(0).unwrap().is_null()));
    }

    #[test]
    fn aggregate_group_and_having() {
        let rows = run("SELECT k, sum(v) FROM t GROUP BY k HAVING sum(v) > 25");
        assert_eq!(rows, vec![row![1i64, 30i64], row![2i64, 30i64]]);
    }

    #[test]
    fn global_agg_empty_input_yields_no_rows() {
        let rows = run("SELECT sum(v) FROM t WHERE k = 99");
        assert!(rows.is_empty(), "matches MapReduce semantics");
    }

    #[test]
    fn order_and_limit() {
        let rows = run("SELECT v FROM t ORDER BY v DESC LIMIT 2");
        assert_eq!(rows, vec![row![30i64], row![20i64]]);
    }

    #[test]
    fn distinct() {
        let rows = run("SELECT DISTINCT k FROM t");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn cost_counters_populate() {
        let (cat, tables) = setup();
        let plan = build_plan(
            &cat,
            &parse("SELECT k, count(*) FROM t GROUP BY k").unwrap(),
        )
        .unwrap();
        let out = oracle_execute(&plan, &tables).unwrap();
        assert!(out.row_ops > 0);
        assert!(out.bytes_scanned > 0);
        let profile = DbmsProfile::default();
        assert!(profile.seconds(&out) > 0.0);
    }
}
