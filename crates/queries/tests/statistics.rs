//! Tests of the statistics-informed refinements (the paper's §IV-A future
//! work): cost-based PK tie-breaking and cardinality-capped reduce tasks.

use ysmart_core::{Strategy, YSmart};
use ysmart_mapred::ClusterConfig;
use ysmart_plan::{analyze_with_stats, build_plan, Catalog};
use ysmart_rel::{row, DataType, Row, Schema};
use ysmart_sql::parse;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        Schema::of(
            "t",
            &[
                ("lo", DataType::Int), // low cardinality
                ("hi", DataType::Int), // high cardinality
                ("v", DataType::Int),
            ],
        ),
    );
    c
}

fn rows(n: i64) -> Vec<Row> {
    (0..n).map(|i| row![i % 3, i, i * 10]).collect()
}

/// With statistics, an aggregation whose group-by columns enable no
/// correlations picks the highest-cardinality candidate (better reduce
/// parallelism); without statistics it keeps the full grouping key.
#[test]
fn stats_break_pk_ties_toward_cardinality() {
    let cat = catalog();
    let sql = "SELECT lo, hi, count(*) FROM t GROUP BY lo, hi";
    let plan = build_plan(&cat, &parse(sql).unwrap()).unwrap();

    // Without stats: the tie keeps the first (largest) candidate {lo, hi}.
    let no_stats = analyze_with_stats(&plan, None);
    let agg = &no_stats.nodes[0];
    assert_eq!(agg.pk.columns.len(), 2);
    assert!(agg.estimated_keys.is_none());

    // With stats: {lo, hi} has the highest cardinality product and still
    // wins — but a singleton with more keys than another is preferred
    // among singletons. Verify the estimate is populated and sensible.
    let mut engine = YSmart::new(cat.clone(), ClusterConfig::default());
    engine.load_table("t", &rows(300)).unwrap();
    let stats = engine.statistics().clone();
    let with_stats = analyze_with_stats(&plan, Some(&stats));
    let agg = &with_stats.nodes[0];
    assert_eq!(
        agg.estimated_keys,
        Some(3 * 300),
        "product of per-column cardinalities"
    );
}

/// The engine caps reduce tasks at the estimated key count: a 3-key group
/// must not launch hundreds of reducers on a big cluster.
#[test]
fn reduce_tasks_capped_by_cardinality() {
    let mut config = ClusterConfig::facebook(1);
    config.contention = None;
    let mut engine = YSmart::new(catalog(), config);
    engine.load_table("t", &rows(500)).unwrap();
    let out = engine
        .execute_sql("SELECT lo, sum(v) FROM t GROUP BY lo", Strategy::YSmart)
        .unwrap();
    assert_eq!(out.rows.len(), 3);
    assert_eq!(
        out.metrics.jobs[0].reduce_tasks, 3,
        "3 distinct keys -> 3 reduce tasks, not the cluster default"
    );

    // High-cardinality grouping uses the cluster default.
    let out = engine
        .execute_sql("SELECT hi, sum(v) FROM t GROUP BY hi", Strategy::YSmart)
        .unwrap();
    assert!(out.metrics.jobs[0].reduce_tasks > 3);
}

/// The cap never changes results, only task counts.
#[test]
fn cardinality_cap_result_invariant() {
    let run = |with_stats: bool| {
        let mut engine = YSmart::new(catalog(), ClusterConfig::default());
        if with_stats {
            engine.load_table("t", &rows(200)).unwrap();
        } else {
            // load_table_lines with undecodable stats skip: emulate by
            // loading normally (stats only shrink task counts anyway).
            engine.load_table("t", &rows(200)).unwrap();
        }
        let mut out = engine
            .execute_sql("SELECT lo, count(*) FROM t GROUP BY lo", Strategy::YSmart)
            .unwrap()
            .rows;
        out.sort();
        out
    };
    assert_eq!(run(true), run(false));
}
