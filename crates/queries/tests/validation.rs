//! The central correctness gate: every workload query, translated under
//! every strategy, must produce exactly the oracle's result set on the
//! simulated cluster. A figure can only report times for runs that pass
//! this gate.

use std::collections::BTreeMap;

use ysmart_core::{Strategy, YSmart};
use ysmart_datagen::{ClicksSpec, TpchSpec};
use ysmart_mapred::ClusterConfig;
use ysmart_queries::{
    clicks_workloads, oracle_execute, rows_approx_equal, tpch_workloads, Workload,
};
use ysmart_rel::Row;

fn check_workload(w: &Workload) {
    let tables: BTreeMap<String, Vec<Row>> = w
        .tables
        .iter()
        .map(|(n, r)| ((*n).to_string(), r.clone()))
        .collect();
    let plan = {
        let q = ysmart_sql::parse(&w.sql).unwrap();
        ysmart_plan::build_plan(&w.catalog, &q).unwrap()
    };
    let expected = oracle_execute(&plan, &tables).unwrap().rows;

    for strategy in Strategy::all() {
        let mut engine = YSmart::new(w.catalog.clone(), ClusterConfig::default());
        w.load_into(&mut engine).unwrap();
        let out = engine
            .execute_sql(&w.sql, strategy)
            .unwrap_or_else(|e| panic!("{} under {strategy}: {e}", w.name));
        assert!(
            rows_approx_equal(&out.rows, &expected, w.ordered),
            "{} under {strategy}: results differ ({} vs {} rows)",
            w.name,
            out.rows.len(),
            expected.len()
        );
    }
}

#[test]
fn tpch_queries_match_oracle_under_all_strategies() {
    for w in tpch_workloads(&TpchSpec {
        scale: 0.15,
        seed: 11,
    }) {
        check_workload(&w);
    }
}

#[test]
fn clicks_queries_match_oracle_under_all_strategies() {
    for w in clicks_workloads(&ClicksSpec {
        users: 25,
        clicks_per_user: 30,
        seed: 5,
        ..ClicksSpec::default()
    }) {
        check_workload(&w);
    }
}

#[test]
fn multiple_seeds_and_scales() {
    for seed in [1, 2, 3] {
        for w in tpch_workloads(&TpchSpec { scale: 0.08, seed }) {
            check_workload(&w);
        }
    }
}

/// The paper's headline job counts (§VII-A), asserted end-to-end.
#[test]
fn job_counts_match_paper() {
    let tpch = tpch_workloads(&TpchSpec {
        scale: 0.05,
        seed: 2,
    });
    let clicks = clicks_workloads(&ClicksSpec {
        users: 8,
        clicks_per_user: 12,
        seed: 2,
        ..ClicksSpec::default()
    });
    let find =
        |ws: &[Workload], n: &str| -> Workload { ws.iter().find(|w| w.name == n).unwrap().clone() };

    // Q17: Hive four jobs, YSmart two (§VII-D: "For Q17 by Hive, there are
    // four jobs").
    let q17 = find(&tpch, "q17");
    let counts = job_counts(&q17);
    assert_eq!(counts[&Strategy::Hive], 4);
    assert_eq!(counts[&Strategy::YSmart], 2);

    // Q-CSA: Hive six jobs, YSmart two (§VII-D: "YSmart executes two jobs,
    // while Hive executes six jobs").
    let q_csa = find(&clicks, "q-csa");
    let counts = job_counts(&q_csa);
    assert_eq!(counts[&Strategy::Hive], 6);
    assert_eq!(counts[&Strategy::YSmart], 2);

    // Q21 subtree: five operations one-op-one-job vs a single YSmart job
    // (§VII-C).
    let sub = find(&tpch, "q21-subtree");
    let counts = job_counts(&sub);
    assert_eq!(counts[&Strategy::Hive], 5);
    assert_eq!(counts[&Strategy::YSmart], 1);
    // IC/TC only: three jobs (Fig. 9 middle configuration).
    assert_eq!(counts[&Strategy::YSmartNoJfc], 3);
}

fn job_counts(w: &Workload) -> BTreeMap<Strategy, usize> {
    let mut out = BTreeMap::new();
    for strategy in Strategy::all() {
        let mut engine = YSmart::new(w.catalog.clone(), ClusterConfig::default());
        w.load_into(&mut engine).unwrap();
        let t = engine.translate(&w.sql, strategy).unwrap();
        out.insert(strategy, t.job_count());
    }
    out
}
