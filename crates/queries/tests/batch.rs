//! Multi-query batch translation: Rule 1 across queries. Batched queries
//! must produce exactly their individual results while sharing jobs and
//! scans when their operations are transit-correlated.

use ysmart_core::{Strategy, YSmart};
use ysmart_mapred::ClusterConfig;
use ysmart_plan::Catalog;
use ysmart_queries::rows_approx_equal;
use ysmart_rel::{row, DataType, Row, Schema};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "events",
        Schema::of(
            "events",
            &[
                ("uid", DataType::Int),
                ("kind", DataType::Int),
                ("amount", DataType::Int),
            ],
        ),
    );
    c.add_table(
        "users",
        Schema::of(
            "users",
            &[("uid", DataType::Int), ("region", DataType::Int)],
        ),
    );
    c
}

fn events(n: i64) -> Vec<Row> {
    (0..n).map(|i| row![i % 9, i % 4, i * 3]).collect()
}

fn users() -> Vec<Row> {
    (0..12i64).map(|i| row![i, i % 3]).collect()
}

fn engine() -> YSmart {
    let mut e = YSmart::new(catalog(), ClusterConfig::default());
    e.load_table("events", &events(120)).unwrap();
    e.load_table("users", &users()).unwrap();
    e
}

fn individual(sql: &str) -> Vec<Row> {
    let mut e = engine();
    let mut rows = e.execute_sql(sql, Strategy::YSmart).unwrap().rows;
    rows.sort();
    rows
}

/// Two aggregations on the same table with the same partition key fuse
/// into one shared job under batch translation.
#[test]
fn correlated_queries_share_a_job() {
    let q1 = "SELECT uid, count(*) FROM events GROUP BY uid";
    let q2 = "SELECT uid, sum(amount) FROM events GROUP BY uid";
    let mut e = engine();
    let batch = e.execute_batch(&[q1, q2], Strategy::YSmart).unwrap();
    assert_eq!(batch.jobs, 1, "transit-correlated members share one job");
    // Results equal to individual runs.
    for (i, sql) in [q1, q2].iter().enumerate() {
        let mut got = batch.queries[i].0.clone();
        got.sort();
        assert!(
            rows_approx_equal(&got, &individual(sql), false),
            "member {i} differs"
        );
    }
    // And the whole batch reads `events` once.
    let individual_reads: u64 = {
        let mut e = engine();
        let a = e.execute_sql(q1, Strategy::YSmart).unwrap();
        let b = e.execute_sql(q2, Strategy::YSmart).unwrap();
        a.metrics.total_hdfs_read() + b.metrics.total_hdfs_read()
    };
    assert!(
        batch.metrics.total_hdfs_read() < individual_reads,
        "shared scan: {} vs {}",
        batch.metrics.total_hdfs_read(),
        individual_reads
    );
}

/// Uncorrelated queries still execute correctly (separate jobs).
#[test]
fn uncorrelated_queries_stay_separate() {
    let q1 = "SELECT uid, count(*) FROM events GROUP BY uid";
    let q2 = "SELECT region, count(*) FROM users GROUP BY region";
    let mut e = engine();
    let batch = e.execute_batch(&[q1, q2], Strategy::YSmart).unwrap();
    assert_eq!(batch.jobs, 2);
    for (i, sql) in [q1, q2].iter().enumerate() {
        let mut got = batch.queries[i].0.clone();
        got.sort();
        assert_eq!(got, individual(sql), "member {i}");
    }
}

/// A mixed batch: one correlated pair, one join query and one map-only
/// selection, all in a single run.
#[test]
fn mixed_batch_end_to_end() {
    let sqls = [
        "SELECT uid, count(*) FROM events GROUP BY uid",
        "SELECT uid, max(amount) FROM events GROUP BY uid",
        "SELECT users.uid, region, amount FROM users JOIN events ON users.uid = events.uid",
        "SELECT uid, amount FROM events WHERE kind = 2",
    ];
    let mut e = engine();
    let batch = e.execute_batch(&sqls, Strategy::YSmart).unwrap();
    assert_eq!(batch.queries.len(), 4);
    for (i, sql) in sqls.iter().enumerate() {
        let mut got = batch.queries[i].0.clone();
        got.sort();
        assert!(
            rows_approx_equal(&got, &individual(sql), false),
            "member {i} ({sql}) differs"
        );
    }
    // 2 merged aggs (1 job) + join (1 job) + map-only (1 job) — the join on
    // uid is also transit-correlated with the aggregations, so it may fuse
    // further; assert only the upper bound.
    assert!(batch.jobs <= 3, "{} jobs", batch.jobs);
}

/// Batch translation under the one-op-one-job baseline never merges.
#[test]
fn hive_batch_does_not_share() {
    let q1 = "SELECT uid, count(*) FROM events GROUP BY uid";
    let q2 = "SELECT uid, sum(amount) FROM events GROUP BY uid";
    let mut e = engine();
    let batch = e.execute_batch(&[q1, q2], Strategy::Hive).unwrap();
    assert_eq!(batch.jobs, 2);
    for (i, sql) in [q1, q2].iter().enumerate() {
        let mut got = batch.queries[i].0.clone();
        got.sort();
        assert!(
            rows_approx_equal(&got, &individual(sql), false),
            "member {i}"
        );
    }
}
