//! Edge-case end-to-end tests of the translator: degenerate inputs, NULL
//! keys, skew, deep nesting — every case compared against the oracle under
//! every strategy.

use std::collections::BTreeMap;

use ysmart_core::{Strategy, YSmart};
use ysmart_mapred::ClusterConfig;
use ysmart_plan::Catalog;
use ysmart_queries::{oracle_execute, rows_approx_equal};
use ysmart_rel::{row, DataType, Row, Schema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "t",
        Schema::of(
            "t",
            &[
                ("k", DataType::Int),
                ("g", DataType::Int),
                ("v", DataType::Int),
                ("s", DataType::Str),
            ],
        ),
    );
    c.add_table(
        "u",
        Schema::of("u", &[("k", DataType::Int), ("w", DataType::Str)]),
    );
    c
}

fn check(sql: &str, t: Vec<Row>, u: Vec<Row>) {
    let catalog = catalog();
    let mut tables = BTreeMap::new();
    tables.insert("t".to_string(), t.clone());
    tables.insert("u".to_string(), u.clone());
    let plan = {
        let q = ysmart_sql::parse(sql).unwrap();
        ysmart_plan::build_plan(&catalog, &q).unwrap()
    };
    let expected = oracle_execute(&plan, &tables).unwrap().rows;
    for strategy in Strategy::all() {
        let mut engine = YSmart::new(catalog.clone(), ClusterConfig::default());
        engine.load_table("t", &t).unwrap();
        engine.load_table("u", &u).unwrap();
        let out = engine
            .execute_sql(sql, strategy)
            .unwrap_or_else(|e| panic!("{strategy} on `{sql}`: {e}"));
        assert!(
            rows_approx_equal(&out.rows, &expected, false),
            "{strategy} on `{sql}`: {} rows vs oracle {}",
            out.rows.len(),
            expected.len()
        );
    }
}

fn t_rows() -> Vec<Row> {
    vec![
        row![1i64, 0i64, 10i64, "a"],
        row![1i64, 1i64, 20i64, "b"],
        row![2i64, 0i64, 30i64, "c"],
        row![3i64, 1i64, 40i64, "d"],
    ]
}

fn u_rows() -> Vec<Row> {
    vec![row![1i64, "x"], row![2i64, "y"], row![9i64, "z"]]
}

#[test]
fn empty_tables_everywhere() {
    for sql in [
        "SELECT k, v FROM t WHERE v > 0",
        "SELECT g, count(*) FROM t GROUP BY g",
        "SELECT t.k, w FROM t JOIN u ON t.k = u.k",
        "SELECT t.k, w FROM t LEFT OUTER JOIN u ON t.k = u.k",
        "SELECT DISTINCT g FROM t ORDER BY g LIMIT 3",
    ] {
        check(sql, vec![], vec![]);
        check(sql, t_rows(), vec![]);
        check(sql, vec![], u_rows());
    }
}

#[test]
fn single_row_table() {
    check(
        "SELECT g, sum(v), count(distinct s) FROM t GROUP BY g",
        vec![row![1i64, 0i64, 10i64, "a"]],
        vec![],
    );
}

#[test]
fn null_join_keys_do_not_match() {
    // SQL: NULL = NULL is unknown — NULL-keyed rows must join nothing,
    // but LEFT OUTER must still emit them padded.
    let t = vec![
        row![1i64, 0i64, 10i64, "a"],
        Row::new(vec![
            Value::Null,
            Value::Int(0),
            Value::Int(99),
            Value::Str("n".into()),
        ]),
    ];
    let u = vec![
        row![1i64, "x"],
        Row::new(vec![Value::Null, Value::Str("nn".into())]),
    ];
    check(
        "SELECT t.k, v, w FROM t JOIN u ON t.k = u.k",
        t.clone(),
        u.clone(),
    );
    check(
        "SELECT t.k, v, w FROM t LEFT OUTER JOIN u ON t.k = u.k",
        t.clone(),
        u.clone(),
    );
    check(
        "SELECT t.k, v, w FROM t FULL OUTER JOIN u ON t.k = u.k",
        t,
        u,
    );
}

#[test]
fn null_group_keys_group_together() {
    let t = vec![
        Row::new(vec![
            Value::Int(1),
            Value::Null,
            Value::Int(5),
            Value::Str("a".into()),
        ]),
        Row::new(vec![
            Value::Int(2),
            Value::Null,
            Value::Int(7),
            Value::Str("b".into()),
        ]),
        row![3i64, 1i64, 9i64, "c"],
    ];
    check("SELECT g, count(*), sum(v) FROM t GROUP BY g", t, vec![]);
}

#[test]
fn nulls_ignored_by_aggregates() {
    let t = vec![
        Row::new(vec![
            Value::Int(1),
            Value::Int(0),
            Value::Null,
            Value::Str("a".into()),
        ]),
        row![1i64, 0i64, 10i64, "b"],
    ];
    check(
        "SELECT g, count(v), sum(v), avg(v), min(v), max(v) FROM t GROUP BY g",
        t,
        vec![],
    );
}

#[test]
fn heavy_key_skew() {
    // 500 rows on one key, a handful elsewhere: one reducer gets nearly
    // everything; results must be unaffected.
    let mut t = Vec::new();
    for i in 0..500i64 {
        t.push(row![7i64, i % 2, i, "s"]);
    }
    t.push(row![1i64, 0i64, 1i64, "t"]);
    check(
        "SELECT t.k, count(*), sum(v) FROM t, u WHERE t.k = u.k GROUP BY t.k",
        t,
        vec![row![7i64, "x"], row![1i64, "y"]],
    );
}

#[test]
fn three_level_nesting() {
    check(
        "SELECT m, count(*) FROM \
           (SELECT g AS m, total FROM \
             (SELECT g, sum(v) AS total FROM t GROUP BY g) AS inner_t \
            WHERE total > 0) AS mid \
         GROUP BY m",
        t_rows(),
        vec![],
    );
}

#[test]
fn string_keys_join_and_group() {
    check("SELECT s, count(*) FROM t GROUP BY s", t_rows(), vec![]);
    check(
        "SELECT t.s, u.w FROM t JOIN u ON t.k = u.k WHERE u.w <> 'z'",
        t_rows(),
        u_rows(),
    );
}

#[test]
fn having_order_limit_combo() {
    let catalog = catalog();
    let sql = "SELECT g, sum(v) AS total FROM t GROUP BY g \
               HAVING total > 15 ORDER BY total DESC LIMIT 1";
    let mut tables = BTreeMap::new();
    tables.insert("t".to_string(), t_rows());
    tables.insert("u".to_string(), vec![]);
    let plan = {
        let q = ysmart_sql::parse(sql).unwrap();
        ysmart_plan::build_plan(&catalog, &q).unwrap()
    };
    let expected = oracle_execute(&plan, &tables).unwrap().rows;
    for strategy in Strategy::all() {
        let mut engine = YSmart::new(catalog.clone(), ClusterConfig::default());
        engine.load_table("t", &t_rows()).unwrap();
        engine.load_table("u", &[]).unwrap();
        let out = engine.execute_sql(sql, strategy).unwrap();
        assert!(rows_approx_equal(&out.rows, &expected, true), "{strategy}");
    }
}

#[test]
fn constant_projection() {
    check("SELECT 1, k FROM t WHERE v > 15", t_rows(), vec![]);
}

#[test]
fn arithmetic_in_every_clause() {
    check(
        "SELECT g + 1, sum(v * 2) FROM t WHERE v + 5 > 10 GROUP BY g + 1",
        t_rows(),
        vec![],
    );
}

#[test]
fn self_join_three_instances() {
    // Three instances of the same table — two joins on the same key.
    check(
        "SELECT a.k, count(*) FROM t AS a, t AS b, t AS c \
         WHERE a.k = b.k AND b.k = c.k GROUP BY a.k",
        t_rows(),
        vec![],
    );
}

#[test]
fn right_outer_join_matches_oracle() {
    check(
        "SELECT v, w FROM t RIGHT OUTER JOIN u ON t.k = u.k",
        t_rows(),
        u_rows(),
    );
}

#[test]
fn anti_join_pattern_like_q21() {
    // LEFT OUTER + IS NULL: the Q21 idiom.
    check(
        "SELECT t.k, v FROM t LEFT OUTER JOIN \
           (SELECT k, count(*) AS n FROM u GROUP BY k) AS uu \
         ON t.k = uu.k WHERE uu.n IS NULL",
        t_rows(),
        u_rows(),
    );
}

#[test]
fn translation_is_deterministic() {
    let catalog = catalog();
    let sql = "SELECT t.k, count(*) FROM t, u WHERE t.k = u.k GROUP BY t.k";
    let explain = |i: usize| {
        let mut engine = YSmart::new(catalog.clone(), ClusterConfig::default());
        let _ = i;
        engine.translate(sql, Strategy::YSmart).unwrap().explain()
    };
    // `explain` embeds the query tag, which includes a per-engine counter;
    // fresh engines must agree exactly.
    assert_eq!(explain(0), explain(1));
}

#[test]
fn between_and_in_end_to_end() {
    check(
        "SELECT k, v FROM t WHERE v BETWEEN 15 AND 35",
        t_rows(),
        vec![],
    );
    check(
        "SELECT g, count(*) FROM t WHERE k IN (1, 3) GROUP BY g",
        t_rows(),
        vec![],
    );
    check(
        "SELECT k FROM t WHERE v NOT BETWEEN 15 AND 35 AND s NOT IN ('a', 'd')",
        t_rows(),
        vec![],
    );
}

#[test]
fn explain_describes_the_pipeline() {
    let mut engine = YSmart::new(catalog(), ClusterConfig::default());
    engine.load_table("t", &t_rows()).unwrap();
    engine.load_table("u", &u_rows()).unwrap();
    let sql = "SELECT t1.k, count(*) FROM t AS t1, t AS t2 \
               WHERE t1.k = t2.k GROUP BY t1.k";
    let translation = engine.translate(sql, Strategy::YSmart).unwrap();
    let explain = translation.explain();
    assert!(explain.contains("Job 1/1"), "{explain}");
    assert!(explain.contains("data/t"), "{explain}");
    assert!(explain.contains("post-job computation"), "{explain}");
    assert!(explain.contains("emit"), "{explain}");
}
