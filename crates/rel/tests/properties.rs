//! Property-based tests of the relational base layer's invariants.

use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use ysmart_rel::codec::{decode_line, encode_line};
use ysmart_rel::sort::{compare, sort_rows};
use ysmart_rel::{AggFunc, ColumnBatch, DataType, Field, Row, Schema, SortKey, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1000.0f64..1000.0).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::Str),
    ]
}

/// Like [`arb_value`] but with strings over the full printable range —
/// including the text codec's separators, which the binary frame format
/// must carry verbatim.
fn arb_wide_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1000.0f64..1000.0).prop_map(Value::Float),
        "[ -~]{0,12}".prop_map(Value::Str),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    /// The total order is consistent: sorting twice gives the same result,
    /// and `a <= b <= c` implies `a <= c` (checked over sorted triples).
    #[test]
    fn value_order_is_total_and_transitive(mut vs in prop::collection::vec(arb_value(), 3..20)) {
        vs.sort();
        let once = vs.clone();
        vs.sort();
        prop_assert_eq!(&once, &vs);
        for w in once.windows(3) {
            prop_assert!(w[0] <= w[2]);
        }
    }

    /// Eq implies equal hashes (required for grouping and shuffling).
    #[test]
    fn value_eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    /// `sql_cmp` is antisymmetric and agrees with equality.
    #[test]
    fn sql_cmp_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        match (a.sql_cmp(&b), b.sql_cmp(&a)) {
            (None, None) => {} // at least one NULL or incomparable
            (Some(x), Some(y)) => prop_assert_eq!(x, y.reverse()),
            other => prop_assert!(false, "one-sided comparison: {:?}", other),
        }
        if a.sql_cmp(&b) == Some(Ordering::Equal) {
            prop_assert_eq!(&a, &b);
        }
    }

    /// Arithmetic with NULL always yields NULL (never an error).
    #[test]
    fn null_absorbs_arithmetic(a in arb_value()) {
        for op in [Value::add, Value::sub, Value::mul] {
            if let Ok(v) = op(&a, &Value::Null) {
                prop_assert!(v.is_null());
            } else {
                prop_assert!(false, "NULL arithmetic must not error");
            }
        }
    }

    /// Integer add/mul agree with i64 arithmetic (in range).
    #[test]
    fn int_arithmetic_agrees(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        prop_assert_eq!(Value::Int(a).add(&Value::Int(b)).unwrap(), Value::Int(a + b));
        prop_assert_eq!(Value::Int(a).mul(&Value::Int(b)).unwrap(), Value::Int(a * b));
    }

    /// Rows survive the text codec for every type (strings restricted to
    /// separator-free alphabets, as the generators produce).
    #[test]
    fn codec_round_trips(
        ints in prop::collection::vec(prop::option::of(-1_000_000i64..1_000_000), 1..6),
        s in "[a-zA-Z0-9 _.-]{0,20}",
    ) {
        let mut fields: Vec<Field> = ints
            .iter()
            .enumerate()
            .map(|(i, _)| Field::new("t", &format!("c{i}"), DataType::Int))
            .collect();
        fields.push(Field::new("t", "s", DataType::Str));
        let schema = Schema::new(fields);
        let mut values: Vec<Value> = ints
            .iter()
            .map(|o| o.map(Value::Int).unwrap_or(Value::Null))
            .collect();
        // Empty text decodes as NULL, so a round-trip maps "" -> NULL.
        values.push(if s.is_empty() { Value::Null } else { Value::Str(s.clone()) });
        let row = Row::new(values);
        let line = encode_line(&row);
        let back = decode_line(&line, &schema).unwrap();
        prop_assert_eq!(back, row);
    }

    /// Decoding is total over corrupted input: randomly mutating bytes of a
    /// valid encoded line never panics — the decoder returns a row of the
    /// schema's width or a clean error. This is the contract the engine's
    /// bad-record skipping relies on when the corruption model tears
    /// records.
    #[test]
    fn decode_survives_random_byte_mutations(
        ints in prop::collection::vec(prop::option::of(-1_000_000i64..1_000_000), 1..5),
        f in prop::option::of(-1000.0f64..1000.0),
        s in "[a-zA-Z0-9 _.-]{0,16}",
        mutations in prop::collection::vec((0usize..256, any::<u8>()), 1..8),
    ) {
        let mut fields: Vec<Field> = ints
            .iter()
            .enumerate()
            .map(|(i, _)| Field::new("t", &format!("c{i}"), DataType::Int))
            .collect();
        fields.push(Field::new("t", "f", DataType::Float));
        fields.push(Field::new("t", "s", DataType::Str));
        let schema = Schema::new(fields);
        let mut values: Vec<Value> = ints
            .iter()
            .map(|o| o.map(Value::Int).unwrap_or(Value::Null))
            .collect();
        values.push(f.map(Value::Float).unwrap_or(Value::Null));
        values.push(if s.is_empty() { Value::Null } else { Value::Str(s) });
        let line = encode_line(&Row::new(values));

        let mut bytes = line.into_bytes();
        for (pos, byte) in mutations {
            if !bytes.is_empty() {
                let i = pos % bytes.len();
                bytes[i] = byte;
            }
        }
        // Corruption can produce invalid UTF-8; the simulated HDFS stores
        // strings, so model what a reader would see after replacement.
        let garbled = String::from_utf8_lossy(&bytes);
        if let Ok(row) = decode_line(&garbled, &schema) {
            prop_assert_eq!(row.len(), schema.len());
            for v in row.values() {
                if let Value::Float(x) = v {
                    prop_assert!(x.is_finite(), "NaN/inf must never decode");
                }
            }
        }
    }

    /// Aggregate merge is associative-enough: any split of the input
    /// produces the same final value as sequential accumulation.
    #[test]
    fn agg_split_invariance(
        xs in prop::collection::vec(prop::option::of(-1000i64..1000), 1..30),
        split in 0usize..30,
        func in prop::sample::select(vec![
            AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max,
        ]),
    ) {
        let vals: Vec<Value> = xs.iter().map(|o| o.map(Value::Int).unwrap_or(Value::Null)).collect();
        let split = split.min(vals.len());
        let mut direct = func.new_state();
        for v in &vals {
            direct.update(v).unwrap();
        }
        let mut a = func.new_state();
        let mut b = func.new_state();
        for v in &vals[..split] {
            a.update(v).unwrap();
        }
        for v in &vals[split..] {
            b.update(v).unwrap();
        }
        a.merge(&b).unwrap();
        // Avg accumulates floats; compare with tolerance.
        match (a.finish(), direct.finish()) {
            (Value::Float(x), Value::Float(y)) => prop_assert!((x - y).abs() < 1e-9),
            (x, y) => prop_assert_eq!(x, y),
        }
    }

    /// A columnar frame round-trips any uniform-width row run exactly —
    /// including strings the text codec could never carry (separators,
    /// newlines) and mixed-type columns (the `Var` escape hatch).
    #[test]
    fn colbatch_frame_round_trips(
        width in 1usize..5,
        cells in prop::collection::vec(arb_wide_value(), 0..60),
    ) {
        // Uniform-width rows: chunk the cell pool, dropping the remainder.
        let rows: Vec<Row> = cells
            .chunks_exact(width)
            .map(|c| Row::new(c.to_vec()))
            .collect();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        prop_assert_eq!(batch.num_rows(), rows.len());
        for (r, row) in rows.iter().enumerate() {
            prop_assert_eq!(&batch.row(r), row);
        }
        let back = ColumnBatch::decode_frame(&batch.encode_frame()).unwrap();
        prop_assert_eq!(back.to_rows(), rows);
    }

    /// The columnar path agrees with the text codec wherever both apply:
    /// for codec-safe values, decoding a batch row equals decoding the
    /// text-encoded line of the same row.
    #[test]
    fn colbatch_agrees_with_row_codec(
        ints in prop::collection::vec(prop::option::of(-1_000_000i64..1_000_000), 1..6),
        s in "[a-zA-Z0-9 _.-]{1,20}",
    ) {
        let mut fields: Vec<Field> = ints
            .iter()
            .enumerate()
            .map(|(i, _)| Field::new("t", &format!("c{i}"), DataType::Int))
            .collect();
        fields.push(Field::new("t", "s", DataType::Str));
        let schema = Schema::new(fields);
        let mut values: Vec<Value> = ints
            .iter()
            .map(|o| o.map(Value::Int).unwrap_or(Value::Null))
            .collect();
        values.push(Value::Str(s));
        let row = Row::new(values);
        let via_text = decode_line(&encode_line(&row), &schema).unwrap();
        let batch = ColumnBatch::from_rows(std::slice::from_ref(&row)).unwrap();
        let via_frame = ColumnBatch::decode_frame(&batch.encode_frame()).unwrap().row(0);
        prop_assert_eq!(via_frame, via_text);
    }

    /// Non-finite floats are rejected at batch construction, mirroring the
    /// text codec's refusal to encode NaN/inf.
    #[test]
    fn colbatch_rejects_non_finite_floats(
        pre in prop::collection::vec(-1000.0f64..1000.0, 0..4),
        bad in prop::sample::select(vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY]),
    ) {
        let mut vals: Vec<Value> = pre.into_iter().map(Value::Float).collect();
        vals.push(Value::Float(bad));
        prop_assert!(ColumnBatch::from_rows(&[Row::new(vals)]).is_err());
    }

    /// Every single-bit flip anywhere in a frame is caught on decode: the
    /// header is covered by the header checksum and every column chunk by
    /// its own XXH64, so no flipped frame ever decodes successfully. This
    /// is the integrity contract the engine's corruption recovery relies
    /// on in columnar mode.
    #[test]
    fn colbatch_detects_every_bit_flip(
        width in 1usize..4,
        cells in prop::collection::vec(arb_value(), 1..30),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut rows: Vec<Row> = cells
            .chunks_exact(width)
            .map(|c| Row::new(c.to_vec()))
            .collect();
        if rows.is_empty() {
            rows.push(Row::new(cells[..width.min(cells.len())].to_vec()));
        }
        let frame = ColumnBatch::from_rows(&rows).unwrap().encode_frame();
        let mut garbled = frame.clone();
        let i = pos % garbled.len();
        garbled[i] ^= 1 << bit;
        prop_assert!(
            ColumnBatch::decode_frame(&garbled).is_err(),
            "flip of bit {bit} at byte {i}/{} went undetected",
            frame.len()
        );
    }

    /// Sorting is idempotent and respects the first key.
    #[test]
    fn sort_invariants(rows_data in prop::collection::vec((any::<i64>(), any::<i64>()), 0..30)) {
        let mut rows: Vec<Row> = rows_data
            .iter()
            .map(|(a, b)| Row::new(vec![Value::Int(*a), Value::Int(*b)]))
            .collect();
        let keys = [SortKey::asc(0), SortKey::desc(1)];
        sort_rows(&keys, &mut rows);
        let once = rows.clone();
        sort_rows(&keys, &mut rows);
        prop_assert_eq!(&once, &rows);
        for w in rows.windows(2) {
            prop_assert!(compare(&keys, &w[0], &w[1]) != std::cmp::Ordering::Greater);
        }
    }
}
