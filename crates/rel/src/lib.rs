//! # ysmart-rel — relational base layer
//!
//! This crate provides the data model shared by every other crate in the
//! YSmart workspace:
//!
//! * [`Value`] / [`DataType`] — the dynamically-typed scalar values that flow
//!   through plans, MapReduce jobs and result sets;
//! * [`Row`] / [`Schema`] — tuples and their named, typed descriptions;
//! * [`Expr`] — a *resolved* scalar expression IR (columns are positional
//!   indexes, not names) together with its evaluator;
//! * [`AggFunc`] / [`AggState`] — the aggregate functions of the paper's SQL
//!   subset (`count`, `count(distinct)`, `sum`, `avg`, `min`, `max`) as
//!   incremental accumulators;
//! * [`codec`] — the pipe-delimited text codec used for "raw data files" in
//!   the simulated HDFS, mirroring TPC-H `.tbl` files;
//! * [`colbatch`] — typed columnar batches with a checksummed binary frame
//!   codec, the wire format of the columnar data path;
//! * [`sort`] — sort-key comparators.
//!
//! The crate is dependency-free and purely computational; everything here is
//! deterministic.

pub mod agg;
pub mod codec;
pub mod colbatch;
pub mod error;
pub mod expr;
pub mod row;
pub mod schema;
pub mod sort;
pub mod value;

pub use agg::{AggFunc, AggState};
pub use colbatch::{Column, ColumnBatch};
pub use error::RelError;
pub use expr::{BinOp, Expr, UnOp};
pub use row::Row;
pub use schema::{Field, Schema};
pub use sort::{SortKey, SortOrder};
pub use value::{DataType, Value};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, RelError>;
