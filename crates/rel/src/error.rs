//! Error type for the relational base layer.

use std::fmt;

/// Errors produced by expression evaluation, row decoding and schema lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// Two values had incompatible types for the attempted operation.
    TypeMismatch {
        /// Description of the operation that failed.
        op: String,
        /// Rendered left-hand operand.
        lhs: String,
        /// Rendered right-hand operand.
        rhs: String,
    },
    /// A column index was out of bounds for the row it was applied to.
    ColumnOutOfBounds {
        /// The requested column index.
        index: usize,
        /// The width of the row.
        width: usize,
    },
    /// A column name could not be resolved against a schema.
    UnknownColumn(String),
    /// A column name matched more than one field in a schema.
    AmbiguousColumn(String),
    /// A text field could not be decoded as the declared type.
    Decode {
        /// The raw text that failed to decode.
        text: String,
        /// The target type.
        ty: String,
    },
    /// A record line had the wrong number of fields.
    FieldCount {
        /// Number of fields expected by the schema.
        expected: usize,
        /// Number of fields found in the line.
        found: usize,
    },
    /// Division by zero during expression evaluation.
    DivideByZero,
    /// A columnar frame failed decoding or verification (bad magic,
    /// checksum mismatch, truncation, invalid payload).
    Frame(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::TypeMismatch { op, lhs, rhs } => {
                write!(f, "type mismatch in {op}: {lhs} vs {rhs}")
            }
            RelError::ColumnOutOfBounds { index, width } => {
                write!(
                    f,
                    "column index {index} out of bounds for row of width {width}"
                )
            }
            RelError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            RelError::AmbiguousColumn(name) => write!(f, "ambiguous column `{name}`"),
            RelError::Decode { text, ty } => write!(f, "cannot decode `{text}` as {ty}"),
            RelError::FieldCount { expected, found } => {
                write!(f, "expected {expected} fields, found {found}")
            }
            RelError::DivideByZero => write!(f, "division by zero"),
            RelError::Frame(what) => write!(f, "invalid columnar frame: {what}"),
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            RelError::TypeMismatch {
                op: "+".into(),
                lhs: "1".into(),
                rhs: "'a'".into(),
            },
            RelError::ColumnOutOfBounds { index: 3, width: 2 },
            RelError::UnknownColumn("x".into()),
            RelError::AmbiguousColumn("y".into()),
            RelError::Decode {
                text: "z".into(),
                ty: "Int".into(),
            },
            RelError::FieldCount {
                expected: 4,
                found: 2,
            },
            RelError::DivideByZero,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(RelError::DivideByZero);
        assert_eq!(e.to_string(), "division by zero");
    }
}
