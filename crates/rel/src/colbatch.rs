//! Columnar record batches and the checksummed binary frame codec.
//!
//! A [`ColumnBatch`] holds a run of rows decomposed into typed column
//! vectors — `Int`/`Float`/`Bool` as plain vectors with a null mask,
//! strings dictionary-encoded (each distinct string stored once, rows
//! carry `u32` dictionary indices), and a `Var` escape hatch for columns
//! whose rows mix types. Batches are what the columnar data path
//! (`DataFormat::Columnar`) moves between map tasks, shuffle segments and
//! HDFS files instead of `|`-delimited text lines: operators read typed
//! vectors directly and never re-parse text per record.
//!
//! The wire form is a *frame*: a length-prefixed binary encoding with an
//! XXH64 checksum **per column chunk** plus one over the header, so any
//! single corrupted bit is detected and localized to one column (the text
//! path's block checksum can only condemn a whole block). The layout:
//!
//! ```text
//! magic "YCB1" | ncols u16 | nrows u32
//! per column: tag u8 | chunk_len u32 | chunk_sum u64 (XXH64)
//! header_sum u64 (XXH64 over every preceding header byte)
//! column chunks, back to back (no padding)
//! ```
//!
//! All integers are little-endian. [`decode_frame`] verifies the header
//! checksum, every chunk checksum, exact frame length, UTF-8 of dictionary
//! entries, and rejects non-finite floats — the same contract the text
//! codec's `decode_field` enforces, so corrupted bytes can never smuggle a
//! NaN into the computation.

use std::collections::HashMap;

use crate::error::RelError;
use crate::row::Row;
use crate::value::Value;

/// Frame magic: "YSmart Columnar Batch v1".
pub const FRAME_MAGIC: [u8; 4] = *b"YCB1";

/// Default rows per frame when chunking a large row run into frames — a
/// compromise between per-frame header/dictionary overhead and split
/// granularity (frames are the unit map-task splits cannot subdivide).
/// Wider frames amortise the per-frame column allocations in encode and
/// decode; 1024 measured faster than 256 with no loss of split balance at
/// the benchmarked scales.
pub const DEFAULT_FRAME_ROWS: usize = 1024;

// XXH64 primes (Yann Collet's xxHash, public domain). `ysmart_mapred`'s
// block checksums delegate to this same implementation.
const XXP1: u64 = 0x9E37_79B1_85EB_CA87;
const XXP2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const XXP3: u64 = 0x1656_67B1_9E37_79F9;
const XXP4: u64 = 0x85EB_CA77_C2B2_AE63;
const XXP5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xx_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(XXP2))
        .rotate_left(31)
        .wrapping_mul(XXP1)
}

#[inline]
fn xx_merge(acc: u64, val: u64) -> u64 {
    (acc ^ xx_round(0, val))
        .wrapping_mul(XXP1)
        .wrapping_add(XXP4)
}

#[inline]
fn read_u64_raw(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

/// XXH64 of a byte slice with an explicit seed — full-avalanche, so any
/// single flipped bit changes the result.
#[must_use]
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut h = if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(XXP1).wrapping_add(XXP2);
        let mut v2 = seed.wrapping_add(XXP2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(XXP1);
        while rest.len() >= 32 {
            v1 = xx_round(v1, read_u64_raw(&rest[0..]));
            v2 = xx_round(v2, read_u64_raw(&rest[8..]));
            v3 = xx_round(v3, read_u64_raw(&rest[16..]));
            v4 = xx_round(v4, read_u64_raw(&rest[24..]));
            rest = &rest[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xx_merge(h, v1);
        h = xx_merge(h, v2);
        h = xx_merge(h, v3);
        xx_merge(h, v4)
    } else {
        seed.wrapping_add(XXP5)
    };
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h = (h ^ xx_round(0, read_u64_raw(rest)))
            .rotate_left(27)
            .wrapping_mul(XXP1)
            .wrapping_add(XXP4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        let k = u64::from(u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")));
        h = (h ^ k.wrapping_mul(XXP1))
            .rotate_left(23)
            .wrapping_mul(XXP2)
            .wrapping_add(XXP3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ u64::from(b).wrapping_mul(XXP5))
            .rotate_left(11)
            .wrapping_mul(XXP1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(XXP2);
    h ^= h >> 29;
    h = h.wrapping_mul(XXP3);
    h ^ (h >> 32)
}

/// FNV-1a [`std::hash::Hasher`] for the codec's internal hash maps —
/// dictionary lookups hash short strings the engine produced itself, where
/// `std`'s DoS-resistant SipHash costs more than the rest of the insert.
pub struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// Builds [`FnvHasher`]s for `HashMap::default()` / `HashSet::default()`.
#[derive(Default, Clone)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

/// One typed column vector of a batch. Every variant's vectors are
/// `nrows` long; null slots hold a zero/default payload so the encoding
/// is canonical (two batches with equal rows encode to equal bytes).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int {
        /// Values (zero in null slots).
        data: Vec<i64>,
        /// Null mask, `true` = NULL.
        nulls: Vec<bool>,
    },
    /// 64-bit floats (always finite).
    Float {
        /// Values (zero in null slots).
        data: Vec<f64>,
        /// Null mask.
        nulls: Vec<bool>,
    },
    /// Booleans.
    Bool {
        /// Values (`false` in null slots).
        data: Vec<bool>,
        /// Null mask.
        nulls: Vec<bool>,
    },
    /// Dictionary-encoded strings: each distinct string appears once in
    /// `dict` (first-seen order, so construction is deterministic) and
    /// rows store indices into it.
    Str {
        /// Distinct strings in first-appearance order.
        dict: Vec<String>,
        /// Per-row dictionary index (zero in null slots).
        idx: Vec<u32>,
        /// Null mask.
        nulls: Vec<bool>,
    },
    /// Escape hatch for columns whose rows mix types: values stored as-is.
    Var(Vec<Value>),
}

impl Column {
    /// The value at `row`, owned.
    #[must_use]
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int { data, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Int(data[row])
                }
            }
            Column::Float { data, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Float(data[row])
                }
            }
            Column::Bool { data, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Bool(data[row])
                }
            }
            Column::Str { dict, idx, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Str(dict[idx[row] as usize].clone())
                }
            }
            Column::Var(vals) => vals[row].clone(),
        }
    }

    fn wire_tag(&self) -> u8 {
        match self {
            Column::Int { .. } => 0,
            Column::Float { .. } => 1,
            Column::Bool { .. } => 2,
            Column::Str { .. } => 3,
            Column::Var(_) => 4,
        }
    }
}

/// A run of rows in columnar form. See the module docs for the wire
/// format.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnBatch {
    cols: Vec<Column>,
    rows: usize,
}

fn frame_err(what: impl Into<String>) -> RelError {
    RelError::Frame(what.into())
}

impl ColumnBatch {
    /// Builds a batch from uniform-width rows. Column types are inferred
    /// per column: if every non-null value shares one type the column is
    /// typed (strings dictionary-encoded); mixed columns fall back to
    /// [`Column::Var`]. All-null columns become `Int`.
    ///
    /// # Errors
    ///
    /// [`RelError::FieldCount`] when rows differ in width, and
    /// [`RelError::Frame`] on non-finite floats (the columnar counterpart
    /// of the text codec rejecting `NaN`/`inf`).
    pub fn from_rows(rows: &[Row]) -> Result<ColumnBatch, RelError> {
        let Some(first) = rows.first() else {
            return Ok(ColumnBatch::default());
        };
        let width = first.len();
        for r in rows {
            if r.len() != width {
                return Err(RelError::FieldCount {
                    expected: width,
                    found: r.len(),
                });
            }
            for v in r.values() {
                if let Value::Float(f) = v {
                    if !f.is_finite() {
                        return Err(frame_err("non-finite float in batch"));
                    }
                }
            }
        }
        let nrows = rows.len();
        let mut cols = Vec::with_capacity(width);
        for c in 0..width {
            // One pass to decide the column type.
            #[derive(PartialEq, Clone, Copy)]
            enum Ty {
                None,
                Int,
                Float,
                Bool,
                Str,
                Mixed,
            }
            let mut ty = Ty::None;
            for r in rows {
                let vt = match &r.values()[c] {
                    Value::Null => continue,
                    Value::Int(_) => Ty::Int,
                    Value::Float(_) => Ty::Float,
                    Value::Bool(_) => Ty::Bool,
                    Value::Str(_) => Ty::Str,
                };
                ty = match ty {
                    Ty::None => vt,
                    t if t == vt => t,
                    _ => Ty::Mixed,
                };
                if ty == Ty::Mixed {
                    break;
                }
            }
            let col = match ty {
                Ty::None | Ty::Int => {
                    let mut data = vec![0i64; nrows];
                    let mut nulls = vec![false; nrows];
                    for (i, r) in rows.iter().enumerate() {
                        match &r.values()[c] {
                            Value::Int(v) => data[i] = *v,
                            _ => nulls[i] = true,
                        }
                    }
                    Column::Int { data, nulls }
                }
                Ty::Float => {
                    let mut data = vec![0f64; nrows];
                    let mut nulls = vec![false; nrows];
                    for (i, r) in rows.iter().enumerate() {
                        match &r.values()[c] {
                            Value::Float(v) => data[i] = *v,
                            _ => nulls[i] = true,
                        }
                    }
                    Column::Float { data, nulls }
                }
                Ty::Bool => {
                    let mut data = vec![false; nrows];
                    let mut nulls = vec![false; nrows];
                    for (i, r) in rows.iter().enumerate() {
                        match &r.values()[c] {
                            Value::Bool(v) => data[i] = *v,
                            _ => nulls[i] = true,
                        }
                    }
                    Column::Bool { data, nulls }
                }
                Ty::Str => {
                    let mut dict: Vec<String> = Vec::new();
                    let mut lookup: HashMap<&str, u32, FnvBuildHasher> = HashMap::default();
                    let mut idx = vec![0u32; nrows];
                    let mut nulls = vec![false; nrows];
                    for (i, r) in rows.iter().enumerate() {
                        match &r.values()[c] {
                            Value::Str(s) => {
                                idx[i] = *lookup.entry(s.as_str()).or_insert_with(|| {
                                    dict.push(s.clone());
                                    (dict.len() - 1) as u32
                                });
                            }
                            _ => nulls[i] = true,
                        }
                    }
                    Column::Str { dict, idx, nulls }
                }
                Ty::Mixed => Column::Var(rows.iter().map(|r| r.values()[c].clone()).collect()),
            };
            cols.push(col);
        }
        Ok(ColumnBatch { cols, rows: nrows })
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// The typed columns.
    #[must_use]
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Total dictionary entries across string columns — the compression
    /// the format gets from repeated strings, surfaced in job metrics.
    #[must_use]
    pub fn dict_entries(&self) -> u64 {
        self.cols
            .iter()
            .map(|c| match c {
                Column::Str { dict, .. } => dict.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Materializes one row.
    #[must_use]
    pub fn row(&self, r: usize) -> Row {
        Row::new(self.cols.iter().map(|c| c.value(r)).collect())
    }

    /// Materializes every row (the boundary back to row-at-a-time code).
    #[must_use]
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.rows).map(|r| self.row(r)).collect()
    }

    /// Rows for which `mask` is `true`, as a new batch (column-at-a-time
    /// selection; used by tag filters and vectorized predicates).
    ///
    /// # Panics
    ///
    /// When `mask.len() != num_rows()`.
    #[must_use]
    pub fn filter(&self, mask: &[bool]) -> ColumnBatch {
        assert_eq!(mask.len(), self.rows, "mask length");
        let keep: Vec<usize> = (0..self.rows).filter(|&i| mask[i]).collect();
        let cols = self
            .cols
            .iter()
            .map(|c| match c {
                Column::Int { data, nulls } => Column::Int {
                    data: keep.iter().map(|&i| data[i]).collect(),
                    nulls: keep.iter().map(|&i| nulls[i]).collect(),
                },
                Column::Float { data, nulls } => Column::Float {
                    data: keep.iter().map(|&i| data[i]).collect(),
                    nulls: keep.iter().map(|&i| nulls[i]).collect(),
                },
                Column::Bool { data, nulls } => Column::Bool {
                    data: keep.iter().map(|&i| data[i]).collect(),
                    nulls: keep.iter().map(|&i| nulls[i]).collect(),
                },
                Column::Str { dict, idx, nulls } => Column::Str {
                    dict: dict.clone(),
                    idx: keep.iter().map(|&i| idx[i]).collect(),
                    nulls: keep.iter().map(|&i| nulls[i]).collect(),
                },
                Column::Var(vals) => Column::Var(keep.iter().map(|&i| vals[i].clone()).collect()),
            })
            .collect();
        ColumnBatch {
            cols,
            rows: keep.len(),
        }
    }

    /// A batch of the columns `[from..]` — used to strip a leading tag
    /// column off tagged intermediate files.
    #[must_use]
    pub fn slice_cols(&self, from: usize) -> ColumnBatch {
        ColumnBatch {
            cols: self.cols.iter().skip(from).cloned().collect(),
            rows: self.rows,
        }
    }

    /// Encodes the batch as one frame (see module docs for the layout).
    ///
    /// # Panics
    ///
    /// When the batch exceeds the wire limits (65535 columns or
    /// `u32::MAX` rows) — far beyond anything the engine constructs.
    #[must_use]
    pub fn encode_frame(&self) -> Vec<u8> {
        assert!(self.cols.len() <= usize::from(u16::MAX), "too many columns");
        assert!(self.rows <= u32::MAX as usize, "too many rows");
        let chunks: Vec<Vec<u8>> = self.cols.iter().map(encode_chunk).collect();
        let header_len = 4 + 2 + 4 + chunks.len() * (1 + 4 + 8) + 8;
        let total = header_len + chunks.iter().map(Vec::len).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&(self.cols.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        for (col, chunk) in self.cols.iter().zip(&chunks) {
            out.push(col.wire_tag());
            out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
            out.extend_from_slice(&xxh64(chunk, 0).to_le_bytes());
        }
        let header_sum = xxh64(&out, 0);
        out.extend_from_slice(&header_sum.to_le_bytes());
        for chunk in &chunks {
            out.extend_from_slice(chunk);
        }
        out
    }

    /// Decodes and *verifies* one frame: header checksum, per-column chunk
    /// checksums, exact length, dictionary UTF-8 and index bounds, finite
    /// floats. Any single corrupted bit fails one of these checks.
    ///
    /// # Errors
    ///
    /// [`RelError::Frame`] naming the first failed check.
    pub fn decode_frame(bytes: &[u8]) -> Result<ColumnBatch, RelError> {
        let mut rd = Reader::new(bytes);
        let magic = rd.take(4)?;
        if magic != FRAME_MAGIC {
            return Err(frame_err("bad frame magic"));
        }
        let ncols = rd.read_u16()? as usize;
        let nrows = rd.read_u32()? as usize;
        let mut headers = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let tag = rd.read_u8()?;
            let len = rd.read_u32()? as usize;
            let sum = rd.read_u64()?;
            headers.push((tag, len, sum));
        }
        let header_end = rd.pos;
        let stored_header_sum = rd.read_u64()?;
        if xxh64(&bytes[..header_end], 0) != stored_header_sum {
            return Err(frame_err("frame header checksum mismatch"));
        }
        let mut cols = Vec::with_capacity(ncols);
        for (c, (tag, len, sum)) in headers.into_iter().enumerate() {
            let chunk = rd.take(len)?;
            if xxh64(chunk, 0) != sum {
                return Err(frame_err(format!("column {c} chunk checksum mismatch")));
            }
            cols.push(decode_chunk(tag, chunk, nrows, c)?);
        }
        if rd.pos != bytes.len() {
            return Err(frame_err("trailing bytes after frame"));
        }
        Ok(ColumnBatch { cols, rows: nrows })
    }
}

/// Encodes rows as a sequence of frames of at most `rows_per_frame` rows
/// each (an empty input yields no frames).
///
/// # Errors
///
/// As [`ColumnBatch::from_rows`].
pub fn encode_frames(rows: &[Row], rows_per_frame: usize) -> Result<Vec<Vec<u8>>, RelError> {
    let per = rows_per_frame.max(1);
    rows.chunks(per)
        .map(|chunk| Ok(ColumnBatch::from_rows(chunk)?.encode_frame()))
        .collect()
}

/// Decodes a sequence of frames back into one row run.
///
/// # Errors
///
/// As [`ColumnBatch::decode_frame`].
pub fn decode_frames(frames: &[Vec<u8>]) -> Result<Vec<Row>, RelError> {
    let mut rows = Vec::new();
    for f in frames {
        rows.extend(ColumnBatch::decode_frame(f)?.to_rows());
    }
    Ok(rows)
}

/// Bounds-checked little-endian reader over a frame.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RelError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| frame_err("truncated frame"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn read_u8(&mut self) -> Result<u8, RelError> {
        Ok(self.take(1)?[0])
    }

    fn read_u16(&mut self) -> Result<u16, RelError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn read_u32(&mut self) -> Result<u32, RelError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn read_u64(&mut self) -> Result<u64, RelError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

fn encode_chunk(col: &Column) -> Vec<u8> {
    let mut out = Vec::new();
    let push_nulls = |out: &mut Vec<u8>, nulls: &[bool]| {
        out.extend(nulls.iter().map(|&n| u8::from(n)));
    };
    match col {
        Column::Int { data, nulls } => {
            push_nulls(&mut out, nulls);
            for (v, &n) in data.iter().zip(nulls) {
                out.extend_from_slice(&(if n { 0 } else { *v }).to_le_bytes());
            }
        }
        Column::Float { data, nulls } => {
            push_nulls(&mut out, nulls);
            for (v, &n) in data.iter().zip(nulls) {
                out.extend_from_slice(&(if n { 0.0 } else { *v }).to_bits().to_le_bytes());
            }
        }
        Column::Bool { data, nulls } => {
            push_nulls(&mut out, nulls);
            out.extend(data.iter().zip(nulls).map(|(&v, &n)| u8::from(v && !n)));
        }
        Column::Str { dict, idx, nulls } => {
            push_nulls(&mut out, nulls);
            out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
            for s in dict {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            for (v, &n) in idx.iter().zip(nulls) {
                out.extend_from_slice(&(if n { 0 } else { *v }).to_le_bytes());
            }
        }
        Column::Var(vals) => {
            for v in vals {
                match v {
                    Value::Null => out.push(0),
                    Value::Bool(b) => {
                        out.push(1);
                        out.push(u8::from(*b));
                    }
                    Value::Int(i) => {
                        out.push(2);
                        out.extend_from_slice(&i.to_le_bytes());
                    }
                    Value::Float(f) => {
                        out.push(3);
                        out.extend_from_slice(&f.to_bits().to_le_bytes());
                    }
                    Value::Str(s) => {
                        out.push(4);
                        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                        out.extend_from_slice(s.as_bytes());
                    }
                }
            }
        }
    }
    out
}

fn decode_chunk(tag: u8, chunk: &[u8], nrows: usize, col: usize) -> Result<Column, RelError> {
    let mut rd = Reader::new(chunk);
    let read_nulls = |rd: &mut Reader| -> Result<Vec<bool>, RelError> {
        rd.take(nrows)?
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(frame_err(format!("column {col}: bad null byte"))),
            })
            .collect()
    };
    let parsed = match tag {
        0 => {
            let nulls = read_nulls(&mut rd)?;
            let mut data = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                data.push(rd.read_u64()? as i64);
            }
            Column::Int { data, nulls }
        }
        1 => {
            let nulls = read_nulls(&mut rd)?;
            let mut data = Vec::with_capacity(nrows);
            for &null in &nulls {
                let f = f64::from_bits(rd.read_u64()?);
                if !null && !f.is_finite() {
                    return Err(frame_err(format!("column {col}: non-finite float")));
                }
                data.push(f);
            }
            Column::Float { data, nulls }
        }
        2 => {
            let nulls = read_nulls(&mut rd)?;
            let mut data = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                data.push(match rd.read_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(frame_err(format!("column {col}: bad bool byte"))),
                });
            }
            Column::Bool { data, nulls }
        }
        3 => {
            let nulls = read_nulls(&mut rd)?;
            let dict_len = rd.read_u32()? as usize;
            let mut dict = Vec::with_capacity(dict_len.min(chunk.len()));
            for _ in 0..dict_len {
                let len = rd.read_u32()? as usize;
                let s = std::str::from_utf8(rd.take(len)?)
                    .map_err(|_| frame_err(format!("column {col}: dictionary not UTF-8")))?;
                dict.push(s.to_string());
            }
            let mut idx = Vec::with_capacity(nrows);
            for &null in &nulls {
                let v = rd.read_u32()?;
                if !null && v as usize >= dict.len() {
                    return Err(frame_err(format!("column {col}: dictionary index {v}")));
                }
                idx.push(v);
            }
            Column::Str { dict, idx, nulls }
        }
        4 => {
            let mut vals = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                vals.push(match rd.read_u8()? {
                    0 => Value::Null,
                    1 => match rd.read_u8()? {
                        0 => Value::Bool(false),
                        1 => Value::Bool(true),
                        _ => return Err(frame_err(format!("column {col}: bad bool byte"))),
                    },
                    2 => Value::Int(rd.read_u64()? as i64),
                    3 => {
                        let f = f64::from_bits(rd.read_u64()?);
                        if !f.is_finite() {
                            return Err(frame_err(format!("column {col}: non-finite float")));
                        }
                        Value::Float(f)
                    }
                    4 => {
                        let len = rd.read_u32()? as usize;
                        let s = std::str::from_utf8(rd.take(len)?)
                            .map_err(|_| frame_err(format!("column {col}: string not UTF-8")))?;
                        Value::Str(s.to_string())
                    }
                    _ => return Err(frame_err(format!("column {col}: bad value tag"))),
                });
            }
            Column::Var(vals)
        }
        other => return Err(frame_err(format!("column {col}: unknown tag {other}"))),
    };
    if rd.pos != chunk.len() {
        return Err(frame_err(format!("column {col}: trailing chunk bytes")));
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample_rows() -> Vec<Row> {
        vec![
            row![1i64, "apple", 1.5f64, true],
            Row::new(vec![
                Value::Null,
                Value::Str("banana".into()),
                Value::Null,
                Value::Bool(false),
            ]),
            row![3i64, "apple", -2.25f64, true],
        ]
    }

    #[test]
    fn round_trip_typed_columns() {
        let rows = sample_rows();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.num_cols(), 4);
        assert_eq!(batch.dict_entries(), 2, "apple stored once");
        let frame = batch.encode_frame();
        let back = ColumnBatch::decode_frame(&frame).unwrap();
        assert_eq!(back.to_rows(), rows);
    }

    #[test]
    fn mixed_column_falls_back_to_var() {
        let rows = vec![row![1i64], row!["x"], Row::new(vec![Value::Null])];
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        assert!(matches!(batch.columns()[0], Column::Var(_)));
        let back = ColumnBatch::decode_frame(&batch.encode_frame()).unwrap();
        assert_eq!(back.to_rows(), rows);
    }

    #[test]
    fn empty_and_all_null_batches() {
        let empty = ColumnBatch::from_rows(&[]).unwrap();
        assert_eq!(empty.num_rows(), 0);
        let back = ColumnBatch::decode_frame(&empty.encode_frame()).unwrap();
        assert_eq!(back.to_rows(), Vec::<Row>::new());

        let nulls = vec![Row::nulls(2), Row::nulls(2)];
        let batch = ColumnBatch::from_rows(&nulls).unwrap();
        let back = ColumnBatch::decode_frame(&batch.encode_frame()).unwrap();
        assert_eq!(back.to_rows(), nulls);
    }

    #[test]
    fn width_mismatch_rejected() {
        let rows = vec![row![1i64], row![1i64, 2i64]];
        assert!(matches!(
            ColumnBatch::from_rows(&rows),
            Err(RelError::FieldCount {
                expected: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn non_finite_floats_rejected_on_encode_and_decode() {
        let rows = vec![row![f64::NAN]];
        assert!(ColumnBatch::from_rows(&rows).is_err());

        // Hand-build a frame whose float chunk carries NaN bits with a
        // *correct* checksum: the type check itself must reject it.
        let chunk: Vec<u8> = {
            let mut c = vec![0u8]; // one non-null row
            c.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
            c
        };
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC);
        frame.extend_from_slice(&1u16.to_le_bytes());
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.push(1); // Float tag
        frame.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        frame.extend_from_slice(&xxh64(&chunk, 0).to_le_bytes());
        let header_sum = xxh64(&frame, 0);
        frame.extend_from_slice(&header_sum.to_le_bytes());
        frame.extend_from_slice(&chunk);
        let err = ColumnBatch::decode_frame(&frame).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let rows = sample_rows();
        let frame = ColumnBatch::from_rows(&rows).unwrap().encode_frame();
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    ColumnBatch::decode_frame(&bad).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_rejected() {
        let frame = ColumnBatch::from_rows(&sample_rows())
            .unwrap()
            .encode_frame();
        assert!(ColumnBatch::decode_frame(&frame[..frame.len() - 1]).is_err());
        let mut extended = frame.clone();
        extended.push(0);
        assert!(ColumnBatch::decode_frame(&extended).is_err());
    }

    #[test]
    fn filter_and_slice_cols() {
        let rows = sample_rows();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let filtered = batch.filter(&[true, false, true]);
        assert_eq!(filtered.to_rows(), vec![rows[0].clone(), rows[2].clone()]);
        let sliced = batch.slice_cols(1);
        assert_eq!(sliced.num_cols(), 3);
        assert_eq!(sliced.row(0), rows[0].project(&[1, 2, 3]));
    }

    #[test]
    fn frames_round_trip_with_chunking() {
        let rows: Vec<Row> = (0..10).map(|i| row![i as i64, "s"]).collect();
        let frames = encode_frames(&rows, 4).unwrap();
        assert_eq!(frames.len(), 3, "10 rows in frames of 4");
        assert_eq!(decode_frames(&frames).unwrap(), rows);
        assert!(encode_frames(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn encoding_is_canonical() {
        // Equal rows encode to equal bytes regardless of construction
        // order — shuffle-segment checksums depend on this.
        let rows = sample_rows();
        let a = ColumnBatch::from_rows(&rows).unwrap().encode_frame();
        let b = ColumnBatch::from_rows(&rows.clone())
            .unwrap()
            .encode_frame();
        assert_eq!(a, b);
    }

    #[test]
    fn xxh64_known_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }
}
