//! Rows: fixed-width tuples of [`Value`]s.

use std::fmt;

use crate::error::RelError;
use crate::value::Value;

/// A tuple of values. The layout (names and types) is described by a
/// separate [`crate::Schema`]; rows themselves carry no metadata, matching
/// how records travel through a MapReduce shuffle as raw payloads.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Creates a row from values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The values in order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of columns in the row.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at column `i`.
    ///
    /// # Errors
    ///
    /// [`RelError::ColumnOutOfBounds`] when `i` exceeds the row width.
    pub fn get(&self, i: usize) -> Result<&Value, RelError> {
        self.values.get(i).ok_or(RelError::ColumnOutOfBounds {
            index: i,
            width: self.values.len(),
        })
    }

    /// Projects the row onto the given column indices.
    #[must_use]
    pub fn project(&self, indices: &[usize]) -> Row {
        Row {
            values: indices
                .iter()
                .map(|&i| self.values.get(i).cloned().unwrap_or(Value::Null))
                .collect(),
        }
    }

    /// Concatenates two rows (join output).
    #[must_use]
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// A row of `n` NULLs — the padding side of an outer join.
    #[must_use]
    pub fn nulls(n: usize) -> Row {
        Row {
            values: vec![Value::Null; n],
        }
    }

    /// Consumes the row, returning its values.
    #[must_use]
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Byte size for simulator I/O accounting.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.values.iter().map(Value::size_bytes).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Builds a row from heterogeneous literals, e.g. `row![1, "a", 2.5]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_mixed_row() {
        let r = row![1i64, "x", 2.5f64, true];
        assert_eq!(r.len(), 4);
        assert_eq!(r.get(1).unwrap(), &Value::Str("x".into()));
    }

    #[test]
    fn out_of_bounds_get() {
        let r = row![1i64];
        assert!(matches!(
            r.get(5),
            Err(RelError::ColumnOutOfBounds { index: 5, width: 1 })
        ));
    }

    #[test]
    fn project_and_concat() {
        let r = row![1i64, 2i64, 3i64];
        let p = r.project(&[2, 0]);
        assert_eq!(p, row![3i64, 1i64]);
        let c = p.concat(&row!["z"]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn nulls_row_for_outer_join_padding() {
        let r = Row::nulls(3);
        assert!(r.values().iter().all(Value::is_null));
    }

    #[test]
    fn rows_order_lexicographically() {
        assert!(row![1i64, 2i64] < row![1i64, 3i64]);
        assert!(row![1i64] < row![1i64, 0i64]);
    }

    #[test]
    fn size_accounting_sums_values() {
        assert_eq!(row![1i64, "ab"].size_bytes(), 8 + 3);
    }

    #[test]
    fn display_row() {
        assert_eq!(row![1i64, "a"].to_string(), "[1, a]");
    }
}
