//! Aggregate functions as incremental accumulators.
//!
//! The same [`AggState`] objects are used in three places: the reduce phase
//! of an AGGREGATION job, the map-side hash-aggregation combiner that the
//! paper credits for Hive's good Q-AGG performance (footnote 2), and the
//! in-memory oracle executor. `count` and `sum` states can also *merge*
//! (combiner output → reducer input); `count(distinct)` cannot be combined
//! and is always finalised in the reducer, as in Hive.

use std::collections::HashSet;
use std::fmt;

use crate::error::RelError;
use crate::value::Value;

/// The aggregate functions of the paper's SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count(*)` / `count(col)`
    Count,
    /// `count(distinct col)`
    CountDistinct,
    /// `sum(col)`
    Sum,
    /// `avg(col)`
    Avg,
    /// `min(col)`
    Min,
    /// `max(col)`
    Max,
}

impl AggFunc {
    /// Whether the function admits a partial (combinable) form.
    ///
    /// `count(distinct)` requires the full value set at one reducer and
    /// cannot be partially aggregated map-side.
    #[must_use]
    pub fn combinable(self) -> bool {
        !matches!(self, AggFunc::CountDistinct)
    }

    /// Creates a fresh accumulator for this function.
    #[must_use]
    pub fn new_state(self) -> AggState {
        match self {
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(HashSet::new()),
            AggFunc::Sum => AggState::Sum(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count_distinct",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        f.write_str(s)
    }
}

/// A running accumulator for one aggregate function.
///
/// SQL semantics: NULL inputs are ignored by every function; an aggregate
/// over zero non-NULL inputs yields NULL, except `count`, which yields `0`.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Running count of non-NULL inputs.
    Count(i64),
    /// Distinct non-NULL inputs seen so far.
    CountDistinct(HashSet<Value>),
    /// Running sum (`None` until the first non-NULL input). Integer inputs
    /// keep an integer sum; any float input widens the sum.
    Sum(Option<Value>),
    /// Running sum and count for `avg`.
    Avg {
        /// Sum of inputs widened to float.
        sum: f64,
        /// Count of non-NULL inputs.
        count: i64,
    },
    /// Running minimum.
    Min(Option<Value>),
    /// Running maximum.
    Max(Option<Value>),
}

impl AggState {
    /// Feeds one input value into the accumulator.
    ///
    /// # Errors
    ///
    /// `Sum`/`Avg` reject non-numeric inputs with a type mismatch.
    pub fn update(&mut self, v: &Value) -> Result<(), RelError> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::CountDistinct(set) => {
                set.insert(v.clone());
            }
            AggState::Sum(acc) => {
                let next = match acc.take() {
                    None => numeric(v)?,
                    Some(cur) => cur.add(v)?,
                };
                *acc = Some(next);
            }
            AggState::Avg { sum, count } => {
                *sum += v.as_float().ok_or_else(|| type_err("avg", v))?;
                *count += 1;
            }
            AggState::Min(acc) => {
                let replace = match acc {
                    None => true,
                    Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Less),
                };
                if replace {
                    *acc = Some(v.clone());
                }
            }
            AggState::Max(acc) => {
                let replace = match acc {
                    None => true,
                    Some(cur) => v.sql_cmp(cur) == Some(std::cmp::Ordering::Greater),
                };
                if replace {
                    *acc = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Merges another accumulator of the same function into this one
    /// (combiner output arriving at a reducer).
    ///
    /// # Errors
    ///
    /// Type mismatches from `Sum`; merging accumulators of different
    /// functions is a logic error and reported as a type mismatch too.
    pub fn merge(&mut self, other: &AggState) -> Result<(), RelError> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => {
                a.extend(b.iter().cloned());
            }
            (AggState::Sum(a), AggState::Sum(b)) => {
                if let Some(bv) = b {
                    let next = match a.take() {
                        None => bv.clone(),
                        Some(av) => av.add(bv)?,
                    };
                    *a = Some(next);
                }
            }
            (AggState::Avg { sum: s1, count: c1 }, AggState::Avg { sum: s2, count: c2 }) => {
                *s1 += s2;
                *c1 += c2;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    let replace = match &*a {
                        None => true,
                        Some(av) => bv.sql_cmp(av) == Some(std::cmp::Ordering::Less),
                    };
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    let replace = match &*a {
                        None => true,
                        Some(av) => bv.sql_cmp(av) == Some(std::cmp::Ordering::Greater),
                    };
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (a, b) => {
                return Err(RelError::TypeMismatch {
                    op: "agg merge".into(),
                    lhs: format!("{a:?}"),
                    rhs: format!("{b:?}"),
                })
            }
        }
        Ok(())
    }

    /// Produces the final aggregate value.
    #[must_use]
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::Sum(acc) => acc.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
            AggState::Min(acc) | AggState::Max(acc) => acc.clone().unwrap_or(Value::Null),
        }
    }
}

fn numeric(v: &Value) -> Result<Value, RelError> {
    match v {
        Value::Int(_) | Value::Float(_) => Ok(v.clone()),
        other => Err(type_err("sum", other)),
    }
}

fn type_err(op: &str, v: &Value) -> RelError {
    RelError::TypeMismatch {
        op: op.into(),
        lhs: v.to_string(),
        rhs: "numeric".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, inputs: &[Value]) -> Value {
        let mut s = func.new_state();
        for v in inputs {
            s.update(v).unwrap();
        }
        s.finish()
    }

    #[test]
    fn count_ignores_nulls() {
        let v = run(AggFunc::Count, &[Value::Int(1), Value::Null, Value::Int(2)]);
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn count_of_empty_is_zero_not_null() {
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
    }

    #[test]
    fn sum_and_avg() {
        let xs = [Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(run(AggFunc::Sum, &xs), Value::Int(6));
        assert_eq!(run(AggFunc::Avg, &xs), Value::Float(2.0));
    }

    #[test]
    fn sum_of_empty_is_null() {
        assert!(run(AggFunc::Sum, &[]).is_null());
        assert!(run(AggFunc::Avg, &[Value::Null]).is_null());
    }

    #[test]
    fn min_max() {
        let xs = [Value::Int(5), Value::Int(1), Value::Null, Value::Int(9)];
        assert_eq!(run(AggFunc::Min, &xs), Value::Int(1));
        assert_eq!(run(AggFunc::Max, &xs), Value::Int(9));
    }

    #[test]
    fn count_distinct() {
        let xs = [
            Value::Int(1),
            Value::Int(1),
            Value::Int(2),
            Value::Null,
            Value::Int(2),
        ];
        assert_eq!(run(AggFunc::CountDistinct, &xs), Value::Int(2));
        assert!(!AggFunc::CountDistinct.combinable());
    }

    #[test]
    fn merge_equals_sequential_update() {
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let xs: Vec<Value> = (1..=10).map(Value::Int).collect();
            let mut a = func.new_state();
            let mut b = func.new_state();
            for v in &xs[..4] {
                a.update(v).unwrap();
            }
            for v in &xs[4..] {
                b.update(v).unwrap();
            }
            a.merge(&b).unwrap();
            assert_eq!(a.finish(), run(func, &xs), "func {func}");
        }
    }

    #[test]
    fn merge_distinct_sets() {
        let mut a = AggFunc::CountDistinct.new_state();
        let mut b = AggFunc::CountDistinct.new_state();
        a.update(&Value::Int(1)).unwrap();
        b.update(&Value::Int(1)).unwrap();
        b.update(&Value::Int(2)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.finish(), Value::Int(2));
    }

    #[test]
    fn merge_mismatched_states_errors() {
        let mut a = AggFunc::Count.new_state();
        let b = AggFunc::Sum.new_state();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn sum_rejects_strings() {
        let mut s = AggFunc::Sum.new_state();
        assert!(s.update(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn sum_widens_on_float() {
        let v = run(AggFunc::Sum, &[Value::Int(1), Value::Float(0.5)]);
        assert_eq!(v, Value::Float(1.5));
    }
}
