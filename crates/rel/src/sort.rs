//! Sort keys and row comparators for SORT jobs and `ORDER BY`.

use std::cmp::Ordering;

use crate::expr::Expr;
use crate::row::Row;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SortOrder {
    /// Ascending (SQL default). NULLs first, matching the total order of
    /// [`crate::Value`].
    #[default]
    Asc,
    /// Descending.
    Desc,
}

/// One `ORDER BY` item: an expression plus a direction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SortKey {
    /// Expression to sort by (usually a plain column).
    pub expr: Expr,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending sort on a column index.
    #[must_use]
    pub fn asc(col: usize) -> Self {
        SortKey {
            expr: Expr::col(col),
            order: SortOrder::Asc,
        }
    }

    /// Descending sort on a column index.
    #[must_use]
    pub fn desc(col: usize) -> Self {
        SortKey {
            expr: Expr::col(col),
            order: SortOrder::Desc,
        }
    }
}

/// Compares two rows under a list of sort keys.
///
/// Expression evaluation failures are treated as NULL (sorting never aborts
/// a job — the same forgiving behaviour as Hadoop's raw comparators).
#[must_use]
pub fn compare(keys: &[SortKey], a: &Row, b: &Row) -> Ordering {
    use crate::value::Value;
    for key in keys {
        let va = key.expr.eval(a).unwrap_or(Value::Null);
        let vb = key.expr.eval(b).unwrap_or(Value::Null);
        let ord = va.cmp(&vb);
        let ord = match key.order {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sorts rows in place under the sort keys (stable, so ties keep input
/// order — the behaviour downstream LIMIT relies on being deterministic).
pub fn sort_rows(keys: &[SortKey], rows: &mut [Row]) {
    rows.sort_by(|a, b| compare(keys, a, b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn single_key_asc_desc() {
        let mut rows = vec![row![3i64, "c"], row![1i64, "a"], row![2i64, "b"]];
        sort_rows(&[SortKey::asc(0)], &mut rows);
        assert_eq!(rows[0], row![1i64, "a"]);
        sort_rows(&[SortKey::desc(0)], &mut rows);
        assert_eq!(rows[0], row![3i64, "c"]);
    }

    #[test]
    fn multi_key() {
        let mut rows = vec![row![1i64, 2i64], row![1i64, 1i64], row![0i64, 9i64]];
        sort_rows(&[SortKey::asc(0), SortKey::desc(1)], &mut rows);
        assert_eq!(
            rows,
            vec![row![0i64, 9i64], row![1i64, 2i64], row![1i64, 1i64]]
        );
    }

    #[test]
    fn nulls_sort_first_asc() {
        use crate::value::Value;
        let mut rows = vec![row![1i64], Row::new(vec![Value::Null])];
        sort_rows(&[SortKey::asc(0)], &mut rows);
        assert!(rows[0].get(0).unwrap().is_null());
    }

    #[test]
    fn stable_on_ties() {
        let mut rows = vec![row![1i64, "first"], row![1i64, "second"]];
        sort_rows(&[SortKey::asc(0)], &mut rows);
        assert_eq!(rows[0].get(1).unwrap().as_str().unwrap(), "first");
    }

    #[test]
    fn expression_key() {
        use crate::expr::{BinOp, Expr};
        // sort by (a - b)
        let key = SortKey {
            expr: Expr::binary(BinOp::Sub, Expr::col(0), Expr::col(1)),
            order: SortOrder::Asc,
        };
        let mut rows = vec![row![10i64, 1i64], row![5i64, 4i64]];
        sort_rows(&[key], &mut rows);
        assert_eq!(rows[0], row![5i64, 4i64]);
    }
}
