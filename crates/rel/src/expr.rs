//! Resolved scalar expression IR and evaluator.
//!
//! Expressions here reference columns by *position* — name resolution
//! happens once, in the planner, against a [`crate::Schema`]. The evaluator
//! implements SQL three-valued logic: comparisons with NULL are unknown,
//! `AND`/`OR` follow Kleene logic, and a predicate only passes when it
//! evaluates to definite `true`.

use std::borrow::Cow;
use std::fmt;

use crate::error::RelError;
use crate::row::Row;
use crate::value::Value;

/// Binary operators of the paper's SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Whether this operator yields a boolean.
    #[must_use]
    pub fn is_predicate(self) -> bool {
        !matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical `NOT` (three-valued).
    Not,
    /// Arithmetic negation.
    Neg,
    /// `IS NULL`
    IsNull,
    /// `IS NOT NULL`
    IsNotNull,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Not => "NOT",
            UnOp::Neg => "-",
            UnOp::IsNull => "IS NULL",
            UnOp::IsNotNull => "IS NOT NULL",
        };
        f.write_str(s)
    }
}

/// A resolved scalar expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Input column by position.
    Column(usize),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
}

impl Expr {
    /// Column reference.
    #[must_use]
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    /// Literal.
    #[must_use]
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary expression.
    #[must_use]
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self = other`
    #[must_use]
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Eq, self, other)
    }

    /// `self AND other`
    #[must_use]
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinOp::And, self, other)
    }

    /// `self OR other`
    #[must_use]
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Or, self, other)
    }

    /// Folds a list of predicates into a conjunction; `None` for empty input.
    #[must_use]
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() {
            return None;
        } else {
            preds.remove(0)
        };
        Some(preds.into_iter().fold(first, Expr::and))
    }

    /// Evaluates the expression against a row.
    ///
    /// # Examples
    ///
    /// ```
    /// use ysmart_rel::{row, BinOp, Expr, Value};
    /// let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::lit(5i64));
    /// assert_eq!(e.eval(&row![37i64]).unwrap(), Value::Int(42));
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates type mismatches, out-of-bounds columns and division by
    /// zero from the value layer.
    pub fn eval(&self, row: &Row) -> Result<Value, RelError> {
        self.eval_cow(row).map(Cow::into_owned)
    }

    /// The borrowing evaluator behind [`Expr::eval`]: column references and
    /// literals are returned as borrows, so a comparison like `#2 = 'F'`
    /// never clones the operand strings. Only computed results are owned.
    fn eval_cow<'a>(&'a self, row: &'a Row) -> Result<Cow<'a, Value>, RelError> {
        match self {
            Expr::Column(i) => row.get(*i).map(Cow::Borrowed),
            Expr::Literal(v) => Ok(Cow::Borrowed(v)),
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.eval_cow(row)?;
                // Kleene AND/OR can short-circuit on a definite side.
                match op {
                    BinOp::And | BinOp::Or => eval_logic(*op, &l, || rhs.eval(row)).map(Cow::Owned),
                    _ => {
                        let r = rhs.eval_cow(row)?;
                        eval_binary(*op, &l, &r).map(Cow::Owned)
                    }
                }
            }
            Expr::Unary { op, operand } => {
                let v = operand.eval_cow(row)?;
                eval_unary(*op, &v).map(Cow::Owned)
            }
        }
    }

    /// Evaluates the expression as a predicate: `true` only on definite SQL
    /// `TRUE` (NULL/unknown does not pass, per SQL semantics).
    pub fn eval_predicate(&self, row: &Row) -> Result<bool, RelError> {
        Ok(self.eval_cow(row)?.as_bool().unwrap_or(false))
    }

    /// Calls `f` with every column index the expression references — how
    /// executors compute the columns a record scan actually needs.
    pub fn for_each_column(&self, f: &mut impl FnMut(usize)) {
        match self {
            Expr::Column(i) => f(*i),
            Expr::Literal(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.for_each_column(f);
                rhs.for_each_column(f);
            }
            Expr::Unary { operand, .. } => operand.for_each_column(f),
        }
    }

    /// All column indexes referenced by the expression.
    #[must_use]
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Literal(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::Unary { operand, .. } => operand.collect_columns(out),
        }
    }

    /// Replaces every column reference `#i` with `exprs[i]` — composing
    /// this expression with the projection that produced its input row.
    /// Used to fold a chain of pipe operators (`Scan → Filter → Project →
    /// …`) into a single predicate/projection over the base relation.
    #[must_use]
    pub fn substitute(&self, exprs: &[Expr]) -> Expr {
        match self {
            Expr::Column(i) => exprs.get(*i).cloned().unwrap_or(Expr::Literal(Value::Null)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.substitute(exprs)),
                rhs: Box::new(rhs.substitute(exprs)),
            },
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Box::new(operand.substitute(exprs)),
            },
        }
    }

    /// Rewrites every column index through `map` (used when predicates are
    /// pushed through projections or re-based onto a different layout).
    #[must_use]
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(map(*i)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.remap_columns(map)),
                rhs: Box::new(rhs.remap_columns(map)),
            },
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Box::new(operand.remap_columns(map)),
            },
        }
    }
}

fn eval_logic(
    op: BinOp,
    lhs: &Value,
    rhs: impl FnOnce() -> Result<Value, RelError>,
) -> Result<Value, RelError> {
    let l = lhs.as_bool();
    match (op, l) {
        (BinOp::And, Some(false)) => Ok(Value::Bool(false)),
        (BinOp::Or, Some(true)) => Ok(Value::Bool(true)),
        _ => {
            let r = rhs()?.as_bool();
            Ok(match (op, l, r) {
                (BinOp::And, Some(true), Some(b)) => Value::Bool(b),
                (BinOp::And, Some(b), Some(true)) => Value::Bool(b),
                (BinOp::And, _, Some(false)) => Value::Bool(false),
                (BinOp::Or, Some(false), Some(b)) => Value::Bool(b),
                (BinOp::Or, Some(b), Some(false)) => Value::Bool(b),
                (BinOp::Or, _, Some(true)) => Value::Bool(true),
                _ => Value::Null,
            })
        }
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, RelError> {
    use std::cmp::Ordering;
    match op {
        BinOp::Add => l.add(r),
        BinOp::Sub => l.sub(r),
        BinOp::Mul => l.mul(r),
        BinOp::Div => l.div(r),
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            Ok(match l.sql_cmp(r) {
                None => Value::Null,
                Some(ord) => Value::Bool(match op {
                    BinOp::Eq => ord == Ordering::Equal,
                    BinOp::NotEq => ord != Ordering::Equal,
                    BinOp::Lt => ord == Ordering::Less,
                    BinOp::LtEq => ord != Ordering::Greater,
                    BinOp::Gt => ord == Ordering::Greater,
                    BinOp::GtEq => ord != Ordering::Less,
                    _ => unreachable!("comparison op"),
                }),
            })
        }
        BinOp::And | BinOp::Or => eval_logic(op, l, || Ok(r.clone())),
    }
}

fn eval_unary(op: UnOp, v: &Value) -> Result<Value, RelError> {
    match op {
        UnOp::Not => Ok(match v.as_bool() {
            Some(b) => Value::Bool(!b),
            None => Value::Null,
        }),
        UnOp::Neg => Value::Int(0).sub(v),
        UnOp::IsNull => Ok(Value::Bool(v.is_null())),
        UnOp::IsNotNull => Ok(Value::Bool(!v.is_null())),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Unary { op, operand } => match op {
                UnOp::IsNull | UnOp::IsNotNull => write!(f, "({operand} {op})"),
                _ => write!(f, "({op} {operand})"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn column_and_literal() {
        let r = row![10i64, "x"];
        assert_eq!(Expr::col(0).eval(&r).unwrap(), Value::Int(10));
        assert_eq!(Expr::lit(5i64).eval(&r).unwrap(), Value::Int(5));
    }

    #[test]
    fn comparisons() {
        let r = row![10i64, 20i64];
        let e = Expr::binary(BinOp::Lt, Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let e = Expr::col(0).eq(Expr::lit(10i64));
        assert!(e.eval_predicate(&r).unwrap());
    }

    #[test]
    fn null_comparison_is_unknown_and_fails_predicate() {
        let r = Row::new(vec![Value::Null, Value::Int(1)]);
        let e = Expr::col(0).eq(Expr::col(1));
        assert!(e.eval(&r).unwrap().is_null());
        assert!(!e.eval_predicate(&r).unwrap());
    }

    #[test]
    fn kleene_and_or() {
        let r = Row::new(vec![Value::Null]);
        let t = Expr::lit(true);
        let f_ = Expr::lit(false);
        let n = Expr::col(0);
        // FALSE AND NULL = FALSE (short-circuits)
        assert_eq!(
            f_.clone().and(n.clone()).eval(&r).unwrap(),
            Value::Bool(false)
        );
        // NULL AND FALSE = FALSE
        assert_eq!(
            n.clone().and(f_.clone()).eval(&r).unwrap(),
            Value::Bool(false)
        );
        // TRUE OR NULL = TRUE
        assert_eq!(t.clone().or(n.clone()).eval(&r).unwrap(), Value::Bool(true));
        // NULL OR NULL = NULL
        assert!(n.clone().or(n.clone()).eval(&r).unwrap().is_null());
        // TRUE AND NULL = NULL
        assert!(t.and(n).eval(&r).unwrap().is_null());
    }

    #[test]
    fn not_of_null_is_null() {
        let r = Row::new(vec![Value::Null]);
        let e = Expr::Unary {
            op: UnOp::Not,
            operand: Box::new(Expr::col(0)),
        };
        assert!(e.eval(&r).unwrap().is_null());
    }

    #[test]
    fn is_null_checks() {
        let r = Row::new(vec![Value::Null, Value::Int(1)]);
        let isnull = |i| Expr::Unary {
            op: UnOp::IsNull,
            operand: Box::new(Expr::col(i)),
        };
        assert_eq!(isnull(0).eval(&r).unwrap(), Value::Bool(true));
        assert_eq!(isnull(1).eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn arithmetic_expression() {
        let r = row![6i64, 7i64];
        let e = Expr::binary(BinOp::Mul, Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(42));
        let e = Expr::binary(BinOp::Div, Expr::lit(1.0f64), Expr::lit(4i64));
        assert_eq!(e.eval(&r).unwrap(), Value::Float(0.25));
    }

    #[test]
    fn neg_unary() {
        let e = Expr::Unary {
            op: UnOp::Neg,
            operand: Box::new(Expr::lit(3i64)),
        };
        assert_eq!(e.eval(&row![0i64]).unwrap(), Value::Int(-3));
    }

    #[test]
    fn conjunction_folds() {
        assert!(Expr::conjunction(vec![]).is_none());
        let c =
            Expr::conjunction(vec![Expr::lit(true), Expr::lit(true), Expr::lit(false)]).unwrap();
        assert_eq!(c.eval(&row![0i64]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn referenced_columns_sorted_dedup() {
        let e = Expr::col(3)
            .eq(Expr::col(1))
            .and(Expr::col(3).eq(Expr::lit(1i64)));
        assert_eq!(e.referenced_columns(), vec![1, 3]);
    }

    #[test]
    fn substitute_composes_projections() {
        // row -> project [#1, #0+1] -> predicate #1 > 5 becomes #0+1 > 5.
        let proj = vec![
            Expr::col(1),
            Expr::binary(BinOp::Add, Expr::col(0), Expr::lit(1i64)),
        ];
        let pred = Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(5i64));
        let composed = pred.substitute(&proj);
        let r = row![5i64, 99i64]; // #0+1 = 6 > 5
        assert!(composed.eval_predicate(&r).unwrap());
        let r = row![4i64, 99i64]; // #0+1 = 5, not > 5
        assert!(!composed.eval_predicate(&r).unwrap());
    }

    #[test]
    fn remap_columns_rebases() {
        let e = Expr::col(2).eq(Expr::col(0));
        let m = e.remap_columns(&|i| i + 10);
        assert_eq!(m.referenced_columns(), vec![10, 12]);
    }

    #[test]
    fn display_renders_sql_ish() {
        let e = Expr::col(0).eq(Expr::lit("F"));
        assert_eq!(e.to_string(), "(#0 = 'F')");
    }

    #[test]
    fn predicate_error_propagates() {
        let e = Expr::binary(BinOp::Add, Expr::lit("a"), Expr::lit(1i64));
        assert!(e.eval(&row![0i64]).is_err());
    }
}
