//! Pipe-delimited text codec for rows.
//!
//! Raw data files in the simulated HDFS are line-oriented text, one record
//! per line with `|`-separated fields — the format of TPC-H `.tbl` files and
//! the "line (a record) in the raw data file" the common mapper of §VI-A
//! accepts. NULL is encoded as the empty field.

use crate::error::RelError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// Field separator used in data files.
pub const SEPARATOR: char = '|';

/// Encodes a row as a `|`-separated line (no trailing separator).
///
/// # Examples
///
/// ```
/// use ysmart_rel::{row, codec::encode_line};
/// assert_eq!(encode_line(&row![1i64, "x", 2.5f64]), "1|x|2.5");
/// ```
#[must_use]
pub fn encode_line(row: &Row) -> String {
    let mut out = String::new();
    for (i, v) in row.values().iter().enumerate() {
        if i > 0 {
            out.push(SEPARATOR);
        }
        match v {
            Value::Null => {}
            other => out.push_str(&other.to_string()),
        }
    }
    out
}

/// Decodes a `|`-separated line into a row, typed by `schema`.
///
/// # Errors
///
/// [`RelError::FieldCount`] when the number of fields differs from the
/// schema width; [`RelError::Decode`] when a field cannot be parsed as its
/// declared type.
pub fn decode_line(line: &str, schema: &Schema) -> Result<Row, RelError> {
    let parts: Vec<&str> = line.split(SEPARATOR).collect();
    if parts.len() != schema.len() {
        return Err(RelError::FieldCount {
            expected: schema.len(),
            found: parts.len(),
        });
    }
    let mut values = Vec::with_capacity(parts.len());
    for (text, field) in parts.iter().zip(schema.fields()) {
        values.push(decode_field(text, field.data_type)?);
    }
    Ok(Row::new(values))
}

/// Decodes one field as the given type. Empty text is NULL.
pub fn decode_field(text: &str, ty: DataType) -> Result<Value, RelError> {
    if text.is_empty() {
        return Ok(Value::Null);
    }
    let err = || RelError::Decode {
        text: text.to_string(),
        ty: ty.to_string(),
    };
    match ty {
        DataType::Bool => match text {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(err()),
        },
        DataType::Int => text.parse::<i64>().map(Value::Int).map_err(|_| err()),
        DataType::Float => text.parse::<f64>().map(Value::Float).map_err(|_| err()),
        DataType::Str => Ok(Value::Str(text.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn schema() -> Schema {
        Schema::of(
            "t",
            &[
                ("a", DataType::Int),
                ("b", DataType::Str),
                ("c", DataType::Float),
                ("d", DataType::Bool),
            ],
        )
    }

    #[test]
    fn round_trip() {
        let r = row![42i64, "hello", 3.5f64, true];
        let line = encode_line(&r);
        assert_eq!(line, "42|hello|3.5|true");
        assert_eq!(decode_line(&line, &schema()).unwrap(), r);
    }

    #[test]
    fn null_round_trip() {
        let r = Row::new(vec![
            Value::Null,
            Value::Str("x".into()),
            Value::Null,
            Value::Bool(false),
        ]);
        let line = encode_line(&r);
        assert_eq!(line, "|x||false");
        assert_eq!(decode_line(&line, &schema()).unwrap(), r);
    }

    #[test]
    fn float_whole_number_round_trip() {
        let r = Row::new(vec![
            Value::Int(1),
            Value::Str("s".into()),
            Value::Float(2.0),
            Value::Bool(true),
        ]);
        let line = encode_line(&r);
        let back = decode_line(&line, &schema()).unwrap();
        assert_eq!(back.get(2).unwrap(), &Value::Float(2.0));
    }

    #[test]
    fn wrong_field_count() {
        assert!(matches!(
            decode_line("1|2", &schema()),
            Err(RelError::FieldCount {
                expected: 4,
                found: 2
            })
        ));
    }

    #[test]
    fn bad_int() {
        assert!(matches!(
            decode_line("xx|a|1.0|true", &schema()),
            Err(RelError::Decode { .. })
        ));
    }

    #[test]
    fn bad_bool() {
        assert!(decode_field("yes", DataType::Bool).is_err());
    }
}
