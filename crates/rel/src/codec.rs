//! Pipe-delimited text codec for rows.
//!
//! Raw data files in the simulated HDFS are line-oriented text, one record
//! per line with `|`-separated fields — the format of TPC-H `.tbl` files and
//! the "line (a record) in the raw data file" the common mapper of §VI-A
//! accepts. NULL is encoded as the empty field.

use crate::error::RelError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// Field separator used in data files.
pub const SEPARATOR: char = '|';

/// Encodes a row as a `|`-separated line (no trailing separator).
///
/// # Examples
///
/// ```
/// use ysmart_rel::{row, codec::encode_line};
/// assert_eq!(encode_line(&row![1i64, "x", 2.5f64]), "1|x|2.5");
/// ```
#[must_use]
pub fn encode_line(row: &Row) -> String {
    let mut out = String::new();
    encode_line_into(row, &mut out);
    out
}

/// Appends a row's `|`-separated encoding to an existing buffer — lets
/// callers prefix a tag (or reuse an allocation) without a second pass.
pub fn encode_line_into(row: &Row, out: &mut String) {
    use std::fmt::Write as _;
    for (i, v) in row.values().iter().enumerate() {
        if i > 0 {
            out.push(SEPARATOR);
        }
        // Int/Str/Bool bypass the `Formatter` machinery; Float keeps the
        // `Display` logic so the textual form (and round-trip) is unchanged.
        match v {
            Value::Null => {}
            Value::Str(s) => out.push_str(s),
            Value::Int(n) => push_i64(out, *n),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            other @ Value::Float(_) => write!(out, "{other}").expect("write to String"),
        }
    }
}

/// Appends an `i64` in decimal without going through `core::fmt`.
fn push_i64(out: &mut String, v: i64) {
    // 20 bytes covers `-9223372036854775808`.
    let mut buf = [0u8; 20];
    let mut pos = buf.len();
    // Work in the negative domain so `i64::MIN` needs no special case.
    let mut n = if v > 0 { -v } else { v };
    loop {
        pos -= 1;
        buf[pos] = b'0' + (-(n % 10)) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    if v < 0 {
        pos -= 1;
        buf[pos] = b'-';
    }
    out.push_str(std::str::from_utf8(&buf[pos..]).expect("ascii digits"));
}

/// Decodes a `|`-separated line into a row, typed by `schema`.
///
/// # Errors
///
/// [`RelError::FieldCount`] when the number of fields differs from the
/// schema width; [`RelError::Decode`] when a field cannot be parsed as its
/// declared type.
pub fn decode_line(line: &str, schema: &Schema) -> Result<Row, RelError> {
    // Stream the split directly — no intermediate Vec<&str> per line.
    let mut fields = line.split(SEPARATOR);
    let mut values = Vec::with_capacity(schema.len());
    let field_count_err = |found: usize| RelError::FieldCount {
        expected: schema.len(),
        found,
    };
    for field in schema.fields() {
        let text = fields.next().ok_or_else(|| field_count_err(values.len()))?;
        values.push(decode_field(text, field.data_type)?);
    }
    let extra = fields.count();
    if extra > 0 {
        return Err(field_count_err(schema.len() + extra));
    }
    Ok(Row::new(values))
}

/// Decodes a line like [`decode_line`], but parses only the fields marked
/// in `needed`; the rest become NULL placeholders so the row keeps its
/// schema width (and column indices) without paying for values no operator
/// reads. The field count is still validated against the schema.
///
/// # Errors
///
/// As [`decode_line`], except parse errors in unneeded fields go
/// undetected (they are never parsed).
pub fn decode_line_projected(
    line: &str,
    schema: &Schema,
    needed: &[bool],
) -> Result<Row, RelError> {
    let mut fields = line.split(SEPARATOR);
    let mut values = Vec::with_capacity(schema.len());
    let field_count_err = |found: usize| RelError::FieldCount {
        expected: schema.len(),
        found,
    };
    for (i, field) in schema.fields().iter().enumerate() {
        let text = fields.next().ok_or_else(|| field_count_err(values.len()))?;
        values.push(if needed.get(i).copied().unwrap_or(true) {
            decode_field(text, field.data_type)?
        } else {
            Value::Null
        });
    }
    let extra = fields.count();
    if extra > 0 {
        return Err(field_count_err(schema.len() + extra));
    }
    Ok(Row::new(values))
}

/// Decodes one field as the given type. Empty text is NULL.
pub fn decode_field(text: &str, ty: DataType) -> Result<Value, RelError> {
    if text.is_empty() {
        return Ok(Value::Null);
    }
    let err = || RelError::Decode {
        text: text.to_string(),
        ty: ty.to_string(),
    };
    match ty {
        DataType::Bool => match text {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(err()),
        },
        DataType::Int => text.parse::<i64>().map(Value::Int).map_err(|_| err()),
        // Reject non-finite floats: `str::parse` happily accepts "inf" and
        // "NaN", but no valid data file contains them — corrupted bytes can
        // mutate a numeric field into one, and a NaN poisons comparisons
        // and aggregation downstream. Treat them as decode errors so the
        // bad-record machinery sees them.
        DataType::Float => text
            .parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(Value::Float)
            .ok_or_else(err),
        DataType::Str => Ok(Value::Str(text.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn schema() -> Schema {
        Schema::of(
            "t",
            &[
                ("a", DataType::Int),
                ("b", DataType::Str),
                ("c", DataType::Float),
                ("d", DataType::Bool),
            ],
        )
    }

    #[test]
    fn round_trip() {
        let r = row![42i64, "hello", 3.5f64, true];
        let line = encode_line(&r);
        assert_eq!(line, "42|hello|3.5|true");
        assert_eq!(decode_line(&line, &schema()).unwrap(), r);
    }

    #[test]
    fn null_round_trip() {
        let r = Row::new(vec![
            Value::Null,
            Value::Str("x".into()),
            Value::Null,
            Value::Bool(false),
        ]);
        let line = encode_line(&r);
        assert_eq!(line, "|x||false");
        assert_eq!(decode_line(&line, &schema()).unwrap(), r);
    }

    #[test]
    fn float_whole_number_round_trip() {
        let r = Row::new(vec![
            Value::Int(1),
            Value::Str("s".into()),
            Value::Float(2.0),
            Value::Bool(true),
        ]);
        let line = encode_line(&r);
        let back = decode_line(&line, &schema()).unwrap();
        assert_eq!(back.get(2).unwrap(), &Value::Float(2.0));
    }

    #[test]
    fn wrong_field_count() {
        assert!(matches!(
            decode_line("1|2", &schema()),
            Err(RelError::FieldCount {
                expected: 4,
                found: 2
            })
        ));
    }

    #[test]
    fn bad_int() {
        assert!(matches!(
            decode_line("xx|a|1.0|true", &schema()),
            Err(RelError::Decode { .. })
        ));
    }

    #[test]
    fn bad_bool() {
        assert!(decode_field("yes", DataType::Bool).is_err());
    }

    #[test]
    fn non_finite_floats_are_decode_errors() {
        for text in ["inf", "-inf", "infinity", "NaN", "nan", "1e999"] {
            assert!(
                decode_field(text, DataType::Float).is_err(),
                "{text:?} must not decode"
            );
        }
        assert!(decode_field("1e30", DataType::Float).is_ok());
    }

    #[test]
    fn int_encoding_extremes() {
        for n in [0i64, -1, 1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(encode_line(&row![n]), n.to_string());
        }
    }
}
