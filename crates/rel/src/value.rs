//! Dynamically-typed scalar values.
//!
//! [`Value`] is the unit of data everywhere in YSmart: rows are vectors of
//! values, MapReduce keys are vectors of values, and expression evaluation
//! produces values. SQL `NULL` is [`Value::Null`] and follows SQL comparison
//! semantics in the evaluator (any comparison with `NULL` is `NULL`), but
//! values also expose a *total* order ([`Ord`]) used for sorting and for the
//! MapReduce shuffle, where `NULL` sorts first — the same convention Hadoop
//! writables used for serialized nulls.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::RelError;

/// The SQL data types of the paper's query subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean (`true`/`false`).
    Bool,
    /// 64-bit signed integer. Also used for timestamps (seconds).
    Int,
    /// 64-bit IEEE float (SQL `DECIMAL`/`DOUBLE` stand-in).
    Float,
    /// UTF-8 string (`CHAR`/`VARCHAR` stand-in).
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (also timestamps).
    Int(i64),
    /// 64-bit float. `NaN` is never constructed by the evaluator.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Returns the value's data type, or `None` for [`Value::Null`].
    #[must_use]
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Returns `true` if the value is SQL NULL.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a boolean for predicate evaluation.
    ///
    /// SQL three-valued logic: `NULL` is "unknown" and returns `None`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as an `i64` when it is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as an `f64`, widening integers.
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as a string slice when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number of bytes this value occupies in the simulator's size
    /// accounting (used to charge disk and network I/O).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() + 1,
        }
    }

    /// SQL comparison: `NULL` compared with anything yields `None`.
    ///
    /// Numeric values compare across `Int`/`Float`; other cross-type
    /// comparisons yield an error upstream (the evaluator rejects them), so
    /// here they fall back to `None` as well.
    #[must_use]
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_float()?, b.as_float()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Addition with SQL NULL propagation and numeric widening.
    pub fn add(&self, other: &Value) -> Result<Value, RelError> {
        self.arith(other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Subtraction with SQL NULL propagation and numeric widening.
    pub fn sub(&self, other: &Value) -> Result<Value, RelError> {
        self.arith(other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Multiplication with SQL NULL propagation and numeric widening.
    pub fn mul(&self, other: &Value) -> Result<Value, RelError> {
        self.arith(other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Division. Integer division of two `Int`s stays integral (SQL
    /// convention); division by zero is an error; NULL propagates.
    pub fn div(&self, other: &Value) -> Result<Value, RelError> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(_), Value::Int(0)) => Err(RelError::DivideByZero),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a / b)),
            (a, b) => {
                let (x, y) = self.numeric_pair(a, b, "/")?;
                if y == 0.0 {
                    return Err(RelError::DivideByZero);
                }
                Ok(Value::Float(x / y))
            }
        }
    }

    fn arith(
        &self,
        other: &Value,
        op: &str,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        float_op: impl Fn(f64, f64) -> f64,
    ) -> Result<Value, RelError> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => int_op(*a, *b)
                .map(Value::Int)
                .ok_or_else(|| self.mismatch(op, other)),
            (a, b) => {
                let (x, y) = self.numeric_pair(a, b, op)?;
                Ok(Value::Float(float_op(x, y)))
            }
        }
    }

    fn numeric_pair(&self, a: &Value, b: &Value, op: &str) -> Result<(f64, f64), RelError> {
        match (a.as_float(), b.as_float()) {
            (Some(x), Some(y)) => Ok((x, y)),
            _ => Err(self.mismatch(op, b)),
        }
    }

    fn mismatch(&self, op: &str, other: &Value) -> RelError {
        RelError::TypeMismatch {
            op: op.to_string(),
            lhs: self.to_string(),
            rhs: other.to_string(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for sorting and shuffle partitioning:
    /// `Null < Bool < numeric < Str`, with `Int`/`Float` interleaved by
    /// numeric value (ties broken with `Int` first so the order is total).
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Int and Float compare (and hash) by numeric value, so
            // `Int(7) == Float(7.0)` — group-by and join keys must not
            // distinguish numerically equal values of different widths.
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                let x = self.as_float().expect("numeric");
                let y = other.as_float().expect("numeric");
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash identically when numerically equal so that
            // `Value` equality and hashing agree (Eq ⇒ same hash).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Same text as `{x:.1}`, but through the integer
                    // formatter — fixed-precision float formatting takes
                    // the exact (Dragon4) path, which dwarfs everything
                    // else when most aggregates are whole numbers.
                    if x.is_sign_negative() && *x == 0.0 {
                        f.write_str("-0.0")
                    } else {
                        write!(f, "{}.0", *x as i64)
                    }
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::Int(1), Value::Null, Value::Str("a".into())];
        vs.sort();
        assert!(vs[0].is_null());
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn eq_implies_same_hash_across_int_float() {
        let a = Value::Int(7);
        let b = Value::Float(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn arithmetic_widens() {
        assert_eq!(
            Value::Int(3).add(&Value::Float(0.5)).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(Value::Int(3).mul(&Value::Int(4)).unwrap(), Value::Int(12));
    }

    #[test]
    fn integer_division_truncates() {
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
    }

    #[test]
    fn division_by_zero_errors() {
        assert_eq!(
            Value::Int(1).div(&Value::Int(0)),
            Err(RelError::DivideByZero)
        );
        assert_eq!(
            Value::Float(1.0).div(&Value::Int(0)),
            Err(RelError::DivideByZero)
        );
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).div(&Value::Null).unwrap().is_null());
    }

    #[test]
    fn type_mismatch_in_arithmetic() {
        let e = Value::Str("a".into()).add(&Value::Int(1)).unwrap_err();
        assert!(matches!(e, RelError::TypeMismatch { .. }));
    }

    #[test]
    fn display_round_values() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Int(2).to_string(), "2");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn size_bytes_accounting() {
        assert_eq!(Value::Int(1).size_bytes(), 8);
        assert_eq!(Value::Str("abc".into()).size_bytes(), 4);
        assert_eq!(Value::Null.size_bytes(), 1);
    }

    #[test]
    fn total_order_is_transitive_over_mixed_numerics() {
        let a = Value::Int(1);
        let b = Value::Float(1.5);
        let c = Value::Int(2);
        assert!(a < b && b < c && a < c);
    }
}
