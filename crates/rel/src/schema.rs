//! Schemas: ordered lists of named, typed fields.
//!
//! Field names are *qualified* (`lineitem.l_orderkey`, `c1.ts`) so that
//! self-joins — central to the paper's Q-CSA workload — can distinguish the
//! two instances of the same table. Lookup accepts either the full qualified
//! name or the bare column name when it is unambiguous.

use std::fmt;

use crate::error::RelError;
use crate::value::DataType;

/// One named, typed column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Qualifier — usually the relation alias the column came from. Empty
    /// for computed columns without a source relation.
    pub qualifier: String,
    /// The bare column name.
    pub name: String,
    /// The column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a qualified field.
    #[must_use]
    pub fn new(qualifier: &str, name: &str, data_type: DataType) -> Self {
        Field {
            qualifier: qualifier.to_string(),
            name: name.to_string(),
            data_type,
        }
    }

    /// Creates an unqualified field (for derived/computed columns).
    #[must_use]
    pub fn unqualified(name: &str, data_type: DataType) -> Self {
        Field::new("", name, data_type)
    }

    /// The `qualifier.name` rendering, or just `name` when unqualified.
    #[must_use]
    pub fn qualified_name(&self) -> String {
        if self.qualifier.is_empty() {
            self.name.clone()
        } else {
            format!("{}.{}", self.qualifier, self.name)
        }
    }

    /// Whether a reference `[qualifier.]name` matches this field.
    #[must_use]
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        match qualifier {
            Some(q) => self.qualifier == q && self.name == name,
            None => self.name == name,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.qualified_name(), self.data_type)
    }
}

/// An ordered collection of [`Field`]s describing a row layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from a list of fields.
    #[must_use]
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs, all sharing one
    /// qualifier.
    #[must_use]
    pub fn of(qualifier: &str, cols: &[(&str, DataType)]) -> Self {
        Schema {
            fields: cols
                .iter()
                .map(|(n, t)| Field::new(qualifier, n, *t))
                .collect(),
        }
    }

    /// The fields in order.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    #[must_use]
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Resolves `[qualifier.]name` to a column index.
    ///
    /// # Errors
    ///
    /// [`RelError::UnknownColumn`] when nothing matches;
    /// [`RelError::AmbiguousColumn`] when a bare name matches several fields.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize, RelError> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if found.is_some() {
                    return Err(RelError::AmbiguousColumn(render(qualifier, name)));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| RelError::UnknownColumn(render(qualifier, name)))
    }

    /// Resolves a dotted string (`alias.col` or `col`) to a column index.
    pub fn resolve_str(&self, reference: &str) -> Result<usize, RelError> {
        match reference.split_once('.') {
            Some((q, n)) => self.resolve(Some(q), n),
            None => self.resolve(None, reference),
        }
    }

    /// Concatenates two schemas (join output layout: left columns then
    /// right columns).
    #[must_use]
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Returns a copy of the schema with every qualifier replaced, used when
    /// a subquery result is given an alias (`(...) AS inner`).
    #[must_use]
    pub fn requalified(&self, qualifier: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field::new(qualifier, &f.name, f.data_type))
                .collect(),
        }
    }

    /// Projects a subset of columns by index.
    #[must_use]
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

fn render(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::of(
            "t",
            &[
                ("a", DataType::Int),
                ("b", DataType::Str),
                ("c", DataType::Float),
            ],
        )
    }

    #[test]
    fn resolve_bare_and_qualified() {
        let s = sample();
        assert_eq!(s.resolve(None, "b").unwrap(), 1);
        assert_eq!(s.resolve(Some("t"), "c").unwrap(), 2);
        assert_eq!(s.resolve_str("t.a").unwrap(), 0);
        assert_eq!(s.resolve_str("a").unwrap(), 0);
    }

    #[test]
    fn unknown_column() {
        let e = sample().resolve(None, "zz").unwrap_err();
        assert_eq!(e, RelError::UnknownColumn("zz".into()));
    }

    #[test]
    fn ambiguity_across_self_join() {
        let s = Schema::of("c1", &[("uid", DataType::Int)])
            .concat(&Schema::of("c2", &[("uid", DataType::Int)]));
        assert!(matches!(
            s.resolve(None, "uid"),
            Err(RelError::AmbiguousColumn(_))
        ));
        assert_eq!(s.resolve(Some("c2"), "uid").unwrap(), 1);
    }

    #[test]
    fn requalify_for_subquery_alias() {
        let s = sample().requalified("inner");
        assert_eq!(s.field(0).qualifier, "inner");
        assert_eq!(s.resolve(Some("inner"), "a").unwrap(), 0);
    }

    #[test]
    fn concat_preserves_order() {
        let s = sample().concat(&Schema::of("u", &[("d", DataType::Int)]));
        assert_eq!(s.len(), 4);
        assert_eq!(s.field(3).qualified_name(), "u.d");
    }

    #[test]
    fn project_subset() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.field(0).name, "c");
        assert_eq!(s.field(1).name, "a");
    }

    #[test]
    fn display_format() {
        let s = Schema::of("t", &[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(t.a: INT)");
    }
}
