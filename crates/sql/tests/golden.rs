//! Golden tests: every workload query of the paper parses, renders back to
//! SQL, and re-parses to an identical AST (Display/parse round-trip), and
//! selected plans render to stable shapes.

use ysmart_sql::parse;

/// All the SQL texts the evaluation uses, inlined (the queries crate
/// depends on this one, so the texts are duplicated here as goldens — a
/// divergence in either place fails a test somewhere).
const GOLDENS: &[(&str, &str)] = &[
    (
        "q-agg",
        "SELECT cid, count(*) AS clicks FROM clicks GROUP BY cid",
    ),
    (
        "q-csa",
        "SELECT avg(pageview_count) FROM
        (SELECT c.uid, mp.ts1, (count(*) - 2) AS pageview_count
         FROM clicks AS c,
              (SELECT uid, max(ts1) AS ts1, ts2
               FROM (SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
                     FROM clicks AS c1, clicks AS c2
                     WHERE c1.uid = c2.uid AND c1.ts < c2.ts
                       AND c1.cid = 1 AND c2.cid = 2
                     GROUP BY c1.uid, c1.ts) AS cp
               GROUP BY uid, ts2) AS mp
         WHERE c.uid = mp.uid AND c.ts >= mp.ts1 AND c.ts <= mp.ts2
         GROUP BY c.uid, mp.ts1) AS pageview_counts",
    ),
    (
        "q17",
        "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
         FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
               FROM lineitem GROUP BY l_partkey) AS inner_t,
              (SELECT l_partkey, l_quantity, l_extendedprice
               FROM lineitem, part
               WHERE p_partkey = l_partkey) AS outer_t
         WHERE outer_t.l_partkey = inner_t.l_partkey
           AND outer_t.l_quantity < inner_t.t1",
    ),
    (
        "q21-subtree",
        "SELECT sq12.l_suppkey FROM
            (SELECT sq1.l_orderkey, sq1.l_suppkey FROM
                (SELECT l_suppkey, l_orderkey FROM lineitem, orders
                 WHERE o_orderkey = l_orderkey
                   AND l_receiptdate > l_commitdate
                   AND o_orderstatus = 'F') AS sq1,
                (SELECT l_orderkey, count(distinct l_suppkey) AS cs,
                        max(l_suppkey) AS ms
                 FROM lineitem GROUP BY l_orderkey) AS sq2
             WHERE sq1.l_orderkey = sq2.l_orderkey
               AND ((sq2.cs > 1) OR ((sq2.cs = 1) AND (sq1.l_suppkey <> sq2.ms)))
            ) AS sq12
            LEFT OUTER JOIN
            (SELECT l_orderkey, count(distinct l_suppkey) AS cs,
                    max(l_suppkey) AS ms
             FROM lineitem WHERE l_receiptdate > l_commitdate
             GROUP BY l_orderkey) AS sq3
            ON sq12.l_orderkey = sq3.l_orderkey
            WHERE (sq3.cs IS NULL) OR ((sq3.cs = 1) AND (sq12.l_suppkey = sq3.ms))",
    ),
];

#[test]
fn workload_queries_round_trip_through_display() {
    for (name, sql) in GOLDENS {
        let q1 = parse(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rendered = q1.to_string();
        let q2 = parse(&rendered)
            .unwrap_or_else(|e| panic!("{name}: re-parse of `{rendered}` failed: {e}"));
        assert_eq!(q1, q2, "{name}: round-trip changed the AST");
    }
}

#[test]
fn whitespace_and_case_insensitive() {
    let a = parse("select A, Count(*) from T group by a").unwrap();
    let b = parse("SELECT a,count(*)\n\tFROM t\nGROUP  BY a").unwrap();
    assert_eq!(a, b);
}

#[test]
fn comments_anywhere() {
    let q = parse("SELECT a -- project a\nFROM t -- the table\nWHERE a > 1 -- filter").unwrap();
    assert!(q.where_clause.is_some());
}

#[test]
fn error_messages_name_the_offender() {
    let e = parse("SELECT a FROM t WHERE a ><").unwrap_err();
    assert!(e.to_string().contains("expected"), "{e}");
    let e = parse("SELECT FROM t").unwrap_err();
    assert!(e.column >= 8, "{e}");
    let e = parse("SELECT a FROM (SELECT b FROM t)").unwrap_err();
    assert!(e.to_string().contains("alias"), "{e}");
}

#[test]
fn deeply_nested_subqueries() {
    let mut sql = "SELECT a FROM t".to_string();
    for i in 0..12 {
        sql = format!("SELECT a FROM ({sql}) AS s{i}");
    }
    assert!(parse(&sql).is_ok());
}

#[test]
fn large_in_list() {
    let items: Vec<String> = (0..200).map(|i| i.to_string()).collect();
    let sql = format!("SELECT a FROM t WHERE a IN ({})", items.join(", "));
    let q = parse(&sql).unwrap();
    // Desugars to a 200-way OR chain.
    assert!(q.where_clause.unwrap().to_string().matches(" OR ").count() == 199);
}
