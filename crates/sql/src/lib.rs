//! # ysmart-sql — SQL front-end
//!
//! Lexer, recursive-descent parser and AST for the SQL subset the paper
//! targets (§IV): selection, projection, aggregation (with or without
//! grouping, including `count(distinct …)` and `HAVING`), sorting, and
//! equi-joins (inner and left/right/full outer), plus subqueries in `FROM`
//! — the form produced by flattening nested TPC-H queries with the
//! first-aggregation-then-join algorithm the paper uses.
//!
//! The parser is deliberately independent of the relational layer: it
//! resolves nothing, producing a purely syntactic [`ast::Query`]. Name
//! resolution and typing happen in `ysmart-plan`.
//!
//! ```
//! use ysmart_sql::parse;
//! let q = parse("SELECT cid, count(*) FROM clicks GROUP BY cid").unwrap();
//! assert_eq!(q.group_by.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{
    AstExpr, FromItem, Join, JoinType, Literal, Query, SelectItem, TableRef, TableSource,
};
pub use error::ParseError;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::Parser;

/// Parses a single SQL query.
///
/// # Errors
///
/// Returns [`ParseError`] with the byte offset of the offending token.
pub fn parse(sql: &str) -> Result<Query, ParseError> {
    Parser::new(sql)?.parse_query_eof()
}
