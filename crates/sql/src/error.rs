//! Parse errors with source positions.

use std::fmt;

/// A lexing or parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the source text where the error was detected.
    pub offset: usize,
    /// 1-based line number of the error.
    pub line: usize,
    /// 1-based column number of the error.
    pub column: usize,
}

impl ParseError {
    /// Creates an error at a byte offset, computing line/column from the
    /// source text.
    #[must_use]
    pub fn at(source: &str, offset: usize, message: impl Into<String>) -> Self {
        let clamped = offset.min(source.len());
        let prefix = &source[..clamped];
        let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = prefix.rfind('\n').map_or(clamped + 1, |nl| clamped - nl);
        ParseError {
            message: message.into(),
            offset,
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_column_computed() {
        let src = "SELECT a\nFROM t\nWHERE ???";
        let off = src.find("???").unwrap();
        let e = ParseError::at(src, off, "unexpected `?`");
        assert_eq!(e.line, 3);
        assert_eq!(e.column, 7);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn offset_past_end_is_clamped() {
        let e = ParseError::at("ab", 99, "eof");
        assert_eq!(e.line, 1);
        assert_eq!(e.column, 3);
    }
}
