//! Recursive-descent SQL parser.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT [DISTINCT] select_list FROM from_list
//!               [WHERE expr] [GROUP BY expr_list] [HAVING expr]
//!               [ORDER BY order_list] [LIMIT int]
//! select_list:= '*' | select_item (',' select_item)*
//! select_item:= expr [[AS] ident]
//! from_list  := from_item (',' from_item)*
//! from_item  := table_ref (join_clause)*
//! table_ref  := ident [[AS] ident] | '(' query ')' [AS] ident
//! join_clause:= [INNER | LEFT [OUTER] | RIGHT [OUTER] | FULL [OUTER]]
//!               JOIN table_ref ON expr
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | cmp_expr
//! cmp_expr   := add_expr [(= | <> | < | <= | > | >=) add_expr]
//!             | add_expr IS [NOT] NULL
//!             | add_expr [NOT] BETWEEN add_expr AND add_expr
//!             | add_expr [NOT] IN '(' expr (',' expr)* ')'
//! add_expr   := mul_expr (('+'|'-') mul_expr)*
//! mul_expr   := unary (('*'|'/') unary)*
//! unary      := '-' unary | primary
//! primary    := literal | agg_call | column | '(' expr ')'
//! agg_call   := (count|sum|avg|min|max) '(' ('*' | [DISTINCT] expr) ')'
//! column     := ident ['.' ident]
//! ```

use crate::ast::{
    AstAggFunc, AstBinOp, AstExpr, FromItem, Join, JoinType, Literal, Query, SelectItem, TableRef,
    TableSource,
};
use crate::error::ParseError;
use crate::lexer::{Lexer, Token, TokenKind};

/// The recursive-descent parser. Usually invoked through [`crate::parse`].
#[derive(Debug)]
pub struct Parser {
    src: String,
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lexes `src` and prepares a parser over its tokens.
    ///
    /// # Errors
    ///
    /// Propagates lexer errors.
    pub fn new(src: &str) -> Result<Self, ParseError> {
        let tokens = Lexer::new(src).tokenize()?;
        Ok(Parser {
            src: src.to_string(),
            tokens,
            pos: 0,
        })
    }

    /// Parses one query and requires the rest of the input to be empty
    /// (a trailing semicolon is allowed).
    ///
    /// # Errors
    ///
    /// Any syntax error, or trailing tokens after the query.
    pub fn parse_query_eof(mut self) -> Result<Query, ParseError> {
        let q = self.parse_query()?;
        if self.peek_kind() == &TokenKind::Semicolon {
            self.advance();
        }
        if self.peek_kind() != &TokenKind::Eof {
            return Err(self.unexpected("end of input"));
        }
        Ok(q)
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let select = self.parse_select_list()?;
        self.expect_kw("from")?;
        let from = self.parse_from_list()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            self.parse_expr_list()?
        } else {
            Vec::new()
        };
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            self.parse_order_list()?
        } else {
            Vec::new()
        };
        let limit = if self.eat_kw("limit") {
            match self.peek_kind().clone() {
                TokenKind::Int(n) if n >= 0 => {
                    self.advance();
                    Some(n as u64)
                }
                _ => return Err(self.unexpected("a non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            distinct,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            if self.peek_kind() == &TokenKind::Star {
                self.advance();
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = self.parse_alias()?;
                items.push(SelectItem::Expr { expr, alias });
            }
            if self.peek_kind() == &TokenKind::Comma {
                self.advance();
            } else {
                return Ok(items);
            }
        }
    }

    /// `[AS] ident` — an alias after a select item or table reference. Bare
    /// identifiers that are clause keywords are not treated as aliases.
    fn parse_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw("as") {
            return Ok(Some(self.expect_ident()?));
        }
        if let TokenKind::Ident(name) = self.peek_kind() {
            if !is_clause_keyword(name) {
                let name = name.clone();
                self.advance();
                return Ok(Some(name));
            }
        }
        Ok(None)
    }

    fn parse_from_list(&mut self) -> Result<Vec<FromItem>, ParseError> {
        let mut items = vec![self.parse_from_item()?];
        while self.peek_kind() == &TokenKind::Comma {
            self.advance();
            items.push(self.parse_from_item()?);
        }
        Ok(items)
    }

    fn parse_from_item(&mut self) -> Result<FromItem, ParseError> {
        let base = self.parse_table_ref()?;
        let mut joins = Vec::new();
        while let Some(join_type) = self.parse_join_type()? {
            let table = self.parse_table_ref()?;
            self.expect_kw("on")?;
            let on = self.parse_expr()?;
            joins.push(Join {
                join_type,
                table,
                on,
            });
        }
        Ok(FromItem { base, joins })
    }

    fn parse_join_type(&mut self) -> Result<Option<JoinType>, ParseError> {
        let jt = if self.eat_kw("inner") {
            self.expect_kw("join")?;
            JoinType::Inner
        } else if self.eat_kw("left") {
            self.eat_kw("outer");
            self.expect_kw("join")?;
            JoinType::LeftOuter
        } else if self.eat_kw("right") {
            self.eat_kw("outer");
            self.expect_kw("join")?;
            JoinType::RightOuter
        } else if self.eat_kw("full") {
            self.eat_kw("outer");
            self.expect_kw("join")?;
            JoinType::FullOuter
        } else if self.eat_kw("join") {
            JoinType::Inner
        } else {
            return Ok(None);
        };
        Ok(Some(jt))
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        if self.peek_kind() == &TokenKind::LParen {
            self.advance();
            let q = self.parse_query()?;
            self.expect(TokenKind::RParen)?;
            let alias = self.parse_alias()?;
            let Some(alias) = alias else {
                return Err(self.error_here("a subquery in FROM requires an alias"));
            };
            return Ok(TableRef {
                source: TableSource::Subquery(Box::new(q)),
                alias: Some(alias),
            });
        }
        let name = self.expect_ident()?;
        let alias = self.parse_alias()?;
        Ok(TableRef {
            source: TableSource::Table(name),
            alias,
        })
    }

    fn parse_expr_list(&mut self) -> Result<Vec<AstExpr>, ParseError> {
        let mut out = vec![self.parse_expr()?];
        while self.peek_kind() == &TokenKind::Comma {
            self.advance();
            out.push(self.parse_expr()?);
        }
        Ok(out)
    }

    fn parse_order_list(&mut self) -> Result<Vec<(AstExpr, bool)>, ParseError> {
        let mut out = Vec::new();
        loop {
            let e = self.parse_expr()?;
            let asc = if self.eat_kw("desc") {
                false
            } else {
                self.eat_kw("asc");
                true
            };
            out.push((e, asc));
            if self.peek_kind() == &TokenKind::Comma {
                self.advance();
            } else {
                return Ok(out);
            }
        }
    }

    /// Entry point for expressions (public so tests and tools can parse
    /// standalone predicates).
    pub fn parse_expr(&mut self) -> Result<AstExpr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("or") {
            let rhs = self.parse_and()?;
            lhs = bin(AstBinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("and") {
            let rhs = self.parse_not()?;
            lhs = bin(AstBinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<AstExpr, ParseError> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            return Ok(AstExpr::Not(Box::new(inner)));
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<AstExpr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => AstBinOp::Eq,
            TokenKind::NotEq => AstBinOp::NotEq,
            TokenKind::Lt => AstBinOp::Lt,
            TokenKind::LtEq => AstBinOp::LtEq,
            TokenKind::Gt => AstBinOp::Gt,
            TokenKind::GtEq => AstBinOp::GtEq,
            TokenKind::Ident(kw) if kw == "is" => {
                self.advance();
                let negated = self.eat_kw("not");
                self.expect_kw("null")?;
                return Ok(if negated {
                    AstExpr::IsNotNull(Box::new(lhs))
                } else {
                    AstExpr::IsNull(Box::new(lhs))
                });
            }
            // `x BETWEEN a AND b` and `x IN (v, …)` desugar during parsing
            // (TPC-H's original Q17/Q19 forms use both); `NOT` prefixes
            // negate the desugared predicate.
            TokenKind::Ident(kw) if kw == "between" => {
                self.advance();
                return self.parse_between_tail(lhs, false);
            }
            TokenKind::Ident(kw) if kw == "in" => {
                self.advance();
                return self.parse_in_tail(lhs, false);
            }
            TokenKind::Ident(kw) if kw == "not" => {
                // lookahead for NOT BETWEEN / NOT IN
                match self.peek_kind_at(1) {
                    Some(TokenKind::Ident(next)) if next == "between" => {
                        self.advance();
                        self.advance();
                        return self.parse_between_tail(lhs, true);
                    }
                    Some(TokenKind::Ident(next)) if next == "in" => {
                        self.advance();
                        self.advance();
                        return self.parse_in_tail(lhs, true);
                    }
                    _ => return Ok(lhs),
                }
            }
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.parse_add()?;
        Ok(bin(op, lhs, rhs))
    }

    /// Desugars `lhs BETWEEN lo AND hi` into `lhs >= lo AND lhs <= hi`.
    fn parse_between_tail(&mut self, lhs: AstExpr, negated: bool) -> Result<AstExpr, ParseError> {
        let lo = self.parse_add()?;
        self.expect_kw("and")?;
        let hi = self.parse_add()?;
        let both = bin(
            AstBinOp::And,
            bin(AstBinOp::GtEq, lhs.clone(), lo),
            bin(AstBinOp::LtEq, lhs, hi),
        );
        Ok(if negated {
            AstExpr::Not(Box::new(both))
        } else {
            both
        })
    }

    /// Desugars `lhs IN (a, b, …)` into `lhs = a OR lhs = b OR …`.
    fn parse_in_tail(&mut self, lhs: AstExpr, negated: bool) -> Result<AstExpr, ParseError> {
        self.expect(TokenKind::LParen)?;
        let mut out: Option<AstExpr> = None;
        loop {
            let item = self.parse_expr()?;
            let eq = bin(AstBinOp::Eq, lhs.clone(), item);
            out = Some(match out {
                None => eq,
                Some(acc) => bin(AstBinOp::Or, acc, eq),
            });
            match self.peek_kind() {
                TokenKind::Comma => self.advance(),
                _ => break,
            }
        }
        self.expect(TokenKind::RParen)?;
        let e = out.expect("IN list has at least one item");
        Ok(if negated {
            AstExpr::Not(Box::new(e))
        } else {
            e
        })
    }

    fn parse_add(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => AstBinOp::Add,
                TokenKind::Minus => AstBinOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.parse_mul()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn parse_mul(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => AstBinOp::Mul,
                TokenKind::Slash => AstBinOp::Div,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn parse_unary(&mut self) -> Result<AstExpr, ParseError> {
        if self.peek_kind() == &TokenKind::Minus {
            self.advance();
            let inner = self.parse_unary()?;
            return Ok(AstExpr::Neg(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstExpr, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(AstExpr::Literal(Literal::Int(i)))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(AstExpr::Literal(Literal::Float(x)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(AstExpr::Literal(Literal::Str(s)))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name == "null" {
                    self.advance();
                    return Ok(AstExpr::Literal(Literal::Null));
                }
                // Aggregate call?
                if let Some(func) = AstAggFunc::from_name(&name) {
                    if self.peek_kind_at(1) == Some(&TokenKind::LParen) {
                        self.advance(); // name
                        self.advance(); // (
                        return self.parse_agg_tail(func);
                    }
                }
                self.advance();
                if self.peek_kind() == &TokenKind::Dot {
                    self.advance();
                    let col = self.expect_ident()?;
                    Ok(AstExpr::Column {
                        qualifier: Some(name),
                        name: col,
                    })
                } else {
                    Ok(AstExpr::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_agg_tail(&mut self, func: AstAggFunc) -> Result<AstExpr, ParseError> {
        if self.peek_kind() == &TokenKind::Star {
            self.advance();
            self.expect(TokenKind::RParen)?;
            if func != AstAggFunc::Count {
                return Err(self.error_here("only count(*) may take `*`"));
            }
            return Ok(AstExpr::Agg {
                func,
                distinct: false,
                arg: None,
            });
        }
        let distinct = self.eat_kw("distinct");
        if distinct && func != AstAggFunc::Count {
            return Err(self.error_here("DISTINCT is only supported with count()"));
        }
        let arg = self.parse_expr()?;
        self.expect(TokenKind::RParen)?;
        Ok(AstExpr::Agg {
            func,
            distinct,
            arg: Some(Box::new(arg)),
        })
    }

    // --- token helpers -----------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_kind_at(&self, ahead: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + ahead).map(|t| &t.kind)
    }

    fn advance(&mut self) {
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword `{}`", kw.to_ascii_uppercase())))
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.peek_kind() == &kind {
            self.advance();
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{kind}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek_kind() {
            TokenKind::Ident(s) if !is_clause_keyword(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        let tok = self.peek();
        ParseError::at(
            &self.src,
            tok.offset,
            format!("expected {wanted}, found {}", tok.kind),
        )
    }

    fn error_here(&self, message: &str) -> ParseError {
        ParseError::at(&self.src, self.peek().offset, message)
    }
}

fn bin(op: AstBinOp, lhs: AstExpr, rhs: AstExpr) -> AstExpr {
    AstExpr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

/// Keywords that terminate an implicit alias position. A bare identifier in
/// alias position is an alias unless it is one of these.
fn is_clause_keyword(word: &str) -> bool {
    matches!(
        word,
        "select"
            | "from"
            | "where"
            | "group"
            | "by"
            | "having"
            | "order"
            | "limit"
            | "join"
            | "inner"
            | "left"
            | "right"
            | "full"
            | "outer"
            | "on"
            | "and"
            | "or"
            | "not"
            | "as"
            | "is"
            | "null"
            | "between"
            | "in"
            | "distinct"
            | "asc"
            | "desc"
            | "union"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn minimal_select() {
        let q = parse("SELECT a FROM t").unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.from.len(), 1);
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn select_star() {
        let q = parse("SELECT * FROM t").unwrap();
        assert_eq!(q.select, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn aliases_with_and_without_as() {
        let q = parse("SELECT a AS x, b y FROM t u").unwrap();
        match &q.select[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("x")),
            SelectItem::Wildcard => panic!(),
        }
        match &q.select[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("y")),
            SelectItem::Wildcard => panic!(),
        }
        assert_eq!(q.from[0].base.alias.as_deref(), Some("u"));
    }

    #[test]
    fn comma_join_with_where() {
        let q = parse(
            "SELECT c1.uid FROM clicks AS c1, clicks AS c2 \
             WHERE c1.uid = c2.uid AND c1.ts < c2.ts",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        let w = q.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn explicit_joins_all_kinds() {
        for (sql, jt) in [
            ("JOIN", JoinType::Inner),
            ("INNER JOIN", JoinType::Inner),
            ("LEFT JOIN", JoinType::LeftOuter),
            ("LEFT OUTER JOIN", JoinType::LeftOuter),
            ("RIGHT OUTER JOIN", JoinType::RightOuter),
            ("FULL OUTER JOIN", JoinType::FullOuter),
        ] {
            let q = parse(&format!("SELECT a FROM t {sql} u ON t.k = u.k")).unwrap();
            assert_eq!(q.from[0].joins[0].join_type, jt, "{sql}");
        }
    }

    #[test]
    fn subquery_in_from_requires_alias() {
        assert!(parse("SELECT a FROM (SELECT b FROM t)").is_err());
        let q = parse("SELECT a FROM (SELECT b FROM t) AS s").unwrap();
        match &q.from[0].base.source {
            TableSource::Subquery(inner) => assert_eq!(inner.from.len(), 1),
            TableSource::Table(_) => panic!("expected subquery"),
        }
    }

    #[test]
    fn group_by_having_order_limit() {
        let q = parse(
            "SELECT cid, count(*) AS n FROM clicks GROUP BY cid \
             HAVING count(*) > 10 ORDER BY n DESC, cid LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].1, "DESC");
        assert!(q.order_by[1].1, "default ASC");
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn count_distinct() {
        let q = parse("SELECT count(distinct l_suppkey) FROM lineitem").unwrap();
        match &q.select[0] {
            SelectItem::Expr { expr, .. } => match expr {
                AstExpr::Agg { distinct, .. } => assert!(distinct),
                other => panic!("unexpected {other:?}"),
            },
            SelectItem::Wildcard => panic!(),
        }
    }

    #[test]
    fn distinct_only_with_count() {
        assert!(parse("SELECT sum(distinct x) FROM t").is_err());
    }

    #[test]
    fn star_only_with_count() {
        assert!(parse("SELECT max(*) FROM t").is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("SELECT a + b * c FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.select[0] else {
            panic!()
        };
        // + at the root, * nested
        match expr {
            AstExpr::Binary { op, rhs, .. } => {
                assert_eq!(*op, AstBinOp::Add);
                assert!(matches!(
                    rhs.as_ref(),
                    AstExpr::Binary {
                        op: AstBinOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap();
        match q.where_clause.unwrap() {
            AstExpr::Binary { op, .. } => assert_eq!(op, AstBinOp::Or),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn is_null_and_is_not_null() {
        let q = parse("SELECT a FROM t WHERE (b IS NULL) OR (c IS NOT NULL)").unwrap();
        let w = q.where_clause.unwrap();
        assert!(w.to_string().contains("IS NULL"));
        assert!(w.to_string().contains("IS NOT NULL"));
    }

    #[test]
    fn not_and_negation() {
        let q = parse("SELECT a FROM t WHERE NOT (a = -1)").unwrap();
        assert!(matches!(q.where_clause.unwrap(), AstExpr::Not(_)));
    }

    #[test]
    fn expression_aliases_with_computation() {
        let q = parse("SELECT (count(*) - 2) AS pageview_count FROM t GROUP BY uid").unwrap();
        let SelectItem::Expr { expr, alias } = &q.select[0] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("pageview_count"));
        assert!(expr.contains_aggregate());
    }

    #[test]
    fn q_csa_parses() {
        // The paper's Fig. 1 query, verbatim modulo whitespace.
        let sql = "SELECT avg(pageview_count) FROM
            (SELECT c.uid, mp.ts1, (count(*)-2) AS pageview_count
             FROM clicks AS c,
                  (SELECT uid, max(ts1) AS ts1, ts2
                   FROM (SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
                         FROM clicks AS c1, clicks AS c2
                         WHERE c1.uid = c2.uid AND c1.ts < c2.ts
                           AND c1.cid = 10 AND c2.cid = 20
                         GROUP BY c1.uid, c1.ts) AS cp
                   GROUP BY uid, ts2) AS mp
             WHERE c.uid = mp.uid AND c.ts >= mp.ts1 AND c.ts <= mp.ts2
             GROUP BY c.uid, mp.ts1) AS pageview_counts";
        let q = parse(sql).unwrap();
        assert_eq!(q.from.len(), 1);
    }

    #[test]
    fn q17_parses() {
        let sql = "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
            FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
                  FROM lineitem GROUP BY l_partkey) AS inner_t,
                 (SELECT l_partkey, l_quantity, l_extendedprice
                  FROM lineitem, part
                  WHERE p_partkey = l_partkey) AS outer_t
            WHERE outer_t.l_partkey = inner_t.l_partkey
              AND outer_t.l_quantity < inner_t.t1";
        let q = parse(sql).unwrap();
        assert_eq!(q.from.len(), 2);
    }

    #[test]
    fn q21_subtree_parses() {
        // Appendix code of the paper (with the missing commas of the listing
        // repaired).
        let sql = "SELECT sq12.l_suppkey FROM
            (SELECT sq1.l_orderkey, sq1.l_suppkey FROM
                (SELECT l_suppkey, l_orderkey FROM lineitem, orders
                 WHERE o_orderkey = l_orderkey
                   AND l_receiptdate > l_commitdate
                   AND o_orderstatus = 'F') AS sq1,
                (SELECT l_orderkey, count(distinct l_suppkey) AS cs,
                        max(l_suppkey) AS ms
                 FROM lineitem GROUP BY l_orderkey) AS sq2
             WHERE sq1.l_orderkey = sq2.l_orderkey
               AND ((sq2.cs > 1) OR ((sq2.cs = 1) AND (sq1.l_suppkey <> sq2.ms)))
            ) AS sq12
            LEFT OUTER JOIN
            (SELECT l_orderkey, count(distinct l_suppkey) AS cs,
                    max(l_suppkey) AS ms
             FROM lineitem WHERE l_receiptdate > l_commitdate
             GROUP BY l_orderkey) AS sq3
            ON sq12.l_orderkey = sq3.l_orderkey
            WHERE (sq3.cs IS NULL) OR ((sq3.cs = 1) AND (sq12.l_suppkey = sq3.ms))";
        let q = parse(sql).unwrap();
        assert_eq!(q.from[0].joins.len(), 1);
        assert_eq!(q.from[0].joins[0].join_type, JoinType::LeftOuter);
    }

    #[test]
    fn display_round_trip_reparses() {
        let sql = "SELECT a, count(*) AS n FROM t AS x JOIN u ON x.k = u.k \
                   WHERE x.v > 3 GROUP BY a HAVING count(*) > 1 ORDER BY n DESC LIMIT 7";
        let q1 = parse(sql).unwrap();
        let q2 = parse(&q1.to_string()).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn trailing_semicolon_ok_trailing_garbage_not() {
        assert!(parse("SELECT a FROM t;").is_ok());
        let e = parse("SELECT a FROM t garbage extra").unwrap_err();
        assert!(e.to_string().contains("expected"));
    }

    #[test]
    fn error_position_points_at_token() {
        let e = parse("SELECT FROM t").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.column >= 8);
    }

    #[test]
    fn between_desugars() {
        let q = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5").unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "((a >= 1) AND (a <= 5))");
        let q = parse("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5").unwrap();
        assert!(matches!(q.where_clause.unwrap(), AstExpr::Not(_)));
    }

    #[test]
    fn in_list_desugars() {
        let q = parse("SELECT a FROM t WHERE a IN (1, 2, 3)").unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "(((a = 1) OR (a = 2)) OR (a = 3))");
        let q = parse("SELECT a FROM t WHERE b NOT IN ('x', 'y')").unwrap();
        assert!(matches!(q.where_clause.unwrap(), AstExpr::Not(_)));
    }

    #[test]
    fn between_binds_tighter_than_and() {
        let q = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b = 2").unwrap();
        let w = q.where_clause.unwrap();
        // top-level AND with the desugared BETWEEN on the left
        assert_eq!(w.conjuncts().len(), 3);
    }

    #[test]
    fn not_prefix_still_works() {
        let q = parse("SELECT a FROM t WHERE NOT a = 1 AND NOT (b IN (2))").unwrap();
        assert_eq!(q.where_clause.unwrap().conjuncts().len(), 2);
    }

    #[test]
    fn nested_parens_in_predicates() {
        let q = parse("SELECT a FROM t WHERE ((a = 1) AND ((b = 2) OR (c = 3)))").unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn keyword_not_taken_as_alias() {
        let q = parse("SELECT a FROM t WHERE a = 1").unwrap();
        assert!(q.from[0].base.alias.is_none());
    }
}
