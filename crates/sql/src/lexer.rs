//! SQL lexer.
//!
//! Produces a flat token stream. Keywords are case-insensitive; identifiers
//! are lower-cased (SQL's unquoted-identifier folding), string literals keep
//! their exact contents. Comments (`-- …` to end of line) are skipped.

use std::fmt;

use crate::error::ParseError;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (already lower-cased). Keywords are
    /// distinguished by the parser via [`Token::is_kw`].
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (contents between quotes, `''` unescaped to `'`).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::NotEq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

impl Token {
    /// Whether this token is the given keyword (case-insensitive match was
    /// already done by lower-casing in the lexer).
    #[must_use]
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s == kw)
    }
}

/// Tokenises SQL text.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    #[must_use]
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the whole input into a token vector ending with
    /// [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Unterminated strings and unexpected characters produce a
    /// [`ParseError`] at the offending offset.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments();
            let start = self.pos;
            let Some(&b) = self.bytes.get(self.pos) else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    offset: start,
                });
                return Ok(out);
            };
            let kind = match b {
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b',' => self.single(TokenKind::Comma),
                b'.' if !self.peek_digit(1) => self.single(TokenKind::Dot),
                b';' => self.single(TokenKind::Semicolon),
                b'*' => self.single(TokenKind::Star),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'/' => self.single(TokenKind::Slash),
                b'=' => self.single(TokenKind::Eq),
                b'<' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => self.single(TokenKind::LtEq),
                        Some(b'>') => self.single(TokenKind::NotEq),
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => self.single(TokenKind::GtEq),
                        _ => TokenKind::Gt,
                    }
                }
                b'!' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => self.single(TokenKind::NotEq),
                        _ => {
                            return Err(ParseError::at(self.src, start, "expected `!=`"));
                        }
                    }
                }
                b'\'' => self.lex_string(start)?,
                b'0'..=b'9' => self.lex_number(start)?,
                b'.' => self.lex_number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                other => {
                    return Err(ParseError::at(
                        self.src,
                        start,
                        format!("unexpected character `{}`", other as char),
                    ));
                }
            };
            out.push(Token {
                kind,
                offset: start,
            });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn peek_digit(&self, ahead: usize) -> bool {
        self.bytes
            .get(self.pos + ahead)
            .is_some_and(u8::is_ascii_digit)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(u8::is_ascii_whitespace)
            {
                self.pos += 1;
            }
            if self.bytes.get(self.pos) == Some(&b'-')
                && self.bytes.get(self.pos + 1) == Some(&b'-')
            {
                while self.bytes.get(self.pos).is_some_and(|&b| b != b'\n') {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn lex_string(&mut self, start: usize) -> Result<TokenKind, ParseError> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(ParseError::at(self.src, start, "unterminated string")),
                Some(b'\'') => {
                    if self.bytes.get(self.pos + 1) == Some(&b'\'') {
                        s.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(TokenKind::Str(s));
                    }
                }
                Some(&b) => {
                    s.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<TokenKind, ParseError> {
        let mut saw_dot = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && self.peek_digit(1) => {
                    saw_dot = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if saw_dot {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| ParseError::at(self.src, start, "invalid float literal"))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| ParseError::at(self.src, start, "integer literal out of range"))
        }
    }

    fn lex_ident(&mut self, start: usize) -> TokenKind {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        TokenKind::Ident(self.src[start..self.pos].to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_fold_case() {
        let ks = kinds("SELECT Foo FROM bar");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("foo".into()),
                TokenKind::Ident("from".into()),
                TokenKind::Ident("bar".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        let ks = kinds("a <= b <> c >= d != e < f > g = h");
        assert!(ks.contains(&TokenKind::LtEq));
        assert_eq!(
            ks.iter().filter(|k| **k == TokenKind::NotEq).count(),
            2,
            "both <> and != lex as NotEq"
        );
        assert!(ks.contains(&TokenKind::GtEq));
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(
            kinds("42 0.2 7.0"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(0.2),
                TokenKind::Float(7.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn qualified_name_lexes_as_ident_dot_ident() {
        assert_eq!(
            kinds("c1.uid"),
            vec![
                TokenKind::Ident("c1".into()),
                TokenKind::Dot,
                TokenKind::Ident("uid".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_with_escaped_quote() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let e = Lexer::new("'oops").tokenize().unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("a -- comment here\n b");
        assert_eq!(ks.len(), 3);
    }

    #[test]
    fn leading_dot_float_literal() {
        // `.7` is a float literal; a bare `.` (qualified name) stays a Dot.
        assert_eq!(kinds(".7"), vec![TokenKind::Float(0.7), TokenKind::Eof]);
        assert_eq!(
            kinds("t.c"),
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Dot,
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unexpected_character() {
        let e = Lexer::new("select @").tokenize().unwrap_err();
        assert!(e.message.contains("unexpected character"));
        assert_eq!(e.offset, 7);
    }

    #[test]
    fn offsets_recorded() {
        let toks = Lexer::new("ab cd").tokenize().unwrap();
        assert_eq!(toks[1].offset, 3);
    }
}
