//! The abstract syntax tree produced by the parser.
//!
//! Everything here is purely syntactic: column references are unresolved
//! `[qualifier.]name` pairs, aggregate calls are ordinary nodes, and `FROM`
//! items may be base tables or parenthesised subqueries with aliases.
//! `Display` implementations render the AST back to SQL text, which the
//! tests use for round-trip checks.

use std::fmt;

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `NULL`
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            // Whole floats keep their decimal point so the rendered SQL
            // re-parses as a float (`7.0`, not `7`).
            Literal::Float(x) if x.fract() == 0.0 && x.abs() < 1e15 => {
                write!(f, "{x:.1}")
            }
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

/// Binary operators (syntactic; precedence already applied by the parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for AstBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AstBinOp::Eq => "=",
            AstBinOp::NotEq => "<>",
            AstBinOp::Lt => "<",
            AstBinOp::LtEq => "<=",
            AstBinOp::Gt => ">",
            AstBinOp::GtEq => ">=",
            AstBinOp::And => "AND",
            AstBinOp::Or => "OR",
            AstBinOp::Add => "+",
            AstBinOp::Sub => "-",
            AstBinOp::Mul => "*",
            AstBinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Aggregate function names of the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstAggFunc {
    /// `count`
    Count,
    /// `sum`
    Sum,
    /// `avg`
    Avg,
    /// `min`
    Min,
    /// `max`
    Max,
}

impl AstAggFunc {
    /// Parses a (lower-case) function name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "count" => AstAggFunc::Count,
            "sum" => AstAggFunc::Sum,
            "avg" => AstAggFunc::Avg,
            "min" => AstAggFunc::Min,
            "max" => AstAggFunc::Max,
            _ => return None,
        })
    }
}

impl fmt::Display for AstAggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AstAggFunc::Count => "count",
            AstAggFunc::Sum => "sum",
            AstAggFunc::Avg => "avg",
            AstAggFunc::Min => "min",
            AstAggFunc::Max => "max",
        };
        f.write_str(s)
    }
}

/// A scalar (or aggregate) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `[qualifier.]name`
    Column {
        /// Optional relation qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal constant.
    Literal(Literal),
    /// Binary operation.
    Binary {
        /// Operator.
        op: AstBinOp,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
    },
    /// `NOT expr`
    Not(Box<AstExpr>),
    /// `- expr`
    Neg(Box<AstExpr>),
    /// `expr IS NULL`
    IsNull(Box<AstExpr>),
    /// `expr IS NOT NULL`
    IsNotNull(Box<AstExpr>),
    /// Aggregate call, e.g. `count(*)`, `count(distinct x)`, `sum(a*b)`.
    Agg {
        /// The function.
        func: AstAggFunc,
        /// `DISTINCT` modifier (only meaningful for `count`).
        distinct: bool,
        /// Argument; `None` is `count(*)`.
        arg: Option<Box<AstExpr>>,
    },
}

impl AstExpr {
    /// Unqualified column reference.
    #[must_use]
    pub fn col(name: &str) -> AstExpr {
        AstExpr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Qualified column reference.
    #[must_use]
    pub fn qcol(qualifier: &str, name: &str) -> AstExpr {
        AstExpr::Column {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        }
    }

    /// Whether the expression contains an aggregate call anywhere.
    #[must_use]
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::Agg { .. } => true,
            AstExpr::Column { .. } | AstExpr::Literal(_) => false,
            AstExpr::Binary { lhs, rhs, .. } => {
                lhs.contains_aggregate() || rhs.contains_aggregate()
            }
            AstExpr::Not(e) | AstExpr::Neg(e) | AstExpr::IsNull(e) | AstExpr::IsNotNull(e) => {
                e.contains_aggregate()
            }
        }
    }

    /// Splits a predicate on top-level `AND`s into its conjuncts.
    #[must_use]
    pub fn conjuncts(&self) -> Vec<&AstExpr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a AstExpr, out: &mut Vec<&'a AstExpr>) {
            match e {
                AstExpr::Binary {
                    op: AstBinOp::And,
                    lhs,
                    rhs,
                } => {
                    walk(lhs, out);
                    walk(rhs, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => f.write_str(name),
            },
            AstExpr::Literal(l) => write!(f, "{l}"),
            AstExpr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            AstExpr::Not(e) => write!(f, "(NOT {e})"),
            AstExpr::Neg(e) => write!(f, "(-{e})"),
            AstExpr::IsNull(e) => write!(f, "({e} IS NULL)"),
            AstExpr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            AstExpr::Agg {
                func,
                distinct,
                arg,
            } => match arg {
                None => write!(f, "{func}(*)"),
                Some(a) if *distinct => write!(f, "{func}(DISTINCT {a})"),
                Some(a) => write!(f, "{func}({a})"),
            },
        }
    }
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: AstExpr,
        /// Optional output name.
        alias: Option<String>,
    },
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

/// The source of a `FROM` item: a base table or a subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// A named base table.
    Table(String),
    /// A parenthesised subquery.
    Subquery(Box<Query>),
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Base table or subquery.
    pub source: TableSource,
    /// `AS alias`. Required for subqueries by the parser.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference binds in scope: the alias when present, else
    /// the base-table name.
    #[must_use]
    pub fn binding(&self) -> &str {
        if let Some(a) = &self.alias {
            return a;
        }
        match &self.source {
            TableSource::Table(t) => t,
            TableSource::Subquery(_) => "", // parser enforces alias presence
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.source {
            TableSource::Table(t) => f.write_str(t)?,
            TableSource::Subquery(q) => write!(f, "({q})")?,
        }
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

/// Join kinds of the supported subset (equi-joins; §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    LeftOuter,
    /// `RIGHT [OUTER] JOIN`
    RightOuter,
    /// `FULL [OUTER] JOIN`
    FullOuter,
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinType::Inner => "JOIN",
            JoinType::LeftOuter => "LEFT OUTER JOIN",
            JoinType::RightOuter => "RIGHT OUTER JOIN",
            JoinType::FullOuter => "FULL OUTER JOIN",
        };
        f.write_str(s)
    }
}

/// An explicit `JOIN … ON …` clause chained onto a `FROM` item.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join kind.
    pub join_type: JoinType,
    /// Right-hand table reference.
    pub table: TableRef,
    /// The `ON` condition.
    pub on: AstExpr,
}

/// One comma-separated item of the `FROM` clause: a base reference plus any
/// chained explicit joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The leading table reference.
    pub base: TableRef,
    /// Chained `JOIN` clauses, in source order.
    pub joins: Vec<Join>,
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for j in &self.joins {
            write!(f, " {} {} ON {}", j.join_type, j.table, j.on)?;
        }
        Ok(())
    }
}

/// A full `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The `SELECT` list.
    pub select: Vec<SelectItem>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Comma-separated `FROM` items.
    pub from: Vec<FromItem>,
    /// `WHERE` predicate.
    pub where_clause: Option<AstExpr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<AstExpr>,
    /// `HAVING` predicate.
    pub having: Option<AstExpr>,
    /// `ORDER BY` items; `true` = ascending.
    pub order_by: Vec<(AstExpr, bool)>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        f.write_str(" FROM ")?;
        for (i, item) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, (e, asc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}{}", if *asc { "" } else { " DESC" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_split_on_and_only() {
        let e = AstExpr::Binary {
            op: AstBinOp::And,
            lhs: Box::new(AstExpr::col("a")),
            rhs: Box::new(AstExpr::Binary {
                op: AstBinOp::Or,
                lhs: Box::new(AstExpr::col("b")),
                rhs: Box::new(AstExpr::col("c")),
            }),
        };
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], &AstExpr::col("a"));
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let e = AstExpr::Binary {
            op: AstBinOp::Sub,
            lhs: Box::new(AstExpr::Agg {
                func: AstAggFunc::Count,
                distinct: false,
                arg: None,
            }),
            rhs: Box::new(AstExpr::Literal(Literal::Int(2))),
        };
        assert!(e.contains_aggregate());
        assert!(!AstExpr::col("x").contains_aggregate());
    }

    #[test]
    fn display_agg_variants() {
        let c = AstExpr::Agg {
            func: AstAggFunc::Count,
            distinct: true,
            arg: Some(Box::new(AstExpr::col("s"))),
        };
        assert_eq!(c.to_string(), "count(DISTINCT s)");
    }

    #[test]
    fn binding_prefers_alias() {
        let t = TableRef {
            source: TableSource::Table("clicks".into()),
            alias: Some("c1".into()),
        };
        assert_eq!(t.binding(), "c1");
        let t2 = TableRef {
            source: TableSource::Table("clicks".into()),
            alias: None,
        };
        assert_eq!(t2.binding(), "clicks");
    }

    #[test]
    fn string_literal_display_escapes() {
        assert_eq!(Literal::Str("a'b".into()).to_string(), "'a''b'");
    }
}
