//! Property-based tests of the MapReduce engine's invariants: determinism,
//! partitioning correctness, and result-preservation under every cost-model
//! configuration.

use proptest::prelude::*;
use ysmart_mapred::hash::partition;
use ysmart_mapred::{
    run_chain, run_job, Cluster, ClusterConfig, Combiner, Compression, FailureModel, JobChain,
    JobSpec, MapOutput, Mapper, NodeFailureModel, ReduceOutput, Reducer, RetryPolicy,
};
use ysmart_rel::{row, Row};

struct KvMapper;
impl Mapper for KvMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let (k, v) = line.split_once('|').unwrap();
        out.emit(
            row![k.parse::<i64>().unwrap()],
            row![v.parse::<i64>().unwrap()],
        );
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
        let s: i64 = values
            .iter()
            .map(|v| v.get(0).unwrap().as_int().unwrap())
            .sum();
        out.emit_line(format!("{}|{}", key.get(0).unwrap(), s));
    }
}

struct SumCombiner;
impl Combiner for SumCombiner {
    fn combine(&mut self, _key: &Row, values: &[Row]) -> Vec<Row> {
        let s: i64 = values
            .iter()
            .map(|v| v.get(0).unwrap().as_int().unwrap())
            .sum();
        vec![row![s]]
    }
}

fn sum_job(reducers: usize, combiner: bool) -> JobSpec {
    let mut b = JobSpec::builder("sum")
        .input("data/t", || Box::new(KvMapper))
        .reducer(|| Box::new(SumReducer))
        .output("out/sum")
        .reduce_tasks(reducers);
    if combiner {
        b = b.combiner(|| Box::new(SumCombiner));
    }
    b.build()
}

fn run_sum(
    pairs: &[(i64, i64)],
    config: ClusterConfig,
    reducers: usize,
    comb: bool,
) -> Vec<String> {
    let mut c = Cluster::new(config);
    c.load_table("t", pairs.iter().map(|(k, v)| format!("{k}|{v}")).collect());
    run_job(&mut c, &sum_job(reducers, comb)).unwrap();
    let mut lines = c.hdfs.get("out/sum").unwrap().lines.clone();
    lines.sort();
    lines
}

/// As [`run_sum`] but through the chain runner, so injected faults that
/// kill whole job attempts are recovered by the retry policy.
fn run_sum_chain(pairs: &[(i64, i64)], config: ClusterConfig) -> Vec<String> {
    let mut c = Cluster::new(config);
    c.load_table("t", pairs.iter().map(|(k, v)| format!("{k}|{v}")).collect());
    let mut chain = JobChain::new();
    chain.push(sum_job(3, true));
    run_chain(&mut c, &chain).unwrap();
    let mut lines = c.hdfs.get("out/sum").unwrap().lines.clone();
    lines.sort();
    lines
}

fn expected_sums(pairs: &[(i64, i64)]) -> Vec<String> {
    let mut m = std::collections::BTreeMap::new();
    for (k, v) in pairs {
        *m.entry(*k).or_insert(0i64) += v;
    }
    let mut lines: Vec<String> = m.into_iter().map(|(k, s)| format!("{k}|{s}")).collect();
    lines.sort();
    lines
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Equal keys always land on the same reducer, and the reducer index is
    /// in range for any reducer count.
    #[test]
    fn partition_consistent_and_bounded(k in any::<i64>(), n in 1usize..64) {
        let a = partition(&row![k], n);
        let b = partition(&row![k], n);
        prop_assert_eq!(a, b);
        prop_assert!(a < n);
    }

    /// The sum job computes exact per-key sums for any input, any reducer
    /// count, with or without a combiner.
    #[test]
    fn sum_job_correct_for_any_input(
        pairs in prop::collection::vec((-20i64..20, -100i64..100), 1..200),
        reducers in 1usize..9,
        comb in any::<bool>(),
    ) {
        let got = run_sum(&pairs, ClusterConfig::default(), reducers, comb);
        prop_assert_eq!(got, expected_sums(&pairs));
    }

    /// Cost-model knobs never affect results: compression, task failures,
    /// node deaths, block size, multipliers. Faults run through the chain
    /// runner so attempts killed outright are retried with fresh draws.
    #[test]
    fn cost_model_never_changes_results(
        pairs in prop::collection::vec((-10i64..10, -50i64..50), 1..100),
        block_kb in 1u32..64,
        mult in 1.0f64..1e6,
        failures in any::<bool>(),
        node_failures in any::<bool>(),
        compress in any::<bool>(),
    ) {
        let base = run_sum(&pairs, ClusterConfig::default(), 3, true);
        let cfg = ClusterConfig {
            hdfs_block_mb: f64::from(block_kb) / 1024.0,
            size_multiplier: mult,
            compression: compress.then(Compression::default),
            failures: failures.then_some(FailureModel { probability: 0.3, seed: 11 }),
            node_failures: node_failures
                .then_some(NodeFailureModel { probability: 0.3, seed: 13 }),
            retry: Some(RetryPolicy {
                max_retries: 16,
                backoff_base_s: 1.0,
                backoff_factor: 2.0,
                ..RetryPolicy::default()
            }),
            ..ClusterConfig::default()
        };
        let got = run_sum_chain(&pairs, cfg);
        prop_assert_eq!(got, base);
    }

    /// Simulated time is monotone in data volume.
    #[test]
    fn time_monotone_in_multiplier(
        pairs in prop::collection::vec((0i64..10, 0i64..50), 10..100),
        mult in 2.0f64..1e5,
    ) {
        let time = |m: f64| {
            let mut c = Cluster::new(ClusterConfig {
                size_multiplier: m,
                ..ClusterConfig::default()
            });
            c.load_table("t", pairs.iter().map(|(k, v)| format!("{k}|{v}")).collect());
            run_job(&mut c, &sum_job(2, false)).unwrap().total_s()
        };
        prop_assert!(time(mult) >= time(1.0));
    }

    /// A combiner never increases shuffle volume.
    #[test]
    fn combiner_never_increases_shuffle(
        pairs in prop::collection::vec((0i64..5, 0i64..50), 1..150),
    ) {
        let run = |comb: bool| {
            let mut c = Cluster::new(ClusterConfig::default());
            c.load_table("t", pairs.iter().map(|(k, v)| format!("{k}|{v}")).collect());
            run_job(&mut c, &sum_job(2, comb)).unwrap().shuffle_bytes
        };
        prop_assert!(run(true) <= run(false));
    }

    /// The per-node disk accounting stays exactly reconciled with
    /// `total_bytes()` across arbitrary put/replace/delete cycles — the
    /// invariant cache eviction relies on. Puts reuse a small path space so
    /// replacement (the historical drift bug) happens constantly.
    #[test]
    fn hdfs_node_accounting_reconciles(
        nodes in 1usize..8,
        ops in prop::collection::vec((0u8..3, 0u8..12, 0usize..40), 1..120),
    ) {
        let mut fs = ysmart_mapred::Hdfs::with_nodes(nodes);
        for (op, slot, size) in ops {
            let path = format!("p/{slot}");
            match op {
                0 => fs.put(&path, (0..size).map(|i| format!("line-{i}")).collect()),
                1 => fs.delete(&path),
                _ => fs.put_data(
                    &path,
                    ysmart_mapred::DataFile {
                        lines: (0..size).map(|i| format!("r{i}")).collect(),
                        frames: Vec::new(),
                    },
                ),
            }
            prop_assert!(fs.accounting_reconciled());
            prop_assert_eq!(
                fs.node_used_bytes().iter().sum::<u64>(),
                fs.total_bytes()
            );
        }
    }
}
