//! Fault-tolerance integration tests: node-loss injection, retry with
//! backoff, and checkpointed chain recovery. The load-bearing invariant
//! throughout: injected faults change *simulated time*, never results.

use ysmart_mapred::{
    run_chain, run_job, Cluster, ClusterConfig, JobChain, JobSpec, MapOutput, MapRedError, Mapper,
    NodeFailureModel, ReduceOutput, Reducer, RetryPolicy, StragglerModel,
};
use ysmart_rel::{row, Row};

struct KvMapper;
impl Mapper for KvMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let (k, v) = line.split_once('|').unwrap();
        out.emit(
            row![k.parse::<i64>().unwrap()],
            row![v.parse::<i64>().unwrap()],
        );
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
        let s: i64 = values
            .iter()
            .map(|v| v.get(0).unwrap().as_int().unwrap())
            .sum();
        out.emit_line(format!("{}|{}", key.get(0).unwrap(), s));
    }
}

fn sum_job(name: &str, input: &str, output: &str) -> JobSpec {
    JobSpec::builder(name)
        .input(input, || Box::new(KvMapper))
        .reducer(|| Box::new(SumReducer))
        .output(output)
        .reduce_tasks(3)
        .build()
}

fn load(c: &mut Cluster) {
    let lines: Vec<String> = (0..500).map(|i| format!("{}|1", i % 20)).collect();
    c.load_table("t", lines);
}

fn sorted_output(c: &Cluster, path: &str) -> Vec<String> {
    let mut lines = c.hdfs.get(path).unwrap().lines.clone();
    lines.sort();
    lines
}

/// Small blocks so jobs have enough map tasks to spread over nodes.
fn many_task_config() -> ClusterConfig {
    ClusterConfig {
        nodes: 8,
        hdfs_block_mb: 0.0003, // ~300 real bytes per split
        ..ClusterConfig::default()
    }
}

#[test]
fn node_loss_charges_recovery_but_preserves_results() {
    let mut clean = Cluster::new(many_task_config());
    load(&mut clean);
    let clean_m = run_job(&mut clean, &sum_job("sum", "data/t", "out/sum")).unwrap();
    let expected = sorted_output(&clean, "out/sum");

    // Seeds are deterministic; scan a few to find an injection that kills
    // at least one (but not every) node during this job.
    let mut observed_loss = false;
    for seed in 0..30u64 {
        let mut c = Cluster::new(ClusterConfig {
            node_failures: Some(NodeFailureModel {
                probability: 0.3,
                seed,
            }),
            ..many_task_config()
        });
        load(&mut c);
        let m = run_job(&mut c, &sum_job("sum", "data/t", "out/sum")).unwrap();
        assert_eq!(sorted_output(&c, "out/sum"), expected, "seed {seed}");
        if m.nodes_lost > 0 {
            observed_loss = true;
            assert!(m.reexecuted_tasks > 0, "lost nodes must lose tasks");
            assert!(m.wasted_s > 0.0, "re-executed work must be wasted work");
            assert!(
                m.map_time_s > clean_m.map_time_s,
                "re-execution on fewer slots must cost time: {} vs {}",
                m.map_time_s,
                clean_m.map_time_s
            );
        }
    }
    assert!(
        observed_loss,
        "p=0.3 over 8 nodes × 30 seeds must kill some"
    );
}

#[test]
fn recovery_fields_zero_without_injection() {
    let mut c = Cluster::new(many_task_config());
    load(&mut c);
    let mut chain = JobChain::new();
    chain.push(sum_job("sum", "data/t", "out/sum"));
    let outcome = run_chain(&mut c, &chain).unwrap();
    let m = &outcome.metrics.jobs[0];
    assert_eq!(m.nodes_lost, 0);
    assert_eq!(m.reexecuted_tasks, 0);
    assert_eq!(m.wasted_s, 0.0);
    assert_eq!(m.attempt, 0);
    assert_eq!(outcome.metrics.retries, 0);
    assert_eq!(outcome.metrics.backoff_delay_s, 0.0);
    assert_eq!(outcome.metrics.failed_attempt_s, 0.0);
    assert_eq!(outcome.metrics.recovery_s(), 0.0);
}

#[test]
fn cluster_lost_fails_without_retry_and_recovers_with() {
    // One node, high death probability: many attempts lose the cluster.
    let faulty = |retry: Option<RetryPolicy>, seed: u64| ClusterConfig {
        nodes: 1,
        node_failures: Some(NodeFailureModel {
            probability: 0.7,
            seed,
        }),
        retry,
        ..ClusterConfig::default()
    };

    let mut failed_without_retry = false;
    let mut recovered_with_retry = false;
    for seed in 0..20u64 {
        let mut c = Cluster::new(faulty(None, seed));
        load(&mut c);
        let mut chain = JobChain::new();
        chain.push(sum_job("sum", "data/t", "out/sum"));
        let bare = run_chain(&mut c, &chain);
        if let Err(e) = &bare {
            assert!(matches!(e.error, MapRedError::ClusterLost { .. }));
            failed_without_retry = true;

            // The same injection under a retry policy must recover and
            // charge the recovery.
            let mut c2 = Cluster::new(faulty(
                Some(RetryPolicy {
                    max_retries: 24,
                    backoff_base_s: 10.0,
                    backoff_factor: 2.0,
                    ..RetryPolicy::default()
                }),
                seed,
            ));
            load(&mut c2);
            let mut chain2 = JobChain::new();
            chain2.push(sum_job("sum", "data/t", "out/sum"));
            let outcome = run_chain(&mut c2, &chain2).unwrap();
            assert_eq!(
                sorted_output(&c2, "out/sum"),
                sorted_output_of_clean(),
                "seed {seed}"
            );
            assert!(outcome.metrics.retries > 0);
            assert!(outcome.metrics.backoff_delay_s >= 10.0);
            assert!(outcome.metrics.failed_attempt_s > 0.0);
            assert!(outcome.metrics.jobs[0].attempt > 0);
            assert!(outcome.metrics.recovery_s() > 0.0);
            recovered_with_retry = true;
        }
    }
    assert!(
        failed_without_retry,
        "p=0.7 on 1 node must sometimes lose it"
    );
    assert!(recovered_with_retry);
}

fn sorted_output_of_clean() -> Vec<String> {
    let mut c = Cluster::new(ClusterConfig::default());
    load(&mut c);
    run_job(&mut c, &sum_job("sum", "data/t", "out/sum")).unwrap();
    sorted_output(&c, "out/sum")
}

#[test]
fn checkpointed_recovery_resumes_from_failed_job() {
    // Two chained jobs; find a seed where the chain retried *some* job but
    // the first job's successful attempt was its first try — proof the
    // chain resumed from the checkpoint instead of restarting job 1.
    let chain = || {
        let mut ch = JobChain::new();
        ch.push(sum_job("stage1", "data/t", "tmp/mid"));
        ch.push(sum_job("stage2", "tmp/mid", "out/final"));
        ch
    };
    let mut clean = Cluster::new(ClusterConfig::default());
    load(&mut clean);
    run_chain(&mut clean, &chain()).unwrap();
    let expected = sorted_output(&clean, "out/final");

    let mut saw_second_stage_retry = false;
    for seed in 0..60u64 {
        let mut c = Cluster::new(ClusterConfig {
            nodes: 1,
            node_failures: Some(NodeFailureModel {
                probability: 0.5,
                seed,
            }),
            retry: Some(RetryPolicy {
                max_retries: 24,
                backoff_base_s: 5.0,
                backoff_factor: 2.0,
                ..RetryPolicy::default()
            }),
            ..ClusterConfig::default()
        });
        load(&mut c);
        let outcome = run_chain(&mut c, &chain()).unwrap();
        assert_eq!(sorted_output(&c, "out/final"), expected, "seed {seed}");
        let [first, second] = &outcome.metrics.jobs[..] else {
            panic!("two jobs expected");
        };
        if first.attempt == 0 && second.attempt > 0 {
            // Job 1 succeeded once and was never re-run; job 2 failed and
            // recovered from job 1's checkpointed output in HDFS.
            assert!(outcome.metrics.retries > 0);
            assert!(outcome.metrics.backoff_delay_s > 0.0);
            saw_second_stage_retry = true;
        }
    }
    assert!(
        saw_second_stage_retry,
        "60 seeds at p=0.5 must retry stage2 after a clean stage1"
    );
}

#[test]
fn retries_are_bounded_by_the_policy() {
    // Certain death: every attempt loses the only node, so the chain must
    // give up after exactly max_retries retries.
    let mut c = Cluster::new(ClusterConfig {
        nodes: 1,
        node_failures: Some(NodeFailureModel {
            probability: 1.0,
            seed: 1,
        }),
        retry: Some(RetryPolicy {
            max_retries: 3,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
            ..RetryPolicy::default()
        }),
        ..ClusterConfig::default()
    });
    load(&mut c);
    let mut chain = JobChain::new();
    chain.push(sum_job("sum", "data/t", "out/sum"));
    let e = run_chain(&mut c, &chain).unwrap_err();
    assert!(matches!(e.error, MapRedError::ClusterLost { .. }));
}

#[test]
fn speculative_backups_charge_slot_seconds_not_wall_clock() {
    let run = |speculative: bool| {
        let mut c = Cluster::new(ClusterConfig {
            hdfs_block_mb: 0.0003,
            stragglers: Some(StragglerModel {
                probability: 0.4,
                slowdown: 8.0,
                speculative,
                seed: 5,
            }),
            ..ClusterConfig::default()
        });
        load(&mut c);
        run_job(&mut c, &sum_job("sum", "data/t", "out/sum")).unwrap()
    };
    let rescued = run(true);
    let unrescued = run(false);
    assert!(
        rescued.speculative_tasks > 0,
        "p=0.4 must sample stragglers"
    );
    assert!(
        rescued.speculative_slot_s > 0.0,
        "backups must cost the cluster slot-seconds"
    );
    assert_eq!(unrescued.speculative_slot_s, 0.0);
    assert!(
        rescued.map_time_s + rescued.reduce_time_s < unrescued.map_time_s + unrescued.reduce_time_s,
        "rescue must beat unrescued stragglers on wall clock"
    );
}

#[test]
fn disk_full_reports_per_node_load() {
    let mut c = Cluster::new(ClusterConfig {
        nodes: 4,
        disk_capacity_mb: 0.000001, // ~1 byte per node
        ..ClusterConfig::default()
    });
    load(&mut c);
    let e = run_job(&mut c, &sum_job("sum", "data/t", "out/sum")).unwrap_err();
    let MapRedError::DiskFull {
        nodes,
        per_node_bytes,
        capacity_bytes,
    } = e
    else {
        panic!("expected DiskFull, got {e:?}");
    };
    assert_eq!(nodes, 4, "must report the modelled spread, not a fake node");
    assert!(per_node_bytes > capacity_bytes);
}

#[test]
fn disk_full_is_retryable_and_gives_up_after_backoff() {
    // DiskFull is deterministic across attempts, so retrying burns the
    // policy's budget and surfaces the original error — with the backoff
    // charged to the chain's clock (visible through the time limit).
    let mut c = Cluster::new(ClusterConfig {
        disk_capacity_mb: 0.000001,
        retry: Some(RetryPolicy::default()),
        ..ClusterConfig::default()
    });
    load(&mut c);
    let mut chain = JobChain::new();
    chain.push(sum_job("sum", "data/t", "out/sum"));
    let e = run_chain(&mut c, &chain).unwrap_err();
    assert!(matches!(e.error, MapRedError::DiskFull { .. }));
}

#[test]
fn non_retryable_error_fails_fast_despite_retry_policy() {
    // Stage 2 reads a path nothing wrote: NoSuchFile is permanent, so even
    // a generous retry policy must not burn a single retry on it — and the
    // failure must still carry stage 1's metrics.
    let mut c = Cluster::new(ClusterConfig {
        retry: Some(RetryPolicy {
            max_retries: 24,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
            ..RetryPolicy::default()
        }),
        ..ClusterConfig::default()
    });
    load(&mut c);
    let mut chain = JobChain::new();
    chain.push(sum_job("stage1", "data/t", "tmp/mid"));
    chain.push(sum_job("stage2", "tmp/nowhere", "out/final"));
    let e = run_chain(&mut c, &chain).unwrap_err();
    assert!(matches!(e.error, MapRedError::NoSuchFile(_)));
    assert_eq!(e.metrics.retries, 0, "permanent errors must not retry");
    assert_eq!(e.metrics.backoff_delay_s, 0.0);
    assert_eq!(e.metrics.jobs.len(), 1, "stage 1 completed and is reported");
    assert_eq!(e.metrics.jobs[0].name, "stage1");
    assert!(e.metrics.jobs[0].total_s() > 0.0);
}

#[test]
fn retryable_error_without_policy_surfaces_unchanged() {
    // Certain cluster loss with retry disabled: the raw error comes
    // straight through, with no retry bookkeeping invented around it.
    let mut c = Cluster::new(ClusterConfig {
        nodes: 1,
        node_failures: Some(NodeFailureModel {
            probability: 1.0,
            seed: 9,
        }),
        retry: None,
        ..ClusterConfig::default()
    });
    load(&mut c);
    let mut chain = JobChain::new();
    chain.push(sum_job("sum", "data/t", "out/sum"));
    let e = run_chain(&mut c, &chain).unwrap_err();
    let MapRedError::ClusterLost { job, nodes } = &e.error else {
        panic!("expected ClusterLost, got {:?}", e.error);
    };
    assert_eq!((job.as_str(), *nodes), ("sum", 1));
    assert_eq!(e.metrics.retries, 0);
    assert_eq!(e.metrics.backoff_delay_s, 0.0);
    assert!(e.metrics.jobs.is_empty(), "no job completed");
    assert!(
        e.metrics.failed_attempt_s > 0.0,
        "the dead attempt's burned time is still reported"
    );
}

#[test]
fn corrupt_block_is_retryable_and_recovers_under_policy() {
    use ysmart_mapred::CorruptionModel;
    // Moderate block rate on 2 replicas: over ~9 blocks some seed loses
    // every replica of some block on the first attempt (~0.25² per block),
    // yet a retry drawing fresh corruption (the block is re-replicated)
    // still succeeds most of the time, so a capped retry budget recovers
    // with identical results.
    let expected = sorted_output_of_clean();
    let mut recovered = false;
    for seed in 0..40u64 {
        let bare = ClusterConfig {
            hdfs_block_mb: 0.0003,
            replication: 2,
            corruption: Some(CorruptionModel {
                block_rate: 0.25,
                segment_rate: 0.0,
                record_rate: 0.0,
                seed,
            }),
            ..ClusterConfig::default()
        };
        let mut c = Cluster::new(bare.clone());
        load(&mut c);
        let mut chain = JobChain::new();
        chain.push(sum_job("sum", "data/t", "out/sum"));
        let Err(e) = run_chain(&mut c, &chain) else {
            continue;
        };
        assert!(matches!(e.error, MapRedError::CorruptBlock { .. }));

        let mut c2 = Cluster::new(ClusterConfig {
            retry: Some(RetryPolicy {
                max_retries: 24,
                backoff_base_s: 1.0,
                backoff_factor: 2.0,
                ..RetryPolicy::default()
            }),
            ..bare
        });
        load(&mut c2);
        let mut chain2 = JobChain::new();
        chain2.push(sum_job("sum", "data/t", "out/sum"));
        let outcome = run_chain(&mut c2, &chain2).unwrap();
        assert_eq!(sorted_output(&c2, "out/sum"), expected, "seed {seed}");
        assert!(outcome.metrics.retries > 0);
        assert!(outcome.metrics.jobs[0].attempt > 0);
        recovered = true;
        break;
    }
    assert!(
        recovered,
        "0.25² per block over many blocks × 40 seeds must kill one"
    );
}

#[test]
fn chain_failure_carries_the_partial_trace() {
    // A chain that dies mid-way still hands back an inspectable timeline:
    // the committed first job's spans plus the failure itself.
    let mut c = Cluster::new(many_task_config());
    c.enable_tracing();
    load(&mut c);
    let mut chain = JobChain::new();
    chain.push(sum_job("ok", "data/t", "tmp/ok"));
    chain.push(sum_job("doomed", "data/nonexistent", "out/never"));
    let failure = run_chain(&mut c, &chain).unwrap_err();
    assert!(matches!(failure.error, MapRedError::NoSuchFile(_)));
    assert_eq!(failure.metrics.jobs.len(), 1, "first job completed");

    let trace = failure.trace.as_ref().expect("tracing was on");
    assert!(!trace.is_empty());
    // The committed first job's spans are in the partial trace.
    assert!(trace.events().iter().any(|e| e.cat == "map"));
    assert_eq!(trace.process_labels().len(), 1);
    ysmart_mapred::validate_chrome_trace(&trace.to_chrome_json())
        .expect("partial trace exports as valid Chrome JSON");
}

#[test]
fn chain_failure_without_tracing_has_no_trace() {
    let mut c = Cluster::new(many_task_config());
    load(&mut c);
    let mut chain = JobChain::new();
    chain.push(sum_job("doomed", "data/nonexistent", "out/never"));
    let failure = run_chain(&mut c, &chain).unwrap_err();
    assert!(failure.trace.is_none());
}
