//! Thread-count independence of the execution engine.
//!
//! The map and reduce phases run on real threads (`ClusterConfig::
//! exec_threads`), but every source of randomness is seeded per task /
//! partition index and all floating-point accumulation happens in index
//! order after the threads join. These tests pin the resulting guarantee:
//! output lines AND `JobMetrics` are bit-identical whatever the thread
//! count — including under straggler, task-failure, node-loss and
//! data-corruption injection combined, where per-task RNG draws decide
//! simulated times (and, for corruption, which bytes get flipped).
//!
//! The mappers skip unparseable lines via `record_bad` instead of
//! panicking: the corruption model injects torn records, and skipping them
//! is exactly the robustness the engine's bad-record budget models.

use ysmart_mapred::{
    run_chain, Cluster, ClusterConfig, CorruptionModel, DataFormat, FailureModel, JobChain,
    JobSpec, MapOutput, NodeFailureModel, ReduceOutput, Reducer, RetryPolicy, StragglerModel,
};
use ysmart_mapred::{validate_chrome_trace, ChainMetrics, JobMetrics, Mapper, Trace};
use ysmart_rel::codec::encode_line;
use ysmart_rel::colbatch::decode_frames;
use ysmart_rel::{row, Row};

const FORMATS: [DataFormat; 2] = [DataFormat::Text, DataFormat::Columnar];

struct KvMapper;
impl Mapper for KvMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let parsed = line
            .split_once('|')
            .and_then(|(k, v)| Some((k.parse::<i64>().ok()?, v.parse::<i64>().ok()?)));
        match parsed {
            Some((k, v)) => out.emit(row![k], row![v]),
            None => out.record_bad(),
        }
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
        let s: i64 = values
            .iter()
            .map(|v| v.get(0).unwrap().as_int().unwrap())
            .sum();
        // A typed row: rendered as "k|s" in text mode, packed into a
        // columnar frame otherwise.
        out.emit_row(row![key.get(0).unwrap().clone(), s]);
    }
}

struct IdentityMapper;
impl Mapper for IdentityMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let parsed = line
            .split_once('|')
            .and_then(|(k, v)| Some((k.parse::<i64>().ok()?, v.parse::<i64>().ok()?)));
        match parsed {
            Some((k, v)) => out.emit(row![k % 7], row![v]),
            None => out.record_bad(),
        }
    }
}

fn two_job_chain() -> JobChain {
    let mut chain = JobChain::new();
    chain.push(
        JobSpec::builder("j1")
            .input("data/t", || Box::new(KvMapper))
            .reducer(|| Box::new(SumReducer))
            .output("tmp/j1")
            .reduce_tasks(5)
            .build(),
    );
    chain.push(
        JobSpec::builder("j2")
            .input("tmp/j1", || Box::new(IdentityMapper))
            .reducer(|| Box::new(SumReducer))
            .output("out/final")
            .reduce_tasks(3)
            .build(),
    );
    chain
}

/// Tiny HDFS blocks force many map tasks, so the threaded path actually
/// chunks work across workers instead of degenerating to one slice.
fn config(threads: Option<usize>, seed: u64, format: DataFormat) -> ClusterConfig {
    ClusterConfig {
        nodes: 6,
        hdfs_block_mb: 0.0002, // ~200 real bytes per split
        size_multiplier: 50_000.0,
        exec_threads: threads,
        data_format: format,
        stragglers: Some(StragglerModel {
            probability: 0.2,
            slowdown: 5.0,
            speculative: true,
            seed,
        }),
        failures: Some(FailureModel {
            probability: 0.15,
            seed: seed ^ 0xBEEF,
        }),
        node_failures: Some(NodeFailureModel {
            probability: 0.08,
            seed: seed ^ 0xF00D,
        }),
        // Byte corruption on top of the clock faults: block bit-flips with
        // replica failover, shuffle-segment refetches and torn records —
        // all seeded per task/partition index, so they too must be
        // schedule-independent.
        corruption: Some(CorruptionModel {
            block_rate: 0.05,
            segment_rate: 0.05,
            record_rate: 0.02,
            seed: seed ^ 0xC0DE,
        }),
        skip_bad_records: 1_000_000,
        // Jittered backoff: the jitter derives from the chain seed, never
        // thread timing, so it must be bit-identical across exec_threads
        // like everything else here.
        retry: Some(RetryPolicy {
            max_retries: 8,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
            jitter: 0.5,
            ..RetryPolicy::default()
        }),
        ..ClusterConfig::default()
    }
}

/// Loads the input table in the cluster's configured format (typed rows:
/// text lines or columnar frames, byte-identical text either way).
fn load_input(cluster: &mut Cluster) {
    let rows: Vec<Row> = (0..800i64).map(|i| row![i % 40, i]).collect();
    cluster.load_table_rows("t", &rows);
}

/// The stored bytes of an output file: text lines and raw columnar
/// frames. Comparing both proves bit-identity in either format.
fn stored(cluster: &Cluster, path: &str) -> (Vec<String>, Vec<Vec<u8>>) {
    let file = cluster.hdfs.get(path).unwrap();
    (file.lines.clone(), file.frames.clone())
}

/// Renders an output file to canonical text lines regardless of format —
/// the cross-format comparison key.
fn canonical(lines: &[String], frames: &[Vec<u8>]) -> Vec<String> {
    if frames.is_empty() {
        lines.to_vec()
    } else {
        decode_frames(frames)
            .expect("stored frames decode")
            .iter()
            .map(encode_line)
            .collect()
    }
}

/// Runs the chain under `threads` and returns (output lines, output
/// frames, per-job metrics).
#[allow(clippy::type_complexity)]
fn run(
    threads: Option<usize>,
    seed: u64,
    format: DataFormat,
) -> (Vec<String>, Vec<Vec<u8>>, Vec<JobMetrics>) {
    let mut cluster = Cluster::new(config(threads, seed, format));
    load_input(&mut cluster);
    let outcome = run_chain(&mut cluster, &two_job_chain()).expect("chain");
    let (lines, frames) = stored(&cluster, "out/final");
    (lines, frames, outcome.metrics.jobs)
}

#[test]
fn threaded_execution_is_bit_identical_to_serial() {
    // None resolves to the machine's core count; 1 forces the serial path;
    // 4 exercises chunked scoped threads regardless of the host. Both data
    // formats must hold the guarantee, down to the raw frame bytes.
    for format in FORMATS {
        let (serial_lines, serial_frames, serial_metrics) = run(Some(1), 42, format);
        for threads in [None, Some(4)] {
            let (lines, frames, metrics) = run(threads, 42, format);
            assert_eq!(
                lines, serial_lines,
                "{format:?}: lines differ under {threads:?}"
            );
            assert_eq!(
                frames, serial_frames,
                "{format:?}: frames differ under {threads:?}"
            );
            assert_eq!(
                metrics, serial_metrics,
                "{format:?}: metrics differ under {threads:?}"
            );
        }
    }
}

#[test]
fn formats_agree_on_canonical_output() {
    // Text and columnar runs store different bytes but must decode to the
    // same records, fault injection and all (torn-record injection never
    // drops real records in either format).
    for seed in [42u64, 7] {
        let (tl, tf, tm) = run(Some(4), seed, DataFormat::Text);
        let (cl, cf, cm) = run(Some(4), seed, DataFormat::Columnar);
        assert!(
            tf.is_empty() && !cf.is_empty(),
            "formats must differ on disk"
        );
        assert_eq!(
            canonical(&tl, &tf),
            canonical(&cl, &cf),
            "seed {seed}: canonical outputs differ across formats"
        );
        assert_eq!(tm.iter().map(|j| j.encoded_bytes).sum::<u64>(), 0);
        assert!(
            cm.iter().all(|j| j.encoded_bytes > 0),
            "columnar jobs account frame bytes"
        );
    }
}

#[test]
fn determinism_holds_across_fault_seeds() {
    // Sweep seeds so different straggler/failure/node-loss draws (including
    // retried attempts) all stay schedule-independent.
    for format in FORMATS {
        for seed in [1u64, 7, 99, 1234, 777_777] {
            let (serial_lines, serial_frames, serial_metrics) = run(Some(1), seed, format);
            let (lines, frames, metrics) = run(Some(4), seed, format);
            assert_eq!(lines, serial_lines, "{format:?} seed {seed}: lines differ");
            assert_eq!(
                frames, serial_frames,
                "{format:?} seed {seed}: frames differ"
            );
            assert_eq!(
                metrics, serial_metrics,
                "{format:?} seed {seed}: metrics differ"
            );
        }
    }
}

#[test]
fn corruption_events_fire_in_the_combined_sweep() {
    // The thread-count comparisons above are only meaningful if injected
    // corruption actually does something at these rates.
    for format in FORMATS {
        let (_, _, metrics) = run(Some(1), 42, format);
        let events: u64 = metrics
            .iter()
            .map(|j| j.corrupt_blocks_detected + j.refetched_segments + j.skipped_records)
            .sum();
        assert!(
            events > 0,
            "{format:?}: corruption must fire in the combined config"
        );
        assert!(metrics.iter().any(|j| j.verify_s > 0.0), "{format:?}");
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    // Same configuration twice: the whole pipeline (RNG draws included)
    // must reproduce exactly — no hidden global state.
    for format in FORMATS {
        let a = run(None, 5, format);
        let b = run(None, 5, format);
        assert_eq!(a, b, "{format:?}");
    }
}

/// Runs the chain with tracing enabled and returns the trace plus the
/// chain metrics.
fn run_traced(threads: Option<usize>, seed: u64, format: DataFormat) -> (Trace, ChainMetrics) {
    let mut cluster = Cluster::new(config(threads, seed, format));
    cluster.enable_tracing();
    load_input(&mut cluster);
    let outcome = run_chain(&mut cluster, &two_job_chain()).expect("chain");
    let trace = cluster.take_trace().expect("tracing was enabled");
    (trace, outcome.metrics)
}

#[test]
fn trace_is_bit_identical_across_thread_counts() {
    // Span emission keys on simulated time and task index, never wall
    // clock or thread interleaving — so the exported JSON must match to
    // the byte under any thread count, even with every fault model firing.
    for format in FORMATS {
        for seed in [42u64, 7] {
            let (serial, _) = run_traced(Some(1), seed, format);
            let serial_json = serial.to_chrome_json();
            for threads in [None, Some(4)] {
                let (t, _) = run_traced(threads, seed, format);
                assert_eq!(
                    t.to_chrome_json(),
                    serial_json,
                    "{format:?} seed {seed}: trace differs under {threads:?}"
                );
            }
        }
    }
}

#[test]
fn trace_reconciles_with_chain_metrics() {
    let (trace, metrics) = run_traced(Some(1), 42, DataFormat::Columnar);
    let json = trace.to_chrome_json();
    let stats = validate_chrome_trace(&json).expect("exported trace must validate");
    assert!(stats.span_cats.get("map").copied().unwrap_or(0) >= 1);
    assert!(stats.span_cats.get("reduce").copied().unwrap_or(0) >= 1);

    // The whole timeline's extent is the chain's simulated total.
    let total = metrics.total_s();
    assert!(
        (trace.max_end_s() - total).abs() <= 1e-6 * total.max(1.0),
        "trace extent {} vs chain total {}",
        trace.max_end_s(),
        total
    );

    // Each job's process spans exactly its phase times (successful
    // attempts commit in chain order, so job i lives on pid i+1).
    for (i, job) in metrics.jobs.iter().enumerate() {
        let pid = (i + 1) as u32;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for ev in trace.events().iter().filter(|e| e.pid == pid) {
            lo = lo.min(ev.start_s);
            hi = hi.max(ev.end_s());
        }
        let extent = hi - lo;
        let phases = job.map_time_s + job.reduce_time_s;
        assert!(
            (extent - phases).abs() <= 1e-6 * phases.max(1.0),
            "{}: span extent {} vs map+reduce {}",
            job.name,
            extent,
            phases
        );
    }

    // Every recovery event counted in the metrics must leave spans, and
    // vice versa the trace must not invent categories the run never hit.
    let has = |cat: &str| trace.events().iter().any(|e| e.cat == cat);
    if metrics.jobs.iter().any(|j| j.failed_attempts > 0) {
        assert!(has("attempt_failed"), "failed attempts need spans");
    }
    if metrics.jobs.iter().any(|j| j.reexecuted_tasks > 0) {
        assert!(has("reexec"), "node-loss re-execution needs spans");
    }
    if metrics.jobs.iter().any(|j| j.speculative_tasks > 0) {
        assert!(has("speculative"), "speculative backups need spans");
    }
    if metrics.jobs.iter().any(|j| j.verify_s > 0.0) {
        assert!(has("verify"), "checksum verification needs spans");
    }
    if metrics.retries > 0 {
        assert!(has("job_failed"), "failed job attempts need chain spans");
        assert!(has("backoff"), "retry backoff needs chain spans");
    }
    if metrics.retries == 0 {
        assert!(!has("job_failed") && !has("backoff"));
    }
}

#[test]
fn tracing_does_not_change_results_or_metrics() {
    // The observability layer observes: running with the trace recorder on
    // must leave output lines and metrics bit-identical to running off.
    for format in FORMATS {
        let (plain_lines, plain_frames, plain_metrics) = run(Some(4), 42, format);
        let mut cluster = Cluster::new(config(Some(4), 42, format));
        cluster.enable_tracing();
        load_input(&mut cluster);
        let outcome = run_chain(&mut cluster, &two_job_chain()).expect("chain");
        let (traced_lines, traced_frames) = stored(&cluster, "out/final");
        assert_eq!(traced_lines, plain_lines, "{format:?}");
        assert_eq!(traced_frames, plain_frames, "{format:?}");
        assert_eq!(outcome.metrics.jobs, plain_metrics, "{format:?}");
    }
}
