//! Thread-count independence of the execution engine.
//!
//! The map and reduce phases run on real threads (`ClusterConfig::
//! exec_threads`), but every source of randomness is seeded per task /
//! partition index and all floating-point accumulation happens in index
//! order after the threads join. These tests pin the resulting guarantee:
//! output lines AND `JobMetrics` are bit-identical whatever the thread
//! count — including under straggler, task-failure, node-loss and
//! data-corruption injection combined, where per-task RNG draws decide
//! simulated times (and, for corruption, which bytes get flipped).
//!
//! The mappers skip unparseable lines via `record_bad` instead of
//! panicking: the corruption model injects torn records, and skipping them
//! is exactly the robustness the engine's bad-record budget models.

use ysmart_mapred::{
    run_chain, Cluster, ClusterConfig, CorruptionModel, FailureModel, JobChain, JobSpec, MapOutput,
    NodeFailureModel, ReduceOutput, Reducer, RetryPolicy, StragglerModel,
};
use ysmart_mapred::{JobMetrics, Mapper};
use ysmart_rel::{row, Row};

struct KvMapper;
impl Mapper for KvMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let parsed = line
            .split_once('|')
            .and_then(|(k, v)| Some((k.parse::<i64>().ok()?, v.parse::<i64>().ok()?)));
        match parsed {
            Some((k, v)) => out.emit(row![k], row![v]),
            None => out.record_bad(),
        }
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
        let s: i64 = values
            .iter()
            .map(|v| v.get(0).unwrap().as_int().unwrap())
            .sum();
        out.emit_line(format!("{}|{}", key.get(0).unwrap(), s));
    }
}

struct IdentityMapper;
impl Mapper for IdentityMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let parsed = line
            .split_once('|')
            .and_then(|(k, v)| Some((k.parse::<i64>().ok()?, v.parse::<i64>().ok()?)));
        match parsed {
            Some((k, v)) => out.emit(row![k % 7], row![v]),
            None => out.record_bad(),
        }
    }
}

fn two_job_chain() -> JobChain {
    let mut chain = JobChain::new();
    chain.push(
        JobSpec::builder("j1")
            .input("data/t", || Box::new(KvMapper))
            .reducer(|| Box::new(SumReducer))
            .output("tmp/j1")
            .reduce_tasks(5)
            .build(),
    );
    chain.push(
        JobSpec::builder("j2")
            .input("tmp/j1", || Box::new(IdentityMapper))
            .reducer(|| Box::new(SumReducer))
            .output("out/final")
            .reduce_tasks(3)
            .build(),
    );
    chain
}

/// Tiny HDFS blocks force many map tasks, so the threaded path actually
/// chunks work across workers instead of degenerating to one slice.
fn config(threads: Option<usize>, seed: u64) -> ClusterConfig {
    ClusterConfig {
        nodes: 6,
        hdfs_block_mb: 0.0002, // ~200 real bytes per split
        size_multiplier: 50_000.0,
        exec_threads: threads,
        stragglers: Some(StragglerModel {
            probability: 0.2,
            slowdown: 5.0,
            speculative: true,
            seed,
        }),
        failures: Some(FailureModel {
            probability: 0.15,
            seed: seed ^ 0xBEEF,
        }),
        node_failures: Some(NodeFailureModel {
            probability: 0.08,
            seed: seed ^ 0xF00D,
        }),
        // Byte corruption on top of the clock faults: block bit-flips with
        // replica failover, shuffle-segment refetches and torn records —
        // all seeded per task/partition index, so they too must be
        // schedule-independent.
        corruption: Some(CorruptionModel {
            block_rate: 0.05,
            segment_rate: 0.05,
            record_rate: 0.02,
            seed: seed ^ 0xC0DE,
        }),
        skip_bad_records: 1_000_000,
        retry: Some(RetryPolicy {
            max_retries: 8,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
            ..RetryPolicy::default()
        }),
        ..ClusterConfig::default()
    }
}

/// Runs the chain under `threads` and returns (output lines in stored
/// order, per-job metrics).
fn run(threads: Option<usize>, seed: u64) -> (Vec<String>, Vec<JobMetrics>) {
    let mut cluster = Cluster::new(config(threads, seed));
    let lines: Vec<String> = (0..800).map(|i| format!("{}|{}", i % 40, i)).collect();
    cluster.load_table("t", lines);
    let outcome = run_chain(&mut cluster, &two_job_chain()).expect("chain");
    let lines = cluster.hdfs.get("out/final").unwrap().lines.clone();
    (lines, outcome.metrics.jobs)
}

#[test]
fn threaded_execution_is_bit_identical_to_serial() {
    // None resolves to the machine's core count; 1 forces the serial path;
    // 4 exercises chunked scoped threads regardless of the host.
    let (serial_lines, serial_metrics) = run(Some(1), 42);
    for threads in [None, Some(4)] {
        let (lines, metrics) = run(threads, 42);
        assert_eq!(lines, serial_lines, "output differs under {threads:?}");
        assert_eq!(metrics, serial_metrics, "metrics differ under {threads:?}");
    }
}

#[test]
fn determinism_holds_across_fault_seeds() {
    // Sweep seeds so different straggler/failure/node-loss draws (including
    // retried attempts) all stay schedule-independent.
    for seed in [1u64, 7, 99, 1234, 777_777] {
        let (serial_lines, serial_metrics) = run(Some(1), seed);
        let (threaded_lines, threaded_metrics) = run(Some(4), seed);
        assert_eq!(threaded_lines, serial_lines, "seed {seed}: lines differ");
        assert_eq!(
            threaded_metrics, serial_metrics,
            "seed {seed}: metrics differ"
        );
    }
}

#[test]
fn corruption_events_fire_in_the_combined_sweep() {
    // The thread-count comparisons above are only meaningful if injected
    // corruption actually does something at these rates.
    let (_, metrics) = run(Some(1), 42);
    let events: u64 = metrics
        .iter()
        .map(|j| j.corrupt_blocks_detected + j.refetched_segments + j.skipped_records)
        .sum();
    assert!(events > 0, "corruption must fire in the combined config");
    assert!(metrics.iter().any(|j| j.verify_s > 0.0));
}

#[test]
fn repeated_runs_are_reproducible() {
    // Same configuration twice: the whole pipeline (RNG draws included)
    // must reproduce exactly — no hidden global state.
    let a = run(None, 5);
    let b = run(None, 5);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
