//! Workload-level cross-query result-reuse tests: repeated queries
//! fast-forward from the cache with results identical to uncached
//! execution, a capacity-0 cache is bit-identical to no cache at all,
//! tampered cached bytes fall back to re-execution (never a wrong answer),
//! eviction pressure never changes results, and the whole machinery is
//! bit-identical across `exec_threads` settings and data formats.

use ysmart_mapred::reuse::reuse_path;
use ysmart_mapred::scheduler::{
    run_workload, run_workload_reusing, Disposition, QueryRequest, SchedulerConfig, TenantSpec,
    WorkloadReport,
};
use ysmart_mapred::{
    file_checksum, Cluster, ClusterConfig, DataFormat, JobChain, JobSpec, MapOutput, Mapper,
    ReduceOutput, Reducer, ReuseCache, ReuseConfig,
};
use ysmart_rel::{row, Row};

struct KvMapper;
impl Mapper for KvMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let parsed = line
            .split_once('|')
            .and_then(|(k, v)| Some((k.parse::<i64>().ok()?, v.parse::<i64>().ok()?)));
        match parsed {
            Some((k, v)) => out.emit(row![k], row![v]),
            None => out.record_bad(),
        }
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
        let s: i64 = values
            .iter()
            .map(|v| v.get(0).unwrap().as_int().unwrap())
            .sum();
        out.emit_row(row![key.get(0).unwrap().clone(), s]);
    }
}

/// A `jobs`-long summing chain whose jobs carry explicit reuse
/// fingerprints: job `j` of logical chain `logical` fingerprints as
/// `logical * 1000 + j`, so two requests built from the same `logical`
/// are cache-equivalent however they are tagged.
fn chain(tag: &str, jobs: usize, logical: u64) -> JobChain {
    let mut c = JobChain::new();
    let mut input = "data/t".to_string();
    for j in 0..jobs {
        let output = if j + 1 == jobs {
            format!("out/{tag}")
        } else {
            format!("tmp/{tag}-{j}")
        };
        c.push(
            JobSpec::builder(&format!("{tag}-j{j}"))
                .input(&input, || Box::new(KvMapper))
                .reducer(|| Box::new(SumReducer))
                .output(&output)
                .reduce_tasks(3)
                .fingerprint(logical * 1000 + j as u64)
                .build(),
        );
        input.clone_from(&output);
    }
    c
}

fn load(c: &mut Cluster) {
    let lines: Vec<String> = (0..500).map(|i| format!("{}|1", i % 20)).collect();
    c.load_table("t", lines);
}

fn cluster(threads: Option<usize>, format: DataFormat) -> Cluster {
    let mut c = Cluster::new(ClusterConfig {
        size_multiplier: 10_000.0,
        exec_threads: threads,
        data_format: format,
        ..ClusterConfig::default()
    });
    load(&mut c);
    c
}

/// One slot: strictly serial admission, so by the time a repeated query is
/// admitted its original has committed every job — full-prefix reuse.
fn serial() -> SchedulerConfig {
    SchedulerConfig {
        max_running: 1,
        tenants: vec![TenantSpec::new("t", 16, 8)],
        trace: false,
        drain_at_s: None,
    }
}

fn request(tag: &str, jobs: usize, logical: u64, seed: u64, submit_s: f64) -> QueryRequest {
    QueryRequest {
        tenant: "t".into(),
        label: tag.into(),
        chain: chain(tag, jobs, logical),
        seed,
        deadline_s: None,
        submit_s,
    }
}

/// Two distinct two-job queries, then the same two logical queries again
/// under fresh tags (and fresh output paths).
fn repeated_batch() -> Vec<QueryRequest> {
    vec![
        request("q0", 2, 1, 10, 0.0),
        request("q1", 2, 2, 11, 1.0),
        request("q2", 2, 1, 12, 2.0),
        request("q3", 2, 2, 13, 3.0),
    ]
}

/// Canonical per-query digest: label, exact timings, reuse count, full
/// metrics debug and the output file's content checksum. `{}` / `{:?}` on
/// f64 print shortest-roundtrip representations, so equal digests mean
/// bit-identical reports.
fn digest(report: &WorkloadReport, cluster: &Cluster) -> Vec<String> {
    report
        .reports
        .iter()
        .map(|r| {
            let out = match &r.disposition {
                Disposition::Completed(o) => format!(
                    "{:016x}",
                    file_checksum(cluster.hdfs.get(&o.final_output).unwrap())
                ),
                other => format!("{other:?}"),
            };
            format!(
                "{} admitted={:?} done={} reused={} metrics={:?} out={out}",
                r.label,
                r.admitted_s,
                r.done_s,
                r.jobs_reused,
                r.metrics(),
            )
        })
        .collect()
}

/// Output checksums only (reuse replays the *producer's* recorded metrics,
/// so cached and uncached runs agree on results, not necessarily on every
/// per-job metric of the repeated queries).
fn outputs(report: &WorkloadReport, cluster: &Cluster) -> Vec<String> {
    report
        .reports
        .iter()
        .map(|r| match &r.disposition {
            Disposition::Completed(o) => format!(
                "{:016x}",
                file_checksum(cluster.hdfs.get(&o.final_output).unwrap())
            ),
            other => format!("{other:?}"),
        })
        .collect()
}

#[test]
fn repeated_queries_fast_forward_from_the_cache() {
    let mut plain_cluster = cluster(Some(1), DataFormat::Text);
    let plain = run_workload(&mut plain_cluster, &serial(), repeated_batch());

    let mut cached_cluster = cluster(Some(1), DataFormat::Text);
    let mut cache = ReuseCache::new(ReuseConfig::with_capacity(1 << 20));
    let (report, _) = run_workload_reusing(
        &mut cached_cluster,
        &serial(),
        repeated_batch(),
        None,
        &[],
        &mut cache,
    );

    // Results are what an uncached run produces, query for query.
    assert_eq!(
        outputs(&report, &cached_cluster),
        outputs(&plain, &plain_cluster),
        "reuse must never change results"
    );
    // The repeats were fast-forwarded whole; the originals executed.
    let reused: Vec<usize> = report.reports.iter().map(|r| r.jobs_reused).collect();
    assert_eq!(reused, [0, 0, 2, 2], "both repeats reuse their full chain");
    let stats = report.reuse.expect("cache was in force");
    assert_eq!(
        (stats.hits, stats.misses, stats.insertions, stats.evictions),
        (4, 2, 4, 0),
        "2 hits per repeat; 1 leading miss per original; 4 unique jobs"
    );
    assert!(stats.reused_work_s > 0.0, "hits must bank avoided work");
    assert!((stats.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
    assert!(cached_cluster.hdfs.accounting_reconciled());
}

#[test]
fn capacity_zero_cache_is_bit_identical_to_no_cache() {
    let mut plain_cluster = cluster(Some(1), DataFormat::Text);
    let plain = run_workload(&mut plain_cluster, &serial(), repeated_batch());

    let mut zero_cluster = cluster(Some(1), DataFormat::Text);
    let mut cache = ReuseCache::new(ReuseConfig::with_capacity(0));
    let (report, _) = run_workload_reusing(
        &mut zero_cluster,
        &serial(),
        repeated_batch(),
        None,
        &[],
        &mut cache,
    );

    assert_eq!(
        digest(&report, &zero_cluster),
        digest(&plain, &plain_cluster),
        "a disabled cache must not perturb the workload at all"
    );
    let stats = report.reuse.expect("cache was in force");
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.insertions, 0);
    assert!(stats.misses > 0, "lookups happened and all missed");
}

#[test]
fn tampered_cache_entry_falls_back_to_reexecution() {
    // Batch 1 populates the cache; then the materialized bytes of logical
    // chain 1's first job are overwritten behind the cache's back. The
    // repeat in batch 2 must detect the checksum mismatch, evict the
    // damaged entry and re-execute — same answer, one integrity failure.
    let mut c = cluster(Some(1), DataFormat::Text);
    let mut cache = ReuseCache::new(ReuseConfig::with_capacity(1 << 20));
    let (first, _) = run_workload_reusing(
        &mut c,
        &serial(),
        vec![request("q0", 2, 1, 10, 0.0)],
        None,
        &[],
        &mut cache,
    );
    let good = outputs(&first, &c);

    c.hdfs
        .put(&reuse_path(1000), vec!["tampered|garbage".to_string()]);
    let (second, _) = run_workload_reusing(
        &mut c,
        &serial(),
        vec![request("q9", 2, 1, 42, 0.0)],
        None,
        &[],
        &mut cache,
    );

    assert_eq!(
        outputs(&second, &c),
        good,
        "fallback re-execution must reproduce the original answer"
    );
    assert_eq!(second.reports[0].jobs_reused, 0, "nothing may be reused");
    let stats = second.reuse.expect("cache was in force");
    assert_eq!(stats.integrity_failures, 1, "the tamper must be detected");
    // Re-execution re-committed fresh entries over the evicted one.
    assert!(cache.contains(1000) && cache.contains(1001));
    assert!(c.hdfs.accounting_reconciled());
}

#[test]
fn tiny_capacity_evicts_but_never_wrongs_results() {
    let mut plain_cluster = cluster(Some(1), DataFormat::Text);
    let plain = run_workload(&mut plain_cluster, &serial(), repeated_batch());

    // Room for roughly one job output: constant eviction churn.
    let mut small_cluster = cluster(Some(1), DataFormat::Text);
    let mut cache = ReuseCache::new(ReuseConfig::with_capacity(200));
    let (report, _) = run_workload_reusing(
        &mut small_cluster,
        &serial(),
        repeated_batch(),
        None,
        &[],
        &mut cache,
    );

    assert_eq!(
        outputs(&report, &small_cluster),
        outputs(&plain, &plain_cluster),
        "eviction pressure must never change results"
    );
    let stats = report.reuse.expect("cache was in force");
    assert!(stats.evictions > 0, "capacity 200 must churn");
    assert!(
        stats.bytes_cached <= 200,
        "the configured bound holds, got {}",
        stats.bytes_cached
    );
    assert!(small_cluster.hdfs.accounting_reconciled());
}

#[test]
fn reuse_is_bit_identical_across_threads_and_formats() {
    for format in [DataFormat::Text, DataFormat::Columnar] {
        let run = |threads: Option<usize>| {
            let mut c = cluster(threads, format);
            let mut cache = ReuseCache::new(ReuseConfig::with_capacity(1 << 20));
            let (report, _) =
                run_workload_reusing(&mut c, &serial(), repeated_batch(), None, &[], &mut cache);
            assert!(
                report.reports.iter().any(|r| r.jobs_reused > 0),
                "{format:?}: the cache must actually be exercised"
            );
            let stats = report.reuse.expect("cache was in force");
            (digest(&report, &c), format!("{stats:?}"))
        };
        let serial_run = run(Some(1));
        for threads in [Some(4), None] {
            assert_eq!(
                run(threads),
                serial_run,
                "{format:?}: reuse workload differs under exec_threads={threads:?}"
            );
        }
    }
}
