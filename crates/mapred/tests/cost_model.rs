//! Directional tests of the cost model: each knob must move simulated time
//! the way its real-world counterpart would.

use ysmart_mapred::{
    run_job, Cluster, ClusterConfig, ContentionModel, JobSpec, MapOutput, Mapper, ReduceOutput,
    Reducer,
};
use ysmart_rel::{row, Row};

struct KvMapper;
impl Mapper for KvMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let n: i64 = line.parse().unwrap();
        out.emit(row![n % 50], row![n]);
    }
}

struct CountReducer;
impl Reducer for CountReducer {
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
        out.emit_line(format!("{}|{}", key.get(0).unwrap(), values.len()));
    }
}

fn job() -> JobSpec {
    JobSpec::builder("j")
        .input("data/t", || Box::new(KvMapper))
        .reducer(|| Box::new(CountReducer))
        .output("out/j")
        .reduce_tasks(4)
        .build()
}

fn time_with(config: ClusterConfig) -> f64 {
    let mut c = Cluster::new(config);
    c.load_table("t", (0..5000).map(|i| i.to_string()).collect());
    run_job(&mut c, &job()).unwrap().total_s()
}

fn base() -> ClusterConfig {
    ClusterConfig {
        size_multiplier: 1e5,
        ..ClusterConfig::default()
    }
}

#[test]
fn slower_disks_slow_the_job() {
    let fast = time_with(ClusterConfig {
        disk_mbps: 500.0,
        ..base()
    });
    let slow = time_with(ClusterConfig {
        disk_mbps: 20.0,
        ..base()
    });
    assert!(slow > fast, "{slow} vs {fast}");
}

#[test]
fn slower_network_slows_shuffle_and_writes() {
    let fast = time_with(ClusterConfig {
        net_mbps: 1000.0,
        ..base()
    });
    let slow = time_with(ClusterConfig {
        net_mbps: 10.0,
        ..base()
    });
    assert!(slow > fast);
}

#[test]
fn worse_locality_costs_network_reads() {
    let local = time_with(ClusterConfig {
        locality: 1.0,
        net_mbps: 20.0,
        ..base()
    });
    let remote = time_with(ClusterConfig {
        locality: 0.0,
        net_mbps: 20.0,
        ..base()
    });
    assert!(remote > local);
}

#[test]
fn higher_replication_costs_output_writes() {
    let r1 = time_with(ClusterConfig {
        replication: 1,
        ..base()
    });
    let r3 = time_with(ClusterConfig {
        replication: 3,
        ..base()
    });
    assert!(r3 >= r1);
}

#[test]
fn more_slots_shorten_the_map_phase() {
    let small = time_with(ClusterConfig {
        nodes: 1,
        map_slots_per_node: 2,
        ..base()
    });
    let big = time_with(ClusterConfig {
        nodes: 16,
        map_slots_per_node: 4,
        ..base()
    });
    assert!(big < small);
}

#[test]
fn contention_slows_everything() {
    let isolated = time_with(base());
    let contended = time_with(ClusterConfig {
        contention: Some(ContentionModel {
            slot_share: 0.25,
            max_scheduling_gap_s: 0.0,
            task_slowdown: 2.0,
            seed: 1,
        }),
        ..base()
    });
    assert!(contended > isolated);
}

#[test]
fn more_map_tasks_with_smaller_blocks() {
    let run_tasks = |block_mb: f64| {
        let mut c = Cluster::new(ClusterConfig {
            hdfs_block_mb: block_mb,
            ..base()
        });
        c.load_table("t", (0..5000).map(|i| i.to_string()).collect());
        run_job(&mut c, &job()).unwrap().map_tasks
    };
    assert!(run_tasks(16.0) > run_tasks(256.0));
}

#[test]
fn startup_overhead_scales_with_waves() {
    let cheap = time_with(ClusterConfig {
        task_startup_s: 0.0,
        hdfs_block_mb: 8.0,
        ..base()
    });
    let pricey = time_with(ClusterConfig {
        task_startup_s: 10.0,
        hdfs_block_mb: 8.0,
        ..base()
    });
    assert!(pricey > cheap + 9.0, "{pricey} vs {cheap}");
}

#[test]
fn stragglers_slow_jobs_and_speculation_rescues_them() {
    use ysmart_mapred::StragglerModel;
    let clean = time_with(base());
    let straggling = time_with(ClusterConfig {
        stragglers: Some(StragglerModel {
            probability: 0.3,
            slowdown: 8.0,
            speculative: false,
            seed: 5,
        }),
        ..base()
    });
    let speculative = time_with(ClusterConfig {
        stragglers: Some(StragglerModel {
            probability: 0.3,
            slowdown: 8.0,
            speculative: true,
            seed: 5,
        }),
        ..base()
    });
    assert!(straggling > clean * 1.5, "{straggling} vs {clean}");
    assert!(
        speculative < straggling,
        "backup tasks must rescue stragglers: {speculative} vs {straggling}"
    );
    assert!(speculative <= clean * 1.3, "{speculative} vs {clean}");
}

#[test]
fn stragglers_never_change_results() {
    use ysmart_mapred::StragglerModel;
    let run = |stragglers| {
        let mut c = Cluster::new(ClusterConfig {
            stragglers,
            ..base()
        });
        c.load_table("t", (0..5000).map(|i| i.to_string()).collect());
        run_job(&mut c, &job()).unwrap();
        let mut lines = c.hdfs.get("out/j").unwrap().lines.clone();
        lines.sort();
        lines
    };
    let clean = run(None);
    let slow = run(Some(StragglerModel {
        probability: 0.5,
        slowdown: 10.0,
        speculative: true,
        seed: 9,
    }));
    assert_eq!(clean, slow);
}

#[test]
fn speculative_tasks_counted_in_metrics() {
    use ysmart_mapred::StragglerModel;
    let mut c = Cluster::new(ClusterConfig {
        hdfs_block_mb: 0.001, // many tasks so some straggle
        stragglers: Some(StragglerModel {
            probability: 0.4,
            slowdown: 6.0,
            speculative: true,
            seed: 3,
        }),
        ..base()
    });
    c.load_table("t", (0..5000).map(|i| i.to_string()).collect());
    let m = run_job(&mut c, &job()).unwrap();
    assert!(m.speculative_tasks > 0);
}

#[test]
fn a_task_exhausting_retries_kills_the_job() {
    use ysmart_mapred::{FailureModel, MapRedError};
    let mut c = Cluster::new(ClusterConfig {
        failures: Some(FailureModel {
            probability: 0.95,
            seed: 1,
        }),
        ..base()
    });
    c.load_table("t", (0..5000).map(|i| i.to_string()).collect());
    let e = run_job(&mut c, &job()).unwrap_err();
    assert!(matches!(e, MapRedError::TooManyFailures { .. }), "{e}");
}
