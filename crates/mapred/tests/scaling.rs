//! Sampled-metrics scaling correctness.
//!
//! The engine executes on real (small) data and reports simulated volumes:
//! each byte/record count is the real count times
//! `ClusterConfig::size_multiplier`. These tests pin that the scaling
//! *rounds to nearest* — the old truncating `as u64` cast biased every
//! scaled field low by up to one whole unit, which compounds across jobs
//! in a chain and skews figure totals.

use proptest::prelude::*;
use ysmart_mapred::{
    run_job, Cluster, ClusterConfig, JobSpec, MapOutput, Mapper, ReduceOutput, Reducer,
};
use ysmart_rel::{row, Row};

struct KvMapper;
impl Mapper for KvMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let (k, v) = line.split_once('|').unwrap();
        out.emit(
            row![k.parse::<i64>().unwrap()],
            row![v.parse::<i64>().unwrap()],
        );
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
        let s: i64 = values
            .iter()
            .map(|v| v.get(0).unwrap().as_int().unwrap())
            .sum();
        out.emit_line(format!("{}|{}", key.get(0).unwrap(), s));
    }
}

fn sum_job() -> JobSpec {
    JobSpec::builder("sum")
        .input("data/t", || Box::new(KvMapper))
        .reducer(|| Box::new(SumReducer))
        .output("out/sum")
        .reduce_tasks(3)
        .build()
}

fn file_bytes(lines: &[String]) -> u64 {
    lines.iter().map(|l| l.len() as u64 + 1).sum()
}

/// Nearest-rounded scaling leaves every field within half a unit of
/// `real × mult`; truncation can be off by almost a full unit.
fn close(got: u64, real: u64, mult: f64) -> bool {
    (got as f64 - real as f64 * mult).abs() <= 0.5
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every scaled byte/record field of a clean run is the real count
    /// times the multiplier, rounded to nearest — for any multiplier.
    #[test]
    fn scaled_metrics_round_to_nearest(
        pairs in prop::collection::vec((0i64..10, 0i64..100), 1..120),
        mult in 1.0f64..5e4,
    ) {
        let lines: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}|{v}")).collect();
        let in_bytes = file_bytes(&lines);
        let n = pairs.len() as u64;
        let mut c = Cluster::new(ClusterConfig {
            size_multiplier: mult,
            ..ClusterConfig::default()
        });
        c.load_table("t", lines);
        let m = run_job(&mut c, &sum_job()).unwrap();
        let out_lines = c.hdfs.get("out/sum").unwrap().lines.clone();

        prop_assert!(close(m.map_in_records, n, mult),
            "map_in_records {} vs {n} x {mult}", m.map_in_records);
        prop_assert!(close(m.map_out_records, n, mult),
            "map_out_records {} vs {n} x {mult}", m.map_out_records);
        prop_assert!(close(m.hdfs_read_bytes, in_bytes, mult),
            "hdfs_read_bytes {} vs {in_bytes} x {mult}", m.hdfs_read_bytes);
        prop_assert!(close(m.out_records, out_lines.len() as u64, mult),
            "out_records {} vs {} x {mult}", m.out_records, out_lines.len());
        prop_assert!(close(m.hdfs_write_bytes, file_bytes(&out_lines), mult),
            "hdfs_write_bytes {} vs {} x {mult}", m.hdfs_write_bytes, file_bytes(&out_lines));
    }
}

#[test]
fn fractional_multiplier_rounds_up_not_down() {
    // 3 records at x1.3 = 3.9 simulated records: truncation reported 3,
    // rounding must report 4.
    let mut c = Cluster::new(ClusterConfig {
        size_multiplier: 1.3,
        ..ClusterConfig::default()
    });
    c.load_table("t", vec!["1|10".into(), "2|20".into(), "3|30".into()]);
    let m = run_job(&mut c, &sum_job()).unwrap();
    assert_eq!(m.map_in_records, 4, "3 x 1.3 = 3.9 must round to 4");
    assert_eq!(m.map_out_records, 4);
}

#[test]
fn map_only_output_scales_rounded() {
    struct PassMapper;
    impl Mapper for PassMapper {
        fn map(&mut self, line: &str, out: &mut MapOutput) {
            let (k, v) = line.split_once('|').unwrap();
            out.emit(
                row![k.parse::<i64>().unwrap()],
                row![v.parse::<i64>().unwrap()],
            );
        }
    }
    let spec = JobSpec::builder("sel")
        .input("data/t", || Box::new(PassMapper))
        .output("out/sel")
        .build();
    let mult = 2.7;
    let mut c = Cluster::new(ClusterConfig {
        size_multiplier: mult,
        ..ClusterConfig::default()
    });
    c.load_table("t", vec!["1|5".into(), "2|7".into(), "3|9".into()]);
    let m = run_job(&mut c, &spec).unwrap();
    let out_lines = c.hdfs.get("out/sel").unwrap().lines.clone();
    assert!(close(m.out_records, out_lines.len() as u64, mult));
    assert!(close(m.hdfs_write_bytes, file_bytes(&out_lines), mult));
    // 3 x 2.7 = 8.1 -> 8 either way, but 3 records x 2.7 rounds, never
    // truncates: check against the exact nearest integer.
    assert_eq!(
        m.out_records,
        (out_lines.len() as f64 * mult).round() as u64
    );
}
