//! Multi-tenant scheduler integration tests: determinism across thread
//! counts, deadline cancellation with slot release, typed load shedding,
//! retry budgets, weighted fair share and scheduler trace lanes.

use ysmart_mapred::scheduler::{
    run_workload, Disposition, QueryRequest, SchedulerConfig, TenantSpec, WorkloadReport,
};
use ysmart_mapred::{
    run_chain, validate_chrome_trace, Cluster, ClusterConfig, CorruptionModel, FailureModel,
    JobChain, JobSpec, MapOutput, MapRedError, Mapper, NodeFailureModel, ReduceOutput, Reducer,
    RetryPolicy, StragglerModel,
};
use ysmart_rel::{row, Row};

struct KvMapper;
impl Mapper for KvMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let parsed = line
            .split_once('|')
            .and_then(|(k, v)| Some((k.parse::<i64>().ok()?, v.parse::<i64>().ok()?)));
        match parsed {
            Some((k, v)) => out.emit(row![k], row![v]),
            None => out.record_bad(),
        }
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
        let s: i64 = values
            .iter()
            .map(|v| {
                v.get(0)
                    .ok()
                    .and_then(ysmart_rel::Value::as_int)
                    .unwrap_or_else(|| panic!("SumReducer: non-integer value row {v:?}"))
            })
            .sum();
        let k = key
            .get(0)
            .unwrap_or_else(|_| panic!("SumReducer: empty key row {key:?}"));
        out.emit_line(format!("{k}|{s}"));
    }
}

fn sum_job(name: &str, input: &str, output: &str) -> JobSpec {
    JobSpec::builder(name)
        .input(input, || Box::new(KvMapper))
        .reducer(|| Box::new(SumReducer))
        .output(output)
        .reduce_tasks(3)
        .build()
}

/// A chain of `jobs` summing jobs, reading `data/t`, writing namespaced
/// intermediates and a final `out/<tag>`.
fn chain(tag: &str, jobs: usize) -> JobChain {
    let mut c = JobChain::new();
    let mut input = "data/t".to_string();
    for j in 0..jobs {
        let output = if j + 1 == jobs {
            format!("out/{tag}")
        } else {
            format!("tmp/{tag}-{j}")
        };
        c.push(sum_job(&format!("{tag}-j{j}"), &input, &output));
        input.clone_from(&output);
    }
    c
}

fn load(c: &mut Cluster) {
    let lines: Vec<String> = (0..500).map(|i| format!("{}|1", i % 20)).collect();
    c.load_table("t", lines);
}

fn request(tenant: &str, tag: &str, jobs: usize, seed: u64, submit_s: f64) -> QueryRequest {
    QueryRequest {
        tenant: tenant.into(),
        label: tag.into(),
        chain: chain(tag, jobs),
        seed,
        deadline_s: None,
        submit_s,
    }
}

fn two_tenants(max_running: usize) -> SchedulerConfig {
    SchedulerConfig {
        max_running,
        tenants: vec![
            TenantSpec::new("alpha", 4, 16).weight(2),
            TenantSpec::new("beta", 4, 16),
        ],
        trace: false,
        drain_at_s: None,
    }
}

/// The combined fault soup of the determinism suite: stragglers, task
/// failures, node loss, byte corruption — recovered by a jittered retry.
fn faulty_config(threads: Option<usize>, seed: u64) -> ClusterConfig {
    ClusterConfig {
        nodes: 6,
        hdfs_block_mb: 0.0003,
        size_multiplier: 20_000.0,
        exec_threads: threads,
        stragglers: Some(StragglerModel {
            probability: 0.2,
            slowdown: 5.0,
            speculative: true,
            seed,
        }),
        failures: Some(FailureModel {
            probability: 0.1,
            seed: seed ^ 0xBEEF,
        }),
        node_failures: Some(NodeFailureModel {
            probability: 0.05,
            seed: seed ^ 0xF00D,
        }),
        corruption: Some(CorruptionModel {
            block_rate: 0.03,
            segment_rate: 0.03,
            record_rate: 0.01,
            seed: seed ^ 0xC0DE,
        }),
        skip_bad_records: 1_000_000,
        retry: Some(RetryPolicy {
            max_retries: 8,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
            jitter: 0.5,
            ..RetryPolicy::default()
        }),
        ..ClusterConfig::default()
    }
}

/// Runs a mixed two-tenant workload under fault injection and returns the
/// per-query dispositions (with output lines for completions) plus the
/// workload trace JSON.
fn run_faulty_workload(threads: Option<usize>) -> (Vec<String>, String) {
    let mut cluster = Cluster::new(faulty_config(threads, 42));
    load(&mut cluster);
    let mut config = two_tenants(2);
    config.trace = true;
    let requests: Vec<QueryRequest> = (0..6)
        .map(|i| {
            let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
            let mut r = request(
                tenant,
                &format!("q{i}"),
                1 + i % 3,
                1000 + i as u64,
                i as f64,
            );
            r.deadline_s = Some(10_000.0);
            r
        })
        .collect();
    let WorkloadReport { reports, trace, .. } = run_workload(&mut cluster, &config, requests);
    let mut summary = Vec::new();
    for r in &reports {
        let rows = match &r.disposition {
            Disposition::Completed(o) => {
                let mut lines = cluster.hdfs.get(&o.final_output).unwrap().lines.clone();
                lines.sort();
                lines.join(",")
            }
            other => format!("{other:?}"),
        };
        summary.push(format!(
            "{} admitted={:?} done={} metrics={:?} rows={rows}",
            r.label,
            r.admitted_s,
            r.done_s,
            r.metrics()
        ));
    }
    (summary, trace.expect("tracing was on").to_chrome_json())
}

#[test]
fn workload_is_bit_identical_across_thread_counts() {
    // Same seed + same admission order ⇒ identical per-query dispositions,
    // results, metrics and trace, whatever exec_threads resolves to — the
    // scheduler interleaves in simulated time, not wall-clock time.
    let (serial, serial_trace) = run_faulty_workload(Some(1));
    for threads in [Some(4), None] {
        let (got, trace) = run_faulty_workload(threads);
        assert_eq!(got, serial, "workload differs under {threads:?}");
        assert_eq!(trace, serial_trace, "trace differs under {threads:?}");
    }
}

#[test]
fn deadline_cancellation_releases_the_slot_at_the_deadline() {
    // One slot. A long alpha chain with a deadline it cannot meet, then a
    // beta chain queued behind it: beta must be admitted exactly at
    // alpha's deadline — the cancelled chain's slot is released then, not
    // at the time the chain would have finished.
    let mut cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut cluster);
    // Solo yardstick for the same long chain, on an identical cluster.
    let mut solo_cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut solo_cluster);
    let solo = run_chain(&mut solo_cluster, &chain("long", 4)).expect("solo long chain");
    let long_total = solo.metrics.total_s();

    let deadline = long_total * 0.5; // cannot finish in time
    let mut doomed = request("alpha", "long", 4, 7, 0.0);
    doomed.deadline_s = Some(deadline);
    let survivor = request("beta", "short", 1, 8, 1.0);
    let report = run_workload(&mut cluster, &two_tenants(1), vec![doomed, survivor]);

    let [a, b] = &report.reports[..] else {
        panic!("two reports expected");
    };
    match &a.disposition {
        Disposition::DeadlineCancelled(f) => {
            assert!(matches!(
                f.error,
                MapRedError::DeadlineExceeded { deadline_s } if (deadline_s - deadline).abs() < 1e-9
            ));
            // Partial metrics: something ran, but not the whole chain, and
            // the truncated in-flight step is charged as burned time.
            assert!(f.metrics.jobs.len() < 4, "chain must not have finished");
            assert!(f.metrics.total_s() > 0.0, "partial work must be charged");
        }
        other => panic!("expected deadline cancellation, got {other:?}"),
    }
    assert!((a.done_s - deadline).abs() < 1e-9, "cancelled at deadline");

    // The survivor was admitted the instant the slot came free...
    assert!(
        (b.admitted_s.expect("beta ran") - deadline).abs() < 1e-9,
        "slot must be released at the deadline (admitted {:?}, deadline {deadline})",
        b.admitted_s
    );
    // ...and its results match its solo run exactly.
    let Disposition::Completed(out) = &b.disposition else {
        panic!("survivor must complete, got {:?}", b.disposition);
    };
    let mut got = cluster.hdfs.get(&out.final_output).unwrap().lines.clone();
    let mut solo_cluster2 = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut solo_cluster2);
    let solo_short = run_chain(&mut solo_cluster2, &chain("short", 1)).expect("solo short");
    let mut want = solo_cluster2
        .hdfs
        .get(&solo_short.final_output)
        .unwrap()
        .lines
        .clone();
    got.sort();
    want.sort();
    assert_eq!(got, want, "survivor's rows must match its solo run");
}

#[test]
fn hopeless_queued_queries_die_at_their_deadline_without_a_slot() {
    // One slot occupied by a long chain; a queued query whose deadline
    // passes while waiting is cancelled with *empty* metrics — it never
    // ran, and it never blocks the queue.
    let mut cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut cluster);
    let blocker = request("alpha", "blocker", 3, 1, 0.0);
    let mut hopeless = request("beta", "hopeless", 1, 2, 1.0);
    hopeless.deadline_s = Some(2.0); // expires long before the blocker ends
    let report = run_workload(&mut cluster, &two_tenants(1), vec![blocker, hopeless]);
    let h = &report.reports[1];
    match &h.disposition {
        Disposition::DeadlineCancelled(f) => {
            assert!(f.metrics.jobs.is_empty());
            assert_eq!(f.metrics.total_s(), 0.0);
        }
        other => panic!("expected queued-deadline cancellation, got {other:?}"),
    }
    assert!(h.admitted_s.is_none(), "it never got a slot");
    assert!((h.done_s - 3.0).abs() < 1e-9, "died at submit + deadline");
}

#[test]
fn full_queues_shed_with_typed_errors_and_nothing_hangs() {
    // One slot, queue capacity 1: the third concurrent query is shed.
    let mut cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut cluster);
    let config = SchedulerConfig {
        max_running: 1,
        tenants: vec![TenantSpec::new("alpha", 1, 8)],
        trace: false,
        drain_at_s: None,
    };
    let requests = vec![
        request("alpha", "r0", 2, 1, 0.0),
        request("alpha", "r1", 2, 2, 1.0),
        request("alpha", "r2", 2, 3, 2.0), // queue full → shed
        request("ghost", "r3", 1, 4, 3.0), // unknown tenant → rejected
        {
            let mut r = request("alpha", "r4", 1, 5, 4.0);
            r.deadline_s = Some(0.0); // dead on arrival → rejected
            r
        },
    ];
    let report = run_workload(&mut cluster, &config, requests);
    assert_eq!(report.reports.len(), 5, "every query gets a disposition");

    assert!(report.reports[0].completed());
    assert!(report.reports[1].completed());
    match &report.reports[2].disposition {
        Disposition::Shed(MapRedError::QueueFull { tenant, capacity }) => {
            assert_eq!(tenant, "alpha");
            assert_eq!(*capacity, 1);
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    match &report.reports[3].disposition {
        Disposition::Shed(MapRedError::Rejected { tenant, .. }) => assert_eq!(tenant, "ghost"),
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert!(matches!(
        report.reports[4].disposition,
        Disposition::Shed(MapRedError::Rejected { .. })
    ));
    // Shed queries terminate instantly — no queueing, no execution.
    assert_eq!(report.reports[2].latency_s(), 0.0);
    assert!(report.reports[2].metrics().is_none());
}

#[test]
fn retry_budget_exhaustion_fails_fast_with_partial_metrics() {
    // One node dying with p=0.7 makes chains retry a lot. A tenant with a
    // budget of 1 gets exactly one retry across its chains; the next
    // retryable failure is converted into RetryBudgetExhausted. Sweep
    // seeds to find an injection where that actually happens, and check
    // the same seed *recovers* under a generous budget — the budget, not
    // the fault, is what failed the chain.
    let faulty = |seed: u64| ClusterConfig {
        nodes: 1,
        node_failures: Some(NodeFailureModel {
            probability: 0.7,
            seed,
        }),
        retry: Some(RetryPolicy {
            max_retries: 24,
            backoff_base_s: 10.0,
            backoff_factor: 2.0,
            ..RetryPolicy::default()
        }),
        ..ClusterConfig::default()
    };
    let run = |seed: u64, budget: usize| {
        let mut cluster = Cluster::new(faulty(seed));
        load(&mut cluster);
        let config = SchedulerConfig {
            max_running: 1,
            tenants: vec![TenantSpec::new("alpha", 4, budget)],
            trace: false,
            drain_at_s: None,
        };
        run_workload(
            &mut cluster,
            &config,
            vec![request("alpha", "q", 1, seed, 0.0)],
        )
    };

    let mut exhausted = false;
    for seed in 0..30u64 {
        let tight = run(seed, 1);
        match &tight.reports[0].disposition {
            Disposition::Failed(f) => {
                if let MapRedError::RetryBudgetExhausted { tenant, budget } = &f.error {
                    assert_eq!(tenant, "alpha");
                    assert_eq!(*budget, 1);
                    // Fail-fast still reports the burned work.
                    assert_eq!(f.metrics.retries, 1, "exactly the budgeted retry ran");
                    assert!(f.metrics.failed_attempt_s > 0.0);
                    exhausted = true;
                    // The fault itself was recoverable: a generous budget
                    // completes the same injection.
                    let loose = run(seed, 1000);
                    assert!(
                        loose.reports[0].completed(),
                        "seed {seed}: generous budget must recover"
                    );
                    break;
                }
            }
            Disposition::Completed(_) => {}
            other => panic!("seed {seed}: unexpected disposition {other:?}"),
        }
    }
    assert!(exhausted, "p=0.7 over 30 seeds must exhaust a budget of 1");
}

#[test]
fn weighted_fair_share_favours_the_heavier_tenant() {
    // Two identical chains admitted together on two slots; the weight-3
    // tenant gets 3/4 of the slots while they overlap and finishes first.
    let mut cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut cluster);
    let config = SchedulerConfig {
        max_running: 2,
        tenants: vec![
            TenantSpec::new("heavy", 4, 8).weight(3),
            TenantSpec::new("light", 4, 8),
        ],
        trace: false,
        drain_at_s: None,
    };
    let requests = vec![
        request("heavy", "h", 2, 1, 0.0),
        request("light", "l", 2, 2, 0.0),
    ];
    let report = run_workload(&mut cluster, &config, requests);
    let [h, l] = &report.reports[..] else {
        panic!("two reports expected");
    };
    assert!(h.completed() && l.completed());
    assert!(
        h.done_s < l.done_s,
        "weight 3 ({}) must finish before weight 1 ({})",
        h.done_s,
        l.done_s
    );
}

#[test]
fn scheduler_trace_records_queue_admit_shed_and_cancel_lanes() {
    let mut cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut cluster);
    let config = SchedulerConfig {
        max_running: 1,
        tenants: vec![TenantSpec::new("alpha", 1, 8)],
        trace: true,
        drain_at_s: None,
    };
    let mut cancelled = request("alpha", "doomed", 3, 2, 1.0);
    cancelled.deadline_s = Some(5.0);
    let requests = vec![
        request("alpha", "runner", 2, 1, 0.0),
        cancelled,                              // queued, dies waiting
        request("alpha", "shed-me", 1, 3, 2.0), // queue full → shed
    ];
    let report = run_workload(&mut cluster, &config, requests);
    let trace = report.trace.expect("tracing was on");

    let has = |cat: &str| trace.events().iter().any(|e| e.cat == cat);
    assert!(has("queue"), "queue wait spans");
    assert!(has("admit"), "admission instants");
    assert!(has("shed"), "shed instants");
    assert!(has("cancelled"), "cancellation instants");
    // The completed chain's own lanes were absorbed under its label.
    assert!(trace
        .process_labels()
        .iter()
        .any(|l| l.starts_with("runner/")));
    let stats = validate_chrome_trace(&trace.to_chrome_json())
        .expect("workload trace must export as valid Chrome JSON");
    assert!(stats.events > 0);
}

#[test]
fn session_api_steps_match_run_chain() {
    // The stepwise session the scheduler drives is the same machine
    // run_chain wraps: stepping a session by hand produces the identical
    // outcome, metrics included.
    use ysmart_mapred::{chain_seed, ChainSession, ChainStep};
    let c = chain("x", 3);
    let mut cluster = Cluster::new(ClusterConfig::default());
    load(&mut cluster);
    let expected = run_chain(&mut cluster, &c).expect("run_chain");

    let mut cluster2 = Cluster::new(ClusterConfig::default());
    load(&mut cluster2);
    let mut session = ChainSession::new(chain_seed(&c));
    let mut steps = 0;
    loop {
        match session.step(&mut cluster2, &c) {
            ChainStep::Advanced | ChainStep::Backoff { .. } => steps += 1,
            ChainStep::Finished => break,
            ChainStep::Failed => panic!("clean chain must not fail"),
        }
    }
    assert_eq!(steps, 2, "three jobs = two advances + one finish");
    let outcome = session.into_outcome();
    assert_eq!(outcome.metrics, expected.metrics);
    assert_eq!(outcome.final_output, expected.final_output);
}

#[test]
fn drain_sheds_queued_queries_with_typed_draining() {
    // One slot, three queries at t=0: q0 admits, q1/q2 queue. Draining
    // mid-q0 must shed the queued queries with the typed `Draining` error
    // (the queue is nowhere near full — `QueueFull` would be a lie) at
    // exactly the drain instant, while the in-flight chain runs to
    // completion untouched.
    let mut solo_cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut solo_cluster);
    let solo = run_chain(&mut solo_cluster, &chain("q0", 2)).expect("solo chain");
    let drain_at = solo.metrics.total_s() * 0.5;

    let mut cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut cluster);
    let mut config = two_tenants(1);
    config.drain_at_s = Some(drain_at);
    let report = run_workload(
        &mut cluster,
        &config,
        vec![
            request("alpha", "q0", 2, 1, 0.0),
            request("alpha", "q1", 1, 2, 0.0),
            request("beta", "q2", 1, 3, 0.0),
        ],
    );
    let [a, b, c] = &report.reports[..] else {
        panic!("three reports expected");
    };

    // In-flight work drains to completion, bit-identical to a solo run.
    let Disposition::Completed(out) = &a.disposition else {
        panic!("in-flight chain must complete, got {:?}", a.disposition);
    };
    assert_eq!(out.metrics, solo.metrics);

    // Queued-but-unstarted queries get the deterministic drain disposition.
    for (r, name) in [(b, "q1"), (c, "q2")] {
        assert!(
            matches!(&r.disposition, Disposition::Shed(MapRedError::Draining)),
            "{name}: expected Draining shed, got {:?}",
            r.disposition
        );
        assert!(r.admitted_s.is_none(), "{name} must never have run");
        assert!(
            (r.done_s - drain_at).abs() < 1e-9,
            "{name} must be shed at the drain instant, got {}",
            r.done_s
        );
    }
}

#[test]
fn arrivals_at_or_after_the_drain_instant_are_shed() {
    // Admission closes at the drain instant: a query arriving later is
    // shed with `Draining` immediately at its own submit time — before
    // any queue-capacity or tenant check.
    let mut cluster = Cluster::new(ClusterConfig::default());
    load(&mut cluster);
    let mut config = two_tenants(2);
    config.drain_at_s = Some(5.0);
    let report = run_workload(
        &mut cluster,
        &config,
        vec![
            request("alpha", "early", 1, 1, 0.0),
            request("beta", "late", 1, 2, 9.0),
        ],
    );
    let [early, late] = &report.reports[..] else {
        panic!("two reports expected");
    };
    assert!(
        matches!(early.disposition, Disposition::Completed(_)),
        "pre-drain arrival must run, got {:?}",
        early.disposition
    );
    assert!(
        matches!(late.disposition, Disposition::Shed(MapRedError::Draining)),
        "post-drain arrival must be shed, got {:?}",
        late.disposition
    );
    assert!((late.done_s - 9.0).abs() < 1e-9, "shed at its submit time");
}

#[test]
fn draining_is_distinct_from_queue_full() {
    // The two shed reasons must stay distinguishable: a full queue without
    // drain sheds `QueueFull`; drain sheds `Draining`.
    let mut cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut cluster);
    let mut config = two_tenants(1);
    config.tenants[0].queue_capacity = 1;
    let requests: Vec<QueryRequest> = (0..4)
        .map(|i| request("alpha", &format!("q{i}"), 2, i as u64, 0.0))
        .collect();
    let report = run_workload(&mut cluster, &config, requests);
    let full: Vec<bool> = report
        .reports
        .iter()
        .map(|r| {
            matches!(
                &r.disposition,
                Disposition::Shed(MapRedError::QueueFull { .. })
            )
        })
        .collect();
    assert_eq!(full, [false, false, true, true], "overflow sheds QueueFull");
    assert!(
        !report
            .reports
            .iter()
            .any(|r| matches!(&r.disposition, Disposition::Shed(MapRedError::Draining))),
        "no drain was requested"
    );
}

#[test]
fn drain_wins_over_queue_full_at_the_same_instant() {
    // Pins the tiebreak when both shed reasons apply at once: a query that
    // arrives exactly at `drain_at_s`, aimed at a queue that is already
    // full at that same instant, must be shed `Draining` — the drain check
    // runs before any capacity check, so the report never flips to
    // `QueueFull` under reordering of same-instant events. Exercised for
    // both tenants so weights play no part in the answer.
    let mut cluster = Cluster::new(ClusterConfig {
        size_multiplier: 50_000.0,
        ..ClusterConfig::default()
    });
    load(&mut cluster);
    let mut config = two_tenants(1);
    config.tenants[0].queue_capacity = 1;
    config.tenants[1].queue_capacity = 1;
    config.drain_at_s = Some(5.0);
    let report = run_workload(
        &mut cluster,
        &config,
        vec![
            // t=0: fills the slot (long chain, still running at t=5).
            request("alpha", "running", 3, 1, 0.0),
            // t=0: fill both tenants' queues to capacity.
            request("alpha", "queued-a", 1, 2, 0.0),
            request("beta", "queued-b", 1, 3, 0.0),
            // t=5 — the drain instant — into full queues.
            request("alpha", "at-drain-a", 1, 4, 5.0),
            request("beta", "at-drain-b", 1, 5, 5.0),
        ],
    );
    for r in &report.reports[3..] {
        assert!(
            matches!(&r.disposition, Disposition::Shed(MapRedError::Draining)),
            "{}: arrival at the drain instant must shed Draining even with \
             a full queue, got {:?}",
            r.label,
            r.disposition
        );
        assert!((r.done_s - 5.0).abs() < 1e-9, "shed at the drain instant");
    }
    // The queued work admitted before the drain is itself shed Draining at
    // the drain instant (not QueueFull), and nothing reports QueueFull.
    assert!(
        !report.reports.iter().any(|r| matches!(
            &r.disposition,
            Disposition::Shed(MapRedError::QueueFull { .. })
        )),
        "no QueueFull may surface once draining"
    );
}
