//! Crash recovery integration tests: every journal byte prefix is a valid
//! recovery point that replays to a workload bit-identical to the
//! uninterrupted run; suspended chain sessions resume bit-identically at
//! every step; the journal codec survives adversarial bytes.

use proptest::prelude::*;
use ysmart_mapred::journal::{recover, Journal, JournalRecord, JOURNAL_MAGIC};
use ysmart_mapred::scheduler::{
    run_workload_journaled, run_workload_recovered, Disposition, QueryRequest, SchedulerConfig,
    TenantSpec, WorkloadReport,
};
use ysmart_mapred::{
    ChainSession, ChainStep, Cluster, ClusterConfig, CorruptionModel, FailureModel, JobChain,
    JobSpec, MapOutput, MapRedError, Mapper, NodeFailureModel, ReduceOutput, Reducer, RetryPolicy,
    StragglerModel,
};
use ysmart_rel::{row, Row};

struct KvMapper;
impl Mapper for KvMapper {
    fn map(&mut self, line: &str, out: &mut MapOutput) {
        let parsed = line
            .split_once('|')
            .and_then(|(k, v)| Some((k.parse::<i64>().ok()?, v.parse::<i64>().ok()?)));
        match parsed {
            Some((k, v)) => out.emit(row![k], row![v]),
            None => out.record_bad(),
        }
    }
}

struct SumReducer;
impl Reducer for SumReducer {
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
        let s: i64 = values
            .iter()
            .map(|v| v.get(0).unwrap().as_int().unwrap())
            .sum();
        out.emit_line(format!("{}|{s}", key.get(0).unwrap()));
    }
}

fn sum_job(name: &str, input: &str, output: &str) -> JobSpec {
    JobSpec::builder(name)
        .input(input, || Box::new(KvMapper))
        .reducer(|| Box::new(SumReducer))
        .output(output)
        .reduce_tasks(3)
        .build()
}

fn chain(tag: &str, jobs: usize) -> JobChain {
    let mut c = JobChain::new();
    let mut input = "data/t".to_string();
    for j in 0..jobs {
        let output = if j + 1 == jobs {
            format!("out/{tag}")
        } else {
            format!("tmp/{tag}-{j}")
        };
        c.push(sum_job(&format!("{tag}-j{j}"), &input, &output));
        input.clone_from(&output);
    }
    c
}

fn load(c: &mut Cluster) {
    let lines: Vec<String> = (0..300).map(|i| format!("{}|1", i % 15)).collect();
    c.load_table("t", lines);
}

/// The determinism suite's fault soup: stragglers, task failures, node
/// loss, byte corruption, jittered retries — so the journal sweep covers
/// retried attempts and failure dispositions, not just the happy path.
fn faulty_config(threads: Option<usize>, seed: u64) -> ClusterConfig {
    ClusterConfig {
        nodes: 6,
        hdfs_block_mb: 0.0003,
        size_multiplier: 20_000.0,
        exec_threads: threads,
        stragglers: Some(StragglerModel {
            probability: 0.2,
            slowdown: 5.0,
            speculative: true,
            seed,
        }),
        failures: Some(FailureModel {
            probability: 0.1,
            seed: seed ^ 0xBEEF,
        }),
        node_failures: Some(NodeFailureModel {
            probability: 0.05,
            seed: seed ^ 0xF00D,
        }),
        corruption: Some(CorruptionModel {
            block_rate: 0.03,
            segment_rate: 0.03,
            record_rate: 0.01,
            seed: seed ^ 0xC0DE,
        }),
        skip_bad_records: 1_000_000,
        retry: Some(RetryPolicy {
            max_retries: 8,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
            jitter: 0.5,
            ..RetryPolicy::default()
        }),
        ..ClusterConfig::default()
    }
}

fn sched_config() -> SchedulerConfig {
    SchedulerConfig {
        max_running: 2,
        tenants: vec![
            TenantSpec::new("alpha", 4, 16).weight(2),
            TenantSpec::new("beta", 4, 16),
        ],
        trace: false,
        drain_at_s: None,
    }
}

/// The sweep workload: two tenants, chains of 1–3 jobs, one query with a
/// deadline tight enough to cancel under the fault soup.
fn requests() -> Vec<QueryRequest> {
    (0..5)
        .map(|i| {
            let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
            QueryRequest {
                tenant: tenant.into(),
                label: format!("q{i}"),
                chain: chain(&format!("q{i}"), 1 + i % 3),
                seed: 1000 + i as u64,
                deadline_s: if i == 3 { Some(8.0) } else { Some(10_000.0) },
                submit_s: i as f64,
            }
        })
        .collect()
}

/// Bit-faithful per-query summary: disposition, timings, metrics (f64
/// Debug is shortest-roundtrip, so distinct bits render distinctly) and
/// sorted output rows for completions.
fn summarize(cluster: &Cluster, report: &WorkloadReport) -> Vec<String> {
    report
        .reports
        .iter()
        .map(|r| {
            let rows = match &r.disposition {
                Disposition::Completed(o) => {
                    let mut lines = cluster.hdfs.get(&o.final_output).unwrap().lines.clone();
                    lines.sort();
                    lines.join(",")
                }
                other => format!("{other:?}"),
            };
            format!(
                "{} admitted={:?} done={} metrics={:?} rows={rows}",
                r.label,
                r.admitted_s,
                r.done_s,
                r.metrics()
            )
        })
        .collect()
}

/// Runs the baseline workload with a journal; returns the journal bytes
/// and the uninterrupted summary.
fn journaled_baseline() -> (Vec<u8>, Vec<String>) {
    let mut cluster = Cluster::new(faulty_config(Some(2), 42));
    load(&mut cluster);
    let mut journal = Journal::in_memory();
    let report = run_workload_journaled(&mut cluster, &sched_config(), requests(), &mut journal);
    let summary = summarize(&cluster, &report);
    (journal.bytes().to_vec(), summary)
}

/// Offsets of every record frame boundary (including the magic-only
/// prefix and the full length).
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![JOURNAL_MAGIC.len()];
    let mut off = JOURNAL_MAGIC.len();
    while off + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 12 + len;
        boundaries.push(off);
    }
    assert_eq!(*boundaries.last().unwrap(), bytes.len());
    boundaries
}

fn job_done_count(records: &[JournalRecord]) -> usize {
    records
        .iter()
        .filter(|r| matches!(r, JournalRecord::JobDone { .. }))
        .count()
}

/// The headline guarantee: kill the workload at any journaled commit
/// point, recover from the byte prefix, and the replayed workload is
/// bit-identical to the uninterrupted run — dispositions, timings, full
/// metrics and result rows — while fast-forwarding exactly the journaled
/// jobs and re-executing only work past the last checkpoint.
#[test]
fn every_journal_prefix_replays_bit_identically() {
    let (bytes, baseline) = journaled_baseline();
    let boundaries = frame_boundaries(&bytes);
    let total_commits = {
        let full = recover(&bytes).unwrap();
        job_done_count(&full.records)
    };
    assert!(total_commits >= 3, "sweep needs several commit points");
    for &cut in &boundaries {
        let recovered = recover(&bytes[..cut]).unwrap();
        assert_eq!(recovered.valid_len, cut);
        let mut cluster = Cluster::new(faulty_config(Some(2), 42));
        load(&mut cluster);
        let mut epoch = Journal::in_memory();
        let (report, stats) = run_workload_recovered(
            &mut cluster,
            &sched_config(),
            requests(),
            &recovered.records,
            Some(&mut epoch),
        );
        let summary = summarize(&cluster, &report);
        assert_eq!(summary, baseline, "divergence recovering at byte {cut}");
        // Replayed exactly the journaled commits; executed only the rest.
        assert_eq!(
            stats.jobs_replayed,
            job_done_count(&recovered.records),
            "fast-forward count at byte {cut}"
        );
        assert_eq!(
            stats.jobs_replayed + stats.jobs_executed,
            total_commits,
            "wasted work at byte {cut}"
        );
        // The new epoch re-journals the identical record stream, so a
        // second crash recovers from the same structure.
        let rejournaled = recover(epoch.bytes()).unwrap();
        let full = recover(&bytes).unwrap();
        assert_eq!(
            format!("{:?}", rejournaled.records),
            format!("{:?}", full.records),
            "re-journaled epoch diverged at byte {cut}"
        );
    }
}

/// A cut *inside* a frame is a torn tail: recovery truncates to the
/// preceding boundary — never a panic, never a garbage record.
#[test]
fn torn_cuts_truncate_to_the_previous_boundary() {
    let (bytes, _) = journaled_baseline();
    let boundaries = frame_boundaries(&bytes);
    for (i, &b) in boundaries.iter().enumerate().skip(1) {
        let prev = boundaries[i - 1];
        for cut in [prev + 1, prev + 7, b - 1] {
            if cut <= prev || cut >= b {
                continue;
            }
            let recovered = recover(&bytes[..cut]).unwrap();
            assert_eq!(recovered.valid_len, prev, "torn cut at byte {cut}");
            assert_eq!(recovered.truncated_bytes, cut - prev);
        }
    }
}

/// Suspend/resume property (exhaustive): cloning a [`ChainSession`] and
/// its [`Cluster`] at *every* step boundary and resuming the clones yields
/// results, metrics and trace JSON bit-identical to the uninterrupted
/// run, across serial, fixed and auto thread pools.
#[test]
fn chain_session_suspends_and_resumes_bit_identically_at_every_step() {
    for threads in [Some(1), Some(4), None] {
        let jobs = chain("s", 3);
        let baseline = run_session_to_end(ChainSession::new(7), fresh_cluster(threads), &jobs);
        // Count baseline steps by re-running.
        let total_steps = baseline.2;
        assert!(total_steps >= 3, "chain should take several steps");
        for suspend_at in 0..total_steps {
            let mut session = ChainSession::new(7);
            let mut cluster = fresh_cluster(threads);
            for _ in 0..suspend_at {
                let step = session.step(&mut cluster, &jobs);
                assert!(
                    matches!(step, ChainStep::Advanced | ChainStep::Backoff { .. }),
                    "chain ended before the suspension point"
                );
            }
            // Suspend: the clones are the snapshot; the originals are
            // dropped (a crashed process).
            let resumed = run_session_to_end(session.clone(), cluster.clone(), &jobs);
            assert_eq!(
                (&resumed.0, &resumed.1),
                (&baseline.0, &baseline.1),
                "resume diverged (threads {threads:?}, suspended at step {suspend_at})"
            );
            assert_eq!(
                suspend_at + resumed.2,
                total_steps,
                "resume repeated or skipped steps (threads {threads:?}, at {suspend_at})"
            );
        }
    }
}

fn fresh_cluster(threads: Option<usize>) -> Cluster {
    let mut c = Cluster::new(faulty_config(threads, 42));
    load(&mut c);
    c.enable_tracing();
    c
}

/// Steps a session to its end; returns (summary, trace JSON, steps
/// taken). The summary covers outcome, final rows and full metrics.
fn run_session_to_end(
    mut session: ChainSession,
    mut cluster: Cluster,
    jobs: &JobChain,
) -> (String, String, usize) {
    let mut steps = 0;
    loop {
        let step = session.step(&mut cluster, jobs);
        steps += 1;
        match step {
            ChainStep::Advanced | ChainStep::Backoff { .. } => {}
            ChainStep::Finished => {
                let outcome = session.into_outcome();
                let mut rows = cluster
                    .hdfs
                    .get(&outcome.final_output)
                    .unwrap()
                    .lines
                    .clone();
                rows.sort();
                let trace = cluster.take_trace().map(|t| t.to_chrome_json());
                return (
                    format!("ok metrics={:?} rows={}", outcome.metrics, rows.join(",")),
                    trace.unwrap_or_default(),
                    steps,
                );
            }
            ChainStep::Failed => {
                let failure = session.into_failure(&mut cluster);
                let trace = cluster.take_trace().map(|t| t.to_chrome_json());
                return (
                    format!("err {:?} metrics={:?}", failure.error, failure.metrics),
                    trace.unwrap_or_default(),
                    steps,
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The journal codec never panics, whatever bytes it is fed.
    #[test]
    fn recover_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = recover(&bytes);
    }

    /// Flipping any byte of a valid journal yields a typed error or a
    /// clean record prefix — never a panic, never extra records.
    #[test]
    fn byte_flips_never_admit_garbage(pos in 0usize..10_000, xor in 1u8..=255) {
        let (bytes, _) = journal_fixture();
        let n = recover(&bytes).unwrap().records.len();
        let mut mutated = bytes.clone();
        let pos = pos % mutated.len();
        mutated[pos] ^= xor;
        match recover(&mutated) {
            Err(MapRedError::JournalCorrupt { .. }) => {}
            Err(e) => panic!("unexpected error class: {e}"),
            Ok(r) => prop_assert!(r.records.len() <= n),
        }
    }
}

/// A small cached journal for the byte-flip property (building one is
/// expensive relative to a proptest case).
fn journal_fixture() -> (Vec<u8>, Vec<String>) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(Vec<u8>, Vec<String>)> = OnceLock::new();
    FIXTURE.get_or_init(journaled_baseline).clone()
}
