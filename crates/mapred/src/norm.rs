//! Order-preserving byte encoding of shuffle keys ("normalized keys").
//!
//! The map-side sort, the shuffle's k-way merge and the reducer's key
//! grouping all order pairs by `(key, value)` under [`Value`]'s total
//! order. Comparing `Row`s directly walks two `Vec<Value>`s with an enum
//! dispatch per element — the single hottest comparison in the engine.
//! This module encodes each **key** once into a byte string whose `memcmp`
//! order equals the key order, so the dominant comparison — keys are
//! almost always distinct — is a plain slice compare (Hadoop does the same
//! with `WritableComparator` raw-byte comparisons), and key-group
//! boundaries are byte-equality scans. Only pairs whose keys tie fall back
//! to comparing value `Row`s. Values are deliberately *not* encoded: they
//! are several times wider than keys, and measuring showed encoding them
//! costs more than the byte compares save.
//!
//! Per value: a rank tag byte (`Null < Bool < numeric < Str`, exactly
//! [`Value::cmp`]'s rank) followed by an order-preserving payload:
//!
//! * `Bool` — one byte.
//! * numeric — the value as a sign-flipped big-endian `f64` (the order
//!   [`Value::cmp`] gives mixed `Int`/`Float`), then the exact `i64` the
//!   same way as a tiebreak so equal-as-float integers still sort exactly
//!   (`Int(7)` and `Float(7.0)` encode identically, as they compare
//!   `Equal`; `-0.0` is normalized to `0.0` for the same reason).
//! * `Str` — the UTF-8 bytes with `0x00` escaped as `0x00 0xFF`,
//!   terminated by `0x00 0x00`, preserving byte-wise string order.
//!
//! Every encoding is prefix-free, so concatenating a row's value
//! encodings compares element-wise like `Vec<Value>`'s lexicographic
//! order (a shorter row that is a prefix of a longer one sorts first,
//! matching `Vec`'s length tiebreak). Equal values encode to equal bytes,
//! so grouping by encoded-key equality is grouping by key equality.
//!
//! The only divergence from `Value::cmp` is where that order is itself
//! not transitive: integers beyond 2^53 whose `f64` images collide with a
//! `Float` key compare `Equal` to it element-wise but unequal to each
//! other. The encoding resolves such ties exactly (by the integer), which
//! keeps the key order total and deterministic.

use ysmart_rel::{Row, Value};

/// Appends the order-preserving encoding of one value.
pub fn push_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => push_numeric(out, *i as f64, *i),
        Value::Float(f) => {
            // -0.0 == 0.0 under Value's order: normalize so they (and
            // Int(0)) share one encoding.
            let f = if *f == 0.0 { 0.0 } else { *f };
            // Integer-valued floats tie-break by that integer, matching
            // the equal Int's encoding; fractional floats collide with no
            // Int on the f64 part, so their tiebreak is never reached.
            let exact = if f.fract() == 0.0 && f >= -(2f64.powi(63)) && f < 2f64.powi(63) {
                f as i64
            } else {
                0
            };
            push_numeric(out, f, exact);
        }
        Value::Str(s) => {
            out.push(3);
            let bytes = s.as_bytes();
            if bytes.contains(&0) {
                for &b in bytes {
                    out.push(b);
                    if b == 0 {
                        out.push(0xFF);
                    }
                }
            } else {
                out.extend_from_slice(bytes);
            }
            out.extend_from_slice(&[0, 0]);
        }
    }
}

/// Appends the numeric encoding — the rank tag, the sign-flipped
/// big-endian `f64` (byte order equals numeric order for all finite
/// values; non-finite floats never pass the codecs), then the exact `i64`
/// tiebreak the same way — as one 17-byte write.
fn push_numeric(out: &mut Vec<u8>, f: f64, exact: i64) {
    let bits = f.to_bits();
    let enc = if bits >> 63 == 1 {
        !bits
    } else {
        bits | 1 << 63
    };
    let mut buf = [0u8; 17];
    buf[0] = 2;
    buf[1..9].copy_from_slice(&enc.to_be_bytes());
    buf[9..].copy_from_slice(&((exact as u64) ^ 1 << 63).to_be_bytes());
    out.extend_from_slice(&buf);
}

/// Appends the encoding of every value in a row.
pub fn push_row(out: &mut Vec<u8>, row: &Row) {
    for v in row.values() {
        push_value(out, v);
    }
}

/// A run's key encodings packed back-to-back in one buffer — per-key
/// `Vec` allocations would dominate the very comparisons the encoding
/// saves, so a run allocates exactly twice however many keys it holds.
#[derive(Default, Clone)]
pub struct NormArena {
    bytes: Vec<u8>,
    /// Per key: end offset into `bytes`. Key `i` starts where key `i - 1`
    /// ended.
    ends: Vec<u32>,
}

impl NormArena {
    /// An empty arena expecting `keys` entries.
    #[must_use]
    pub fn with_capacity(keys: usize) -> NormArena {
        NormArena {
            bytes: Vec::with_capacity(keys * 24),
            ends: Vec::with_capacity(keys),
        }
    }

    /// Number of encoded keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the arena holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    fn start(&self, i: usize) -> usize {
        if i == 0 {
            0
        } else {
            self.ends[i - 1] as usize
        }
    }

    /// The encoding of key `i` — equal slices ⇔ equal keys, byte order
    /// equals key order.
    #[must_use]
    pub fn key(&self, i: usize) -> &[u8] {
        &self.bytes[self.start(i)..self.ends[i] as usize]
    }

    /// The first eight bytes of key `i`'s encoding, zero-padded, as a
    /// big-endian integer. `prefix8(a) < prefix8(b)` implies key `a`
    /// orders strictly before key `b` (zero-padding is order-safe because
    /// a shorter key that matches a longer one byte-for-byte orders
    /// first, like the padding does); equal prefixes say nothing and the
    /// caller falls back to the full slices. Most keys differ within the
    /// prefix, turning the hot sort comparison into integer compares on a
    /// flat array.
    #[must_use]
    pub fn prefix8(&self, i: usize) -> u64 {
        let k = self.key(i);
        let mut buf = [0u8; 8];
        let n = k.len().min(8);
        buf[..n].copy_from_slice(&k[..n]);
        u64::from_be_bytes(buf)
    }

    /// Encodes every key of a run. The buffer is sized from the first
    /// key's encoded length — runs are overwhelmingly uniform-width, and
    /// growth-doubling a multi-megabyte buffer from a blind guess costs
    /// more memcpy than the encoding itself.
    #[must_use]
    pub fn from_keys(keys: &[Row]) -> NormArena {
        let mut arena = NormArena::with_capacity(keys.len());
        if let Some(k) = keys.first() {
            arena.push_key(k);
            arena.bytes.reserve(arena.bytes.len() * (keys.len() - 1));
            for k in &keys[1..] {
                arena.push_key(k);
            }
        }
        arena
    }

    /// Encodes and appends one key.
    pub fn push_key(&mut self, key: &Row) {
        push_row(&mut self.bytes, key);
        self.ends.push(self.bytes.len() as u32);
    }

    /// Appends an already-encoded key (copied from another arena).
    pub fn push_encoded(&mut self, key: &[u8]) {
        self.bytes.extend_from_slice(key);
        self.ends.push(self.bytes.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::row;

    fn enc(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        push_value(&mut out, v);
        out
    }

    #[test]
    fn encoding_orders_like_value_cmp() {
        // A ladder of values in strictly ascending Value order; every
        // pair's byte order must agree.
        let ladder = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Float(-1e300),
            Value::Int(i64::MIN + 1),
            Value::Int(-5),
            Value::Float(-4.5),
            Value::Int(0),
            Value::Float(0.5),
            Value::Int(1),
            Value::Float(1.5),
            Value::Int(2),
            Value::Int(7_000_000),
            Value::Float(1e300),
            Value::Str(String::new()),
            Value::Str("\0".into()),
            Value::Str("\0a".into()),
            Value::Str("a".into()),
            Value::Str("a\0".into()),
            Value::Str("ab".into()),
            Value::Str("b".into()),
        ];
        for (i, a) in ladder.iter().enumerate() {
            for (j, b) in ladder.iter().enumerate() {
                assert_eq!(
                    enc(a).cmp(&enc(b)),
                    i.cmp(&j),
                    "byte order diverged for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn equal_values_encode_identically() {
        assert_eq!(enc(&Value::Int(7)), enc(&Value::Float(7.0)));
        assert_eq!(enc(&Value::Float(-0.0)), enc(&Value::Float(0.0)));
        assert_eq!(enc(&Value::Float(-0.0)), enc(&Value::Int(0)));
    }

    #[test]
    fn row_concatenation_matches_vec_order() {
        let rows = [
            row![],
            row![Value::Null],
            row![1i64],
            row![1i64, "a"],
            row![1i64, "b"],
            row![2i64],
            row!["a"],
            row!["a", 0i64],
            row!["ab"],
        ];
        let encs: Vec<Vec<u8>> = rows
            .iter()
            .map(|r| {
                let mut out = Vec::new();
                push_row(&mut out, r);
                out
            })
            .collect();
        for (i, a) in rows.iter().enumerate() {
            for (j, b) in rows.iter().enumerate() {
                assert_eq!(
                    encs[i].cmp(&encs[j]),
                    a.cmp(b),
                    "row byte order diverged for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn arena_slices_identify_and_order_keys() {
        let keys = [
            row![1i64, "x"],
            row![1i64, "x"],
            row![1i64, "y"],
            row![2i64],
        ];
        let arena = NormArena::from_keys(&keys);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.key(0), arena.key(1), "equal keys, equal slices");
        assert_ne!(arena.key(0), arena.key(2), "different key");
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                assert_eq!(
                    arena.key(i).cmp(arena.key(j)),
                    a.cmp(b),
                    "arena byte order diverged for {a:?} vs {b:?}"
                );
            }
        }
    }
}
