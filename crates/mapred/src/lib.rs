//! # ysmart-mapred — a deterministic MapReduce cluster simulator
//!
//! This crate is the workspace's Hadoop substitute (the paper ran on Hadoop
//! 0.19/0.20 clusters; reproduction band repro=2 ⇒ no Hadoop available, so
//! we *simulate* it — see DESIGN.md). It plays both roles a real cluster
//! plays:
//!
//! 1. **It actually executes jobs.** [`Mapper`]s and [`Reducer`]s are real
//!    code running over real records; job outputs land in the in-memory
//!    [`Hdfs`] and are bit-for-bit checkable against a relational oracle.
//! 2. **It simulates time.** Every byte read, sorted, spilled, shuffled and
//!    written is charged against a [`ClusterConfig`] cost model (disk and
//!    network bandwidth, per-record CPU, task-startup overhead, slot waves,
//!    HDFS replication, optional map-output compression), yielding
//!    simulated per-phase durations with the same *shape* as wall-clock
//!    times on the paper's clusters. `size_multiplier` lets a small real
//!    dataset stand in for a 10 GB/100 GB/1 TB one: the data processed is
//!    real, the bytes charged are scaled.
//!
//! The execution semantics mirror Hadoop's:
//!
//! * map output is partitioned by a stable hash of the key, sorted within
//!   each partition, optionally run through a [`Combiner`], and spilled to
//!   (simulated) local disks — the materialisation policy whose cost the
//!   paper's merging rules exist to avoid;
//! * reducers fetch their partition from every map task over the network,
//!   merge, group by key and stream each group through the reducer;
//! * job chains materialise every intermediate result to HDFS
//!   ([`chain::run_chain`]), with configurable inter-job scheduler latency
//!   and a contention model reproducing the Facebook production dynamics of
//!   §VII-F;
//! * tasks can be killed by a seeded failure injector and are re-executed,
//!   like Hadoop's re-execution of tasks on TaskTracker failure;
//! * whole worker nodes can die mid-job ([`NodeFailureModel`]), losing
//!   their local map outputs: surviving nodes re-execute the lost tasks and
//!   reducers re-fetch that share of the shuffle. Chains recover from
//!   failed job attempts under a [`RetryPolicy`] with exponential backoff,
//!   resuming from the last checkpointed job output in HDFS. Injected
//!   faults change simulated time, never query results;
//! * a [`CorruptionModel`] flips actual *bytes*: HDFS blocks are checksummed
//!   with replica failover, shuffle segments are verified on fetch and
//!   re-fetched on mismatch, torn input records are skipped under a budget,
//!   and failing nodes are blacklisted ([`BlacklistPolicy`]) — recovery is
//!   charged in simulated time while results stay bit-identical, because
//!   only checksum-clean canonical bytes ever reach the computation;
//! * a multi-tenant [`scheduler`] co-runs many chains over the shared slot
//!   pool with bounded admission queues, per-query deadlines with clean
//!   cancellation, weighted fair-share slot allocation and per-tenant retry
//!   budgets — the production contention setting of §VII-F, as a
//!   deterministic discrete-event simulation;
//! * the workload is crash-safe: a checksummed append-only [`journal`]
//!   records admissions, per-job commits (with materialized outputs) and
//!   terminal dispositions, so a restarted process replays the workload
//!   deterministically ([`scheduler::run_workload_recovered`]),
//!   fast-forwarding journaled jobs and re-executing only work past the
//!   last checkpoint — results and metrics bit-identical to an
//!   uninterrupted run. A drain mode sheds new and queued work with typed
//!   [`MapRedError::Draining`] for graceful shutdown.

pub mod chain;
pub mod config;
pub mod engine;
pub mod error;
pub mod hash;
pub mod hdfs;
pub mod job;
pub mod journal;
pub mod metrics;
pub mod norm;
pub mod reuse;
pub mod scheduler;
pub mod trace;

pub use chain::{
    chain_seed, retryable, run_chain, ChainFailure, ChainOutcome, ChainSession, ChainStep,
    JobChain, ReplayedJob,
};
pub use config::{
    BlacklistPolicy, ClusterConfig, Compression, ContentionModel, CorruptionModel, DataFormat,
    FailureModel, NodeFailureModel, RetryPolicy, StragglerModel,
};
pub use engine::{run_job, run_job_attempt, AttemptFailure, Cluster};
pub use error::MapRedError;
pub use hdfs::{
    file_checksum, read_block_verified, read_frame_verified, BlockRead, DataFile, Hdfs,
};
pub use job::{
    Combiner, JobInput, JobSpec, MapOutput, Mapper, MapperFactory, ReduceEmit, ReduceOutput,
    Reducer, ReducerFactory,
};
pub use journal::{recover, DispositionKind, Journal, JournalRecord, Recovered, JOURNAL_MAGIC};
pub use metrics::{ChainMetrics, JobMetrics};
pub use reuse::{config_epoch, ReuseCache, ReuseConfig, ReuseStats};
pub use scheduler::{
    run_workload, run_workload_journaled, run_workload_recovered, run_workload_reusing,
    Disposition, QueryReport, QueryRequest, RecoveryStats, SchedulerConfig, TenantSpec,
    WorkloadReport,
};
pub use trace::{validate_chrome_trace, ArgValue, Trace, TraceEvent, TraceStats};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MapRedError>;
