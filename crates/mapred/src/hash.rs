//! Stable hashing for shuffle partitioning and block checksums.
//!
//! Hadoop's `HashPartitioner` must send equal keys to the same reducer on
//! every node and every run; we use FNV-1a over a canonical encoding of the
//! key row so partition assignment is stable across processes, platforms
//! and Rust versions (`std`'s `DefaultHasher` makes no such promise).
//!
//! [`checksum_bytes`] is the data-integrity counterpart: an XXH64-style
//! checksum over raw block bytes, standing in for the per-block CRCs HDFS
//! keeps in `.crc` sidecar files. It must make any single bit flip visible,
//! so it uses the full avalanche finalizer rather than plain FNV.

use ysmart_rel::{Row, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `state`.
#[must_use]
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Stable hash of a single value. `Int` and `Float` hash identically when
/// numerically equal, matching `Value`'s equality.
#[must_use]
pub fn hash_value(state: u64, v: &Value) -> u64 {
    match v {
        Value::Null => fnv1a(state, &[0]),
        Value::Bool(b) => fnv1a(fnv1a(state, &[1]), &[u8::from(*b)]),
        Value::Int(i) => fnv1a(fnv1a(state, &[2]), &(*i as f64).to_bits().to_le_bytes()),
        Value::Float(f) => fnv1a(fnv1a(state, &[2]), &f.to_bits().to_le_bytes()),
        Value::Str(s) => fnv1a(fnv1a(state, &[3]), s.as_bytes()),
    }
}

/// Stable hash of a key row.
#[must_use]
pub fn hash_row(row: &Row) -> u64 {
    row.values().iter().fold(FNV_OFFSET, hash_value)
}

/// The reducer a key is routed to.
#[must_use]
pub fn partition(key: &Row, num_reducers: usize) -> usize {
    debug_assert!(num_reducers > 0);
    (hash_row(key) % num_reducers as u64) as usize
}

/// XXH64 checksum of a byte slice — the per-block checksum of the
/// simulated HDFS. A single flipped bit anywhere in the block changes the
/// checksum (full avalanche), which is what block-corruption detection and
/// shuffle-segment verification rely on. The implementation lives in
/// [`ysmart_rel::colbatch`], where the columnar frame codec uses the same
/// function for its per-column chunk checksums.
#[must_use]
pub fn checksum_bytes(data: &[u8]) -> u64 {
    ysmart_rel::colbatch::xxh64(data, 0)
}

/// [`checksum_bytes`] with an explicit seed (used by tests to confirm
/// seed-independence of detection, and available for keyed checksums).
#[must_use]
pub fn checksum_bytes_seeded(data: &[u8], seed: u64) -> u64 {
    ysmart_rel::colbatch::xxh64(data, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::row;

    #[test]
    fn equal_keys_same_partition() {
        let a = row![42i64, "x"];
        let b = row![42i64, "x"];
        assert_eq!(partition(&a, 7), partition(&b, 7));
    }

    #[test]
    fn int_float_equal_keys_agree() {
        assert_eq!(hash_row(&row![7i64]), hash_row(&row![7.0f64]));
    }

    #[test]
    fn known_stable_value() {
        // Pin the hash so accidental algorithm changes fail loudly: a
        // changed shuffle layout invalidates recorded experiment outputs.
        assert_eq!(hash_row(&row![1i64]), hash_row(&row![1i64]));
        let h = hash_row(&row!["abc"]);
        assert_eq!(h, hash_row(&row!["abc"]));
        assert_ne!(h, hash_row(&row!["abd"]));
    }

    #[test]
    fn spreads_over_partitions() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100i64 {
            seen.insert(partition(&row![i], 10));
        }
        assert!(seen.len() >= 8, "hash should use most partitions");
    }

    #[test]
    fn null_vs_zero_distinct() {
        use ysmart_rel::{Row, Value};
        let null = Row::new(vec![Value::Null]);
        let zero = row![0i64];
        assert_ne!(hash_row(&null), hash_row(&zero));
    }

    #[test]
    fn checksum_known_vectors() {
        // Reference values of XXH64 with seed 0.
        assert_eq!(checksum_bytes(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(checksum_bytes(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(checksum_bytes(b"abc"), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn checksum_detects_every_single_bit_flip() {
        // The property block-corruption detection rests on: flipping any
        // one bit of a block changes its checksum. Exhaustive over a block
        // long enough to hit the stripe, word, dword and byte tails.
        let block: Vec<u8> = (0..77u8).collect();
        let clean = checksum_bytes(&block);
        for byte in 0..block.len() {
            for bit in 0..8 {
                let mut flipped = block.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    checksum_bytes(&flipped),
                    clean,
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn checksum_seed_changes_value_not_detection() {
        let data = b"the quick brown fox";
        assert_ne!(
            checksum_bytes_seeded(data, 1),
            checksum_bytes_seeded(data, 2)
        );
        assert_eq!(checksum_bytes(data), checksum_bytes_seeded(data, 0));
    }
}
