//! Cluster configuration and cost model.
//!
//! Presets mirror the paper's three experimental platforms (§VII-B): the
//! two-node local cluster, the Amazon EC2 small-instance clusters (11 and
//! 101 nodes) and the 747-node Facebook production cluster.

/// Map-output compression model (Fig. 11 evaluates jobs with and without
/// it; the paper found compression *hurt* in isolated clusters because the
/// CPU cost outweighed the network savings, which this model reproduces).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Compression {
    /// Compressed size / raw size, e.g. `0.35` (the paper's Q17 reduce
    /// input went from 11.09 GB to 3.87 GB ≈ 0.35).
    pub ratio: f64,
    /// CPU seconds charged per raw gigabyte compressed (and again per raw
    /// gigabyte decompressed on the reduce side).
    pub cpu_s_per_gb: f64,
}

impl Default for Compression {
    fn default() -> Self {
        Compression {
            ratio: 0.35,
            cpu_s_per_gb: 22.0,
        }
    }
}

/// Production-cluster dynamics (§VII-F): co-running workloads steal slots
/// and delay job launches, and the effect grows with the number of jobs a
/// query needs — the mechanism behind YSmart's larger speedups on the
/// Facebook cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionModel {
    /// Fraction of task slots available to this query (0–1].
    pub slot_share: f64,
    /// Maximum extra scheduling gap before each job launch, in seconds
    /// (the paper observed gaps up to 5.4 minutes).
    pub max_scheduling_gap_s: f64,
    /// Multiplier on task durations from CPU/disk interference (≥ 1).
    pub task_slowdown: f64,
    /// Seed for the gap sampler.
    pub seed: u64,
}

/// Straggler model with optional speculative execution. MapReduce's
/// original fault-tolerance story (Dean & Ghemawat §3.6) includes *backup
/// tasks*: when a task runs far slower than its peers (a straggler — bad
/// disk, co-located load), the framework schedules a duplicate and takes
/// whichever finishes first. Stragglers here are sampled per task with a
/// seeded RNG; with `speculative` enabled the straggler's effective time is
/// capped near the normal task time (the backup wins). The backup's
/// duplicated work occupies otherwise-idle slots, so it is charged to
/// [`crate::metrics::JobMetrics::speculative_slot_s`] (cluster slot-seconds)
/// rather than to the job's wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerModel {
    /// Probability that a task is a straggler.
    pub probability: f64,
    /// Time multiplier a straggler suffers (e.g. 6.0).
    pub slowdown: f64,
    /// Whether backup tasks are launched (Hadoop's speculative execution).
    pub speculative: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Seeded task-failure injector: each task attempt fails independently with
/// `probability`; failed attempts are re-executed (up to 4 attempts, as
/// Hadoop) and their wasted time is charged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Per-attempt failure probability in `[0, 1)`.
    pub probability: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Seeded whole-node failure injector. During each job attempt every worker
/// node dies independently with `probability` (a TaskTracker crash, as
/// Hadoop's JobTracker detects via missed heartbeats). A dead node takes its
/// completed map outputs with it — they live on the node's local disk, not
/// in HDFS — so every task the node ran is re-executed on the survivors and
/// reduce tasks re-fetch the re-executed share of the shuffle. All of that
/// is charged in simulated time; results never change because the real
/// computation is re-run identically. If *all* nodes die the attempt fails
/// with [`crate::MapRedError::ClusterLost`] and only the chain-level
/// [`RetryPolicy`] can recover it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailureModel {
    /// Per-node, per-job-attempt death probability in `[0, 1)`.
    pub probability: f64,
    /// RNG seed (draws also vary with the job and the attempt index, so a
    /// retried job sees fresh failures).
    pub seed: u64,
}

/// Chain-level retry with exponential backoff. When a job attempt dies with
/// a retryable error ([`crate::MapRedError::TooManyFailures`],
/// [`crate::MapRedError::DiskFull`], [`crate::MapRedError::ClusterLost`] or
/// [`crate::MapRedError::CorruptBlock`]),
/// [`crate::chain::run_chain`] waits out the backoff in simulated time and
/// re-runs *that job only*: outputs of earlier jobs already sit in HDFS, so
/// the chain recovers from its last checkpoint instead of restarting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed per job (beyond its first attempt).
    pub max_retries: usize,
    /// Backoff before the first retry, simulated seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_factor: f64,
    /// Ceiling on any single backoff wait, simulated seconds. Without a cap
    /// the exponential grows without bound (`30 × 2¹⁰` is already over
    /// 8 hours) and a long retry series spends its whole budget waiting.
    pub max_backoff_s: f64,
    /// Fraction of each backoff randomised away by
    /// [`RetryPolicy::backoff_jittered_s`], in `[0, 1]`. `0` (the default)
    /// keeps the plain exponential schedule. Co-running chains that fail
    /// together would otherwise retry in lockstep and collide again — the
    /// classic retry-storm resonance; jitter derived from each chain's seed
    /// spreads them out deterministically, never from thread timing.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_s: 30.0,
            backoff_factor: 2.0,
            max_backoff_s: 600.0,
            jitter: 0.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry number `retry` (0-based), capped at
    /// [`RetryPolicy::max_backoff_s`].
    #[must_use]
    pub fn backoff_s(&self, retry: usize) -> f64 {
        let raw = self.backoff_base_s
            * self
                .backoff_factor
                .powi(i32::try_from(retry).unwrap_or(i32::MAX));
        // `raw` can overflow to +inf for large retry indices; the cap also
        // normalises that case to a finite wait.
        raw.min(self.max_backoff_s)
    }

    /// [`RetryPolicy::backoff_s`] with decorrelation jitter: up to
    /// [`RetryPolicy::jitter`] of the wait is shaved off by a uniform draw
    /// hashed from `(seed, retry)` — full-jitter-down, so the result never
    /// exceeds the plain schedule or the cap. The seed must come from the
    /// chain (not wall clock or thread identity) so runs stay bit-identical
    /// for any thread count while distinct chains still de-synchronise.
    #[must_use]
    pub fn backoff_jittered_s(&self, retry: usize, seed: u64) -> f64 {
        let base = self.backoff_s(retry);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return base;
        }
        // splitmix64 finaliser over the (seed, retry) mix — the same
        // stateless per-index derivation the engine uses for task RNGs.
        let mut z = seed
            ^ (retry as u64)
                .wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // uniform [0, 1)
        base * (1.0 - jitter * unit)
    }
}

/// Seeded data-corruption injector: unlike every other fault model, this
/// one perturbs *bytes*, not clocks. Three independent corruption sites
/// mirror where real Hadoop deployments lose data integrity:
///
/// * **blocks at rest** — each replica of each HDFS block read by a map
///   task is independently corrupted with `block_rate` (a flipped bit on a
///   disk platter). HDFS-style per-block checksums detect the flip on read
///   and fail over to the next replica; a block whose every replica is bad
///   surfaces [`crate::MapRedError::CorruptBlock`].
/// * **shuffle segments in flight** — each map-output segment fetched by a
///   reducer is corrupted with `segment_rate` (a bad NIC, a flaky switch).
///   The reducer's verification catches it and re-fetches with capped
///   retries; a mapper whose output keeps failing verification is
///   re-executed.
/// * **records** — with `record_rate` per input record, a torn/garbled
///   extra line is injected into the map input (a partially-written append,
///   a log corruption). Robust mappers count and skip such records under
///   the [`ClusterConfig::skip_bad_records`] budget.
///
/// All draws are seeded per `(job, attempt, site index)`, so runs are
/// reproducible for any thread count and retried attempts see fresh
/// randomness (mirroring [`NodeFailureModel`]'s attempt mixing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionModel {
    /// Per-replica, per-block corruption probability in `[0, 1]`.
    pub block_rate: f64,
    /// Per-fetch shuffle-segment corruption probability in `[0, 1]`.
    pub segment_rate: f64,
    /// Per-record probability of injecting a malformed input line.
    pub record_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CorruptionModel {
    /// A uniform profile: all three sites corrupt at `rate`.
    #[must_use]
    pub fn uniform(rate: f64, seed: u64) -> Self {
        CorruptionModel {
            block_rate: rate,
            segment_rate: rate,
            record_rate: rate,
            seed,
        }
    }
}

/// Per-node blacklisting, as Hadoop's TaskTracker blacklist: a node whose
/// tasks keep failing (injected task failures, shuffle outputs that fail
/// verification) is excluded from further scheduling once its failure count
/// exceeds `max_failures`. Blacklisted nodes shrink the effective slot
/// pool, so later waves — the reduce phase, re-executed tasks — pack onto
/// fewer slots and take longer; that lost capacity is the policy's cost,
/// charged honestly by the wave model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlacklistPolicy {
    /// Task failures a node may accumulate during one job attempt before it
    /// is blacklisted (Hadoop's `mapred.max.tracker.failures` default is 4).
    pub max_failures: usize,
}

impl Default for BlacklistPolicy {
    fn default() -> Self {
        BlacklistPolicy { max_failures: 4 }
    }
}

/// On-wire representation of table data, shuffle segments and intermediate
/// job outputs.
///
/// `Text` is the seed format: `|`-delimited lines everywhere, re-parsed by
/// every mapper. `Columnar` moves [`ysmart_rel::ColumnBatch`] frames
/// instead — typed column vectors with dictionary-encoded strings and
/// per-column-chunk XXH64 checksums — and keeps the text codec only at the
/// ingest/output boundary. Both formats produce identical query results
/// and are individually deterministic across thread counts; simulated
/// times and byte counts differ because the encoded bytes differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataFormat {
    /// Pipe-delimited text lines (the seed data path).
    #[default]
    Text,
    /// Columnar binary frames with per-column checksums.
    Columnar,
}

/// The cluster and its cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Worker nodes (excluding the JobTracker, as in the paper's counts).
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// Local-disk bandwidth per node, MB/s.
    pub disk_mbps: f64,
    /// Network bandwidth per node, MB/s.
    pub net_mbps: f64,
    /// CPU cost of mapping one record, microseconds.
    pub map_cpu_us_per_record: f64,
    /// CPU cost of reducing one record, microseconds.
    pub reduce_cpu_us_per_record: f64,
    /// CPU cost of one extra *work unit* reported by a task (common-mapper
    /// branch evaluation, common-reducer dispatch and per-operation row
    /// processing), microseconds. Lower than the per-record cost: a work
    /// unit is a function call on an already-deserialised row.
    pub work_cpu_us: f64,
    /// Fraction of the reduce-side shuffle fetch that overlaps the map
    /// phase (Hadoop copies map output while later map waves still run).
    pub shuffle_overlap: f64,
    /// Fixed startup overhead per task (JVM launch etc.), seconds.
    pub task_startup_s: f64,
    /// HDFS block size, MB — determines the number of map tasks.
    pub hdfs_block_mb: f64,
    /// HDFS replication factor charged on job output writes.
    pub replication: u32,
    /// Fraction of map tasks reading their block from the local disk; the
    /// rest fetch it over the network.
    pub locality: f64,
    /// Per-node local-disk capacity for intermediate data, MB.
    pub disk_capacity_mb: f64,
    /// Map-output compression, when enabled.
    pub compression: Option<Compression>,
    /// Scheduler latency between chained jobs, seconds.
    pub inter_job_delay_s: f64,
    /// Production-cluster contention, when modelled.
    pub contention: Option<ContentionModel>,
    /// Task-failure injection, when modelled.
    pub failures: Option<FailureModel>,
    /// Whole-node failure injection, when modelled.
    pub node_failures: Option<NodeFailureModel>,
    /// Data-corruption injection (blocks, shuffle segments, records), when
    /// modelled. Enabling it also turns on checksum verification charges
    /// ([`crate::metrics::JobMetrics::verify_s`]).
    pub corruption: Option<CorruptionModel>,
    /// Malformed input records a job may skip before it aborts with
    /// [`crate::MapRedError::TooManyBadRecords`]. 0 (the default) means any
    /// bad record kills the job — Hadoop with skipping mode off.
    pub skip_bad_records: u64,
    /// Per-node failure blacklisting, when enabled.
    pub blacklist: Option<BlacklistPolicy>,
    /// Chain-level retry with backoff, when enabled.
    pub retry: Option<RetryPolicy>,
    /// Straggler injection (and speculative execution), when modelled.
    pub stragglers: Option<StragglerModel>,
    /// Wall-clock cap per query, simulated seconds (`None` = unlimited).
    pub time_limit_s: Option<f64>,
    /// Every real byte/record processed stands for this many simulated
    /// ones, so a megabyte-scale dataset can model a 10 GB/1 TB run.
    pub size_multiplier: f64,
    /// Real OS threads used to execute map and reduce tasks (`None` = all
    /// available cores). This knob only controls the harness's wall-clock
    /// parallelism; simulated times, results and metrics are identical for
    /// every setting — `Some(1)` forces the serial path for determinism
    /// tests.
    pub exec_threads: Option<usize>,
    /// Number of reduce tasks per job (Hadoop default: ~0.95 × reduce
    /// slots). `None` derives it from the cluster size.
    pub reduce_tasks: Option<usize>,
    /// Wire format for table data, shuffle segments and intermediates.
    pub data_format: DataFormat,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
            disk_mbps: 80.0,
            net_mbps: 110.0,
            map_cpu_us_per_record: 3.0,
            reduce_cpu_us_per_record: 1.2,
            work_cpu_us: 0.6,
            shuffle_overlap: 0.65,
            task_startup_s: 2.0,
            hdfs_block_mb: 64.0,
            replication: 3,
            locality: 0.9,
            disk_capacity_mb: 500_000.0,
            compression: None,
            inter_job_delay_s: 5.0,
            contention: None,
            failures: None,
            node_failures: None,
            corruption: None,
            skip_bad_records: 0,
            blacklist: None,
            retry: None,
            stragglers: None,
            time_limit_s: None,
            size_multiplier: 1.0,
            exec_threads: None,
            reduce_tasks: None,
            data_format: DataFormat::default(),
        }
    }
}

impl ClusterConfig {
    /// The paper's small local cluster: one TaskTracker node with 4 slots,
    /// quad-core Xeon, single 500 GB disk, Gigabit Ethernet (§VII-B.1).
    #[must_use]
    pub fn small_local() -> Self {
        ClusterConfig {
            nodes: 1,
            map_slots_per_node: 4,
            reduce_slots_per_node: 4,
            disk_mbps: 90.0,
            net_mbps: 110.0,
            disk_capacity_mb: 450_000.0,
            ..ClusterConfig::default()
        }
    }

    /// An EC2 cluster of default small instances: 1 virtual core, 1.7 GB
    /// memory, 160 GB instance storage (§VII-B.2). `workers` is the number
    /// of worker nodes (10 or 100 in the paper, plus one JobTracker).
    #[must_use]
    pub fn ec2(workers: usize) -> Self {
        ClusterConfig {
            nodes: workers,
            map_slots_per_node: 2,
            reduce_slots_per_node: 1,
            disk_mbps: 50.0,
            net_mbps: 60.0,
            map_cpu_us_per_record: 6.0,
            reduce_cpu_us_per_record: 4.0,
            disk_capacity_mb: 140_000.0,
            ..ClusterConfig::default()
        }
    }

    /// The Facebook production cluster: 747 nodes, 8 cores, 12 × 1 TB
    /// disks (§VII-B.3), with production contention enabled.
    #[must_use]
    pub fn facebook(seed: u64) -> Self {
        ClusterConfig {
            nodes: 747,
            map_slots_per_node: 6,
            reduce_slots_per_node: 2,
            disk_mbps: 600.0, // 12 spindles
            net_mbps: 120.0,
            disk_capacity_mb: 11_000_000.0,
            contention: Some(ContentionModel {
                slot_share: 0.35,
                max_scheduling_gap_s: 324.0, // 5.4 minutes
                task_slowdown: 1.6,
                seed,
            }),
            ..ClusterConfig::default()
        }
    }

    /// Total map slots across the cluster (after contention slot share).
    #[must_use]
    pub fn total_map_slots(&self) -> usize {
        self.effective_slots(self.nodes * self.map_slots_per_node)
    }

    /// Total reduce slots across the cluster (after contention slot share).
    #[must_use]
    pub fn total_reduce_slots(&self) -> usize {
        self.effective_slots(self.nodes * self.reduce_slots_per_node)
    }

    fn effective_slots(&self, raw: usize) -> usize {
        let share = self.contention.map_or(1.0, |c| c.slot_share);
        ((raw as f64 * share).floor() as usize).max(1)
    }

    /// Map slots left when only `survivors` nodes are alive (after the
    /// contention slot share).
    #[must_use]
    pub fn surviving_map_slots(&self, survivors: usize) -> usize {
        self.effective_slots(survivors * self.map_slots_per_node)
    }

    /// Reduce slots left when only `survivors` nodes are alive (after the
    /// contention slot share).
    #[must_use]
    pub fn surviving_reduce_slots(&self, survivors: usize) -> usize {
        self.effective_slots(survivors * self.reduce_slots_per_node)
    }

    /// The number of reduce tasks a job should use.
    #[must_use]
    pub fn default_reduce_tasks(&self) -> usize {
        self.reduce_tasks
            .unwrap_or_else(|| ((self.total_reduce_slots() as f64) * 0.95).ceil() as usize)
            .max(1)
    }

    /// Seconds to move `bytes` (simulated bytes) across one node's disk.
    #[must_use]
    pub fn disk_seconds(&self, bytes: f64) -> f64 {
        bytes / (self.disk_mbps * 1e6)
    }

    /// Seconds to move `bytes` (simulated bytes) across one node's NIC.
    #[must_use]
    pub fn net_seconds(&self, bytes: f64) -> f64 {
        bytes / (self.net_mbps * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_shapes() {
        let local = ClusterConfig::small_local();
        assert_eq!(local.total_map_slots(), 4);
        let ec2 = ClusterConfig::ec2(100);
        assert_eq!(ec2.nodes, 100);
        let fb = ClusterConfig::facebook(1);
        assert_eq!(fb.nodes, 747);
        assert!(fb.contention.is_some());
    }

    #[test]
    fn contention_reduces_slots() {
        let fb = ClusterConfig::facebook(1);
        assert!(fb.total_map_slots() < 747 * fb.map_slots_per_node);
        assert!(fb.total_map_slots() >= 1);
    }

    #[test]
    fn reduce_task_default_positive() {
        assert!(ClusterConfig::default().default_reduce_tasks() >= 1);
        let cfg = ClusterConfig {
            reduce_tasks: Some(7),
            ..ClusterConfig::default()
        };
        assert_eq!(cfg.default_reduce_tasks(), 7);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert!((p.backoff_s(0) - 30.0).abs() < 1e-9);
        assert!((p.backoff_s(1) - 60.0).abs() < 1e-9);
        assert!((p.backoff_s(2) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_is_capped_over_a_long_retry_series() {
        let p = RetryPolicy {
            max_retries: 1000,
            max_backoff_s: 600.0,
            ..RetryPolicy::default()
        };
        // Uncapped, retry 10 would be 30 × 2¹⁰ = 30 720 s.
        assert!((p.backoff_s(10) - 600.0).abs() < 1e-9);
        // Every element of a long series stays finite and capped — includes
        // the powi-overflow region where the raw product is +inf.
        let mut total = 0.0;
        for retry in 0..1000 {
            let b = p.backoff_s(retry);
            assert!(b.is_finite() && b <= 600.0, "retry {retry}: {b}");
            total += b;
        }
        assert!(total <= 600.0 * 1000.0);
    }

    #[test]
    fn jitter_off_matches_plain_backoff() {
        let p = RetryPolicy::default();
        for retry in 0..12 {
            assert_eq!(p.backoff_jittered_s(retry, 0xABCD), p.backoff_s(retry));
        }
    }

    #[test]
    fn jitter_is_seed_deterministic_bounded_and_decorrelating() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        for retry in 0..12 {
            let a = p.backoff_jittered_s(retry, 7);
            let b = p.backoff_jittered_s(retry, 7);
            assert_eq!(a, b, "same seed must reproduce exactly");
            let plain = p.backoff_s(retry);
            // Full-jitter-down: within [plain/2, plain] for jitter 0.5.
            assert!(a <= plain && a >= plain * 0.5 - 1e-9, "retry {retry}: {a}");
        }
        // Two chains failing in lockstep must not back off in lockstep.
        let spread: Vec<bool> = (0..8)
            .map(|r| (p.backoff_jittered_s(r, 7) - p.backoff_jittered_s(r, 8)).abs() > 1e-9)
            .collect();
        assert!(spread.iter().any(|&d| d), "distinct seeds must decorrelate");
    }

    #[test]
    fn corruption_uniform_sets_all_sites() {
        let m = CorruptionModel::uniform(0.01, 9);
        assert_eq!(m.block_rate, 0.01);
        assert_eq!(m.segment_rate, 0.01);
        assert_eq!(m.record_rate, 0.01);
        assert_eq!(m.seed, 9);
    }

    #[test]
    fn blacklist_default_matches_hadoop() {
        assert_eq!(BlacklistPolicy::default().max_failures, 4);
    }

    #[test]
    fn bandwidth_seconds() {
        let cfg = ClusterConfig {
            disk_mbps: 100.0,
            net_mbps: 50.0,
            ..ClusterConfig::default()
        };
        assert!((cfg.disk_seconds(1e8) - 1.0).abs() < 1e-9);
        assert!((cfg.net_seconds(1e8) - 2.0).abs() < 1e-9);
    }
}
