//! Per-job and per-phase metrics.

use std::fmt;

/// Everything measured about one executed job — the numbers behind every
/// figure of the paper's evaluation (per-phase times in Figs. 9, 10, 12;
/// byte counts behind the compression discussion of Fig. 11).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobMetrics {
    /// Job name.
    pub name: String,
    /// Simulated seconds spent in the map phase (incl. task startup and
    /// re-executed failed attempts).
    pub map_time_s: f64,
    /// Simulated seconds of the shuffle + reduce phase.
    pub reduce_time_s: f64,
    /// Scheduler gap charged before the job started.
    pub startup_delay_s: f64,
    /// Simulated bytes read from HDFS by map tasks.
    pub hdfs_read_bytes: u64,
    /// Simulated map-output bytes spilled to local disks (post-combiner,
    /// post-compression).
    pub local_spill_bytes: u64,
    /// Simulated bytes moved over the network in the shuffle.
    pub shuffle_bytes: u64,
    /// Simulated bytes written to HDFS by the job output (before
    /// replication).
    pub hdfs_write_bytes: u64,
    /// Records read by mappers.
    pub map_in_records: u64,
    /// Pairs emitted by mappers (pre-combiner).
    pub map_out_records: u64,
    /// Records written by the job.
    pub out_records: u64,
    /// Map tasks executed (first attempts).
    pub map_tasks: usize,
    /// Reduce tasks executed.
    pub reduce_tasks: usize,
    /// Task attempts that were failed and re-executed.
    pub failed_attempts: usize,
    /// Straggler tasks rescued by speculative backup tasks.
    pub speculative_tasks: usize,
}

impl JobMetrics {
    /// Total simulated job time (delay + map + reduce).
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.startup_delay_s + self.map_time_s + self.reduce_time_s
    }
}

impl fmt::Display for JobMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: map {:.1}s + reduce {:.1}s (delay {:.1}s; {} maps, {} reduces, shuffle {} B)",
            self.name,
            self.map_time_s,
            self.reduce_time_s,
            self.startup_delay_s,
            self.map_tasks,
            self.reduce_tasks,
            self.shuffle_bytes
        )
    }
}

/// Metrics for a whole chain of jobs (one translated query).
#[derive(Debug, Clone, Default)]
pub struct ChainMetrics {
    /// Per-job metrics, in execution order.
    pub jobs: Vec<JobMetrics>,
}

impl ChainMetrics {
    /// Total simulated time of the chain (jobs run sequentially, as the
    /// paper's translated plans do).
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.jobs.iter().map(JobMetrics::total_s).sum()
    }

    /// Sum of bytes shuffled across all jobs.
    #[must_use]
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle_bytes).sum()
    }

    /// Sum of HDFS bytes read across all jobs — the "redundant table scan"
    /// cost the paper's Rule 1 removes.
    #[must_use]
    pub fn total_hdfs_read(&self) -> u64 {
        self.jobs.iter().map(|j| j.hdfs_read_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let m = JobMetrics {
            map_time_s: 10.0,
            reduce_time_s: 5.0,
            startup_delay_s: 1.0,
            ..JobMetrics::default()
        };
        assert!((m.total_s() - 16.0).abs() < 1e-9);
        let chain = ChainMetrics {
            jobs: vec![m.clone(), m],
        };
        assert!((chain.total_s() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn display_has_name_and_phases() {
        let m = JobMetrics {
            name: "job1".into(),
            ..JobMetrics::default()
        };
        let s = m.to_string();
        assert!(s.contains("job1") && s.contains("map"));
    }
}
