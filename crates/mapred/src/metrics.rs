//! Per-job and per-phase metrics.

use std::fmt;

/// Everything measured about one executed job — the numbers behind every
/// figure of the paper's evaluation (per-phase times in Figs. 9, 10, 12;
/// byte counts behind the compression discussion of Fig. 11).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobMetrics {
    /// Job name.
    pub name: String,
    /// Simulated seconds spent in the map phase (incl. task startup and
    /// re-executed failed attempts).
    pub map_time_s: f64,
    /// Simulated seconds of the shuffle + reduce phase.
    pub reduce_time_s: f64,
    /// Scheduler gap charged before the job started.
    pub startup_delay_s: f64,
    /// Simulated bytes read from HDFS by map tasks.
    pub hdfs_read_bytes: u64,
    /// Simulated map-output bytes spilled to local disks (post-combiner,
    /// post-compression).
    pub local_spill_bytes: u64,
    /// Simulated bytes moved over the network in the shuffle.
    pub shuffle_bytes: u64,
    /// Simulated bytes written to HDFS by the job output (before
    /// replication).
    pub hdfs_write_bytes: u64,
    /// Records read by mappers.
    pub map_in_records: u64,
    /// Pairs emitted by mappers (pre-combiner).
    pub map_out_records: u64,
    /// Records written by the job.
    pub out_records: u64,
    /// Map tasks executed (first attempts).
    pub map_tasks: usize,
    /// Reduce tasks executed.
    pub reduce_tasks: usize,
    /// Task attempts that were failed and re-executed.
    pub failed_attempts: usize,
    /// Straggler tasks rescued by speculative backup tasks.
    pub speculative_tasks: usize,
    /// Cluster slot-seconds consumed by speculative backup tasks — the
    /// duplicated work fills otherwise-idle slots, so it costs the cluster
    /// but not the job's wall clock.
    pub speculative_slot_s: f64,
    /// Worker nodes that died during the successful attempt of this job.
    pub nodes_lost: usize,
    /// Tasks re-executed because their node died (map and reduce).
    pub reexecuted_tasks: usize,
    /// Simulated seconds of work thrown away on dead nodes (the original
    /// runs of re-executed tasks). Already contained in the phase times;
    /// tracked separately so recovery cost is visible.
    pub wasted_s: f64,
    /// Which attempt of this job succeeded (0 = first try).
    pub attempt: usize,
    /// Corrupt HDFS block replicas detected by checksum on read and failed
    /// over (a block with *every* replica corrupt aborts the attempt
    /// instead, with [`crate::MapRedError::CorruptBlock`]).
    pub corrupt_blocks_detected: u64,
    /// Shuffle-segment fetches that failed checksum verification and were
    /// re-fetched from the mapper.
    pub refetched_segments: u64,
    /// Malformed input records skipped by mappers (Hadoop's skipping mode)
    /// under the [`crate::config::ClusterConfig::skip_bad_records`] budget.
    pub skipped_records: u64,
    /// Worker nodes blacklisted during this job for exceeding the
    /// [`crate::config::BlacklistPolicy`] failure threshold.
    pub blacklisted_nodes: usize,
    /// Simulated CPU seconds spent computing and comparing checksums
    /// (block reads and shuffle-segment fetches). Only charged when a
    /// [`crate::config::CorruptionModel`] is configured; already contained
    /// in the phase times.
    pub verify_s: f64,
    /// Injected bit flips whose garbled bytes checksummed *equal* to the
    /// clean ones — corruption the checksum could not have detected. With
    /// XXH64 this is practically unreachable (excluded for single-bit flips
    /// by the avalanche test in [`crate::hash`]), but when it happens it is
    /// counted in every build profile rather than debug-asserted away.
    pub checksum_collisions: u64,
    /// Actual encoded columnar frame bytes this job produced (shuffle
    /// segments plus output frames) when running under
    /// [`crate::config::DataFormat::Columnar`]. Zero in text mode — the
    /// Text/Columnar delta is the columnar win, visible per job.
    pub encoded_bytes: u64,
    /// Dictionary entries materialised across all columnar frames the job
    /// encoded — how much string deduplication the dictionary encoding
    /// achieved. Zero in text mode.
    pub dict_entries: u64,
    /// Per-output-stream record counts dispatched by the map side of a
    /// merged (CMF) job: element `i` counts records routed to merged query
    /// branch `i`. Empty for jobs whose mappers don't report streams.
    pub map_dispatches: Vec<u64>,
    /// Per-output-stream record counts dispatched by the reduce side of a
    /// merged (CMF) job — the post-shuffle fan-out §VI-B's common reducer
    /// performs. Empty for jobs whose reducers don't report streams.
    pub reduce_dispatches: Vec<u64>,
}

impl JobMetrics {
    /// Total simulated job time (delay + map + reduce).
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.startup_delay_s + self.map_time_s + self.reduce_time_s
    }
}

impl fmt::Display for JobMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: map {:.1}s + reduce {:.1}s (delay {:.1}s; {} maps, {} reduces, shuffle {} B)",
            self.name,
            self.map_time_s,
            self.reduce_time_s,
            self.startup_delay_s,
            self.map_tasks,
            self.reduce_tasks,
            self.shuffle_bytes
        )
    }
}

/// Metrics for a whole chain of jobs (one translated query).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainMetrics {
    /// Per-job metrics, in execution order (successful attempts only).
    pub jobs: Vec<JobMetrics>,
    /// Job attempts that failed and were retried by the
    /// [`crate::config::RetryPolicy`].
    pub retries: usize,
    /// Simulated seconds spent waiting out retry backoff.
    pub backoff_delay_s: f64,
    /// Simulated seconds of work lost to failed job attempts (each failed
    /// attempt's elapsed time before it died).
    pub failed_attempt_s: f64,
}

impl ChainMetrics {
    /// Total simulated time of the chain (jobs run sequentially, as the
    /// paper's translated plans do), including recovery: backoff waits and
    /// the time burned by failed job attempts.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.jobs.iter().map(JobMetrics::total_s).sum::<f64>()
            + self.backoff_delay_s
            + self.failed_attempt_s
    }

    /// Total recovery cost of the chain in simulated seconds: failed
    /// attempts, backoff waits, and work re-executed after node deaths
    /// within successful attempts.
    #[must_use]
    pub fn recovery_s(&self) -> f64 {
        self.backoff_delay_s
            + self.failed_attempt_s
            + self.jobs.iter().map(|j| j.wasted_s).sum::<f64>()
    }

    /// Tasks re-executed because their node died, across all jobs.
    #[must_use]
    pub fn total_reexecuted_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.reexecuted_tasks).sum()
    }

    /// Sum of bytes shuffled across all jobs.
    #[must_use]
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle_bytes).sum()
    }

    /// Sum of HDFS bytes read across all jobs — the "redundant table scan"
    /// cost the paper's Rule 1 removes.
    #[must_use]
    pub fn total_hdfs_read(&self) -> u64 {
        self.jobs.iter().map(|j| j.hdfs_read_bytes).sum()
    }

    /// Data-integrity events across all jobs: corrupt block replicas
    /// detected, corrupt shuffle fetches re-fetched, bad records skipped,
    /// and checksum collisions. Nonzero proves injected corruption actually
    /// fired.
    #[must_use]
    pub fn total_integrity_events(&self) -> u64 {
        self.jobs
            .iter()
            .map(|j| {
                j.corrupt_blocks_detected
                    + j.refetched_segments
                    + j.skipped_records
                    + j.checksum_collisions
            })
            .sum()
    }

    /// Checksum-verification seconds across all jobs.
    #[must_use]
    pub fn total_verify_s(&self) -> f64 {
        self.jobs.iter().map(|j| j.verify_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let m = JobMetrics {
            map_time_s: 10.0,
            reduce_time_s: 5.0,
            startup_delay_s: 1.0,
            ..JobMetrics::default()
        };
        assert!((m.total_s() - 16.0).abs() < 1e-9);
        let chain = ChainMetrics {
            jobs: vec![m.clone(), m],
            ..ChainMetrics::default()
        };
        assert!((chain.total_s() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_costs_add_up() {
        let job = JobMetrics {
            map_time_s: 10.0,
            wasted_s: 4.0,
            reexecuted_tasks: 3,
            ..JobMetrics::default()
        };
        let chain = ChainMetrics {
            jobs: vec![job],
            retries: 2,
            backoff_delay_s: 90.0,
            failed_attempt_s: 25.0,
        };
        assert!((chain.total_s() - 125.0).abs() < 1e-9);
        assert!((chain.recovery_s() - 119.0).abs() < 1e-9);
        assert_eq!(chain.total_reexecuted_tasks(), 3);
    }

    #[test]
    fn integrity_events_add_up() {
        let job = JobMetrics {
            corrupt_blocks_detected: 2,
            refetched_segments: 3,
            skipped_records: 5,
            verify_s: 1.5,
            ..JobMetrics::default()
        };
        let chain = ChainMetrics {
            jobs: vec![job.clone(), job],
            ..ChainMetrics::default()
        };
        assert_eq!(chain.total_integrity_events(), 20);
        assert!((chain.total_verify_s() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_has_name_and_phases() {
        let m = JobMetrics {
            name: "job1".into(),
            ..JobMetrics::default()
        };
        let s = m.to_string();
        assert!(s.contains("job1") && s.contains("map"));
    }
}
