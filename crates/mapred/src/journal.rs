//! Durable workload journal: a checksummed append-only WAL that makes the
//! multi-tenant scheduler crash-safe.
//!
//! The paper's whole argument is *fewer jobs per query*; a long-running
//! service built on it dies a different death — the process crashes with a
//! workload in flight, and every partially-completed chain's finished jobs
//! are lost with the in-memory cluster. ReStore (PAPERS.md) observes that
//! per-job outputs materialized in HDFS are exactly the reuse primitive;
//! this module uses that primitive for *restart safety*: every admitted
//! query, every committed job (with its materialized output bytes), and
//! every terminal disposition is appended to the journal, so a restarted
//! process can replay the workload deterministically, fast-forwarding
//! already-journaled jobs instead of re-executing them.
//!
//! # Record framing
//!
//! The journal is a byte stream: an 8-byte magic, then records framed as
//!
//! ```text
//! [u64 checksum][u32 len][payload: len bytes]
//! ```
//!
//! where `checksum = XXH64(len_le || payload)` ([`crate::hash`]), covering
//! the length field so a flipped length cannot silently mis-frame the
//! stream. All integers are little-endian; `f64`s are stored as their IEEE
//! bit patterns so metrics survive a round trip *bit-identically*.
//!
//! # Recovery
//!
//! [`recover`] walks the frames front to back:
//!
//! * a record that does not fit in the remaining bytes, or whose final
//!   frame fails its checksum, is a **torn tail** — the interrupted last
//!   append of a crashed process. It is truncated away and everything
//!   before it is recovered;
//! * a checksum mismatch or undecodable payload *followed by more data* is
//!   at-rest corruption, surfaced as the typed
//!   [`MapRedError::JournalCorrupt`] instead of a panic or a guess.

use std::io::Write as _;
use std::path::PathBuf;

use crate::error::MapRedError;
use crate::hash::checksum_bytes;
use crate::hdfs::DataFile;
use crate::metrics::JobMetrics;

/// Leading magic of every journal file (version suffix `01`).
pub const JOURNAL_MAGIC: &[u8; 8] = b"YSJRNL01";

/// How a journaled query's life ended — the slim, replayable projection of
/// [`crate::scheduler::Disposition`]. Recovery does not reconstruct reports
/// from these (deterministic replay re-derives them bit-identically); they
/// exist so a restarted *service* knows which requests it already answered
/// and never responds twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispositionKind {
    /// The chain ran to completion.
    Completed,
    /// Cancelled at its deadline (running or still queued).
    DeadlineCancelled,
    /// Shed at admission or during drain; nothing ran.
    Shed,
    /// Failed while running.
    Failed,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A query was accepted into an admission queue. `payload` is opaque
    /// caller data — the service stores the SQL text here so a restarted
    /// process can re-translate and resubmit the request.
    Admitted {
        /// Request id (the scheduler uses the submission index).
        id: u64,
        /// Owning tenant.
        tenant: String,
        /// Report/trace label.
        label: String,
        /// The request's scheduling seed.
        seed: u64,
        /// Deadline relative to submission, if any.
        deadline_s: Option<f64>,
        /// Submission time on the workload clock.
        submit_s: f64,
        /// Opaque caller payload (e.g. the SQL text).
        payload: String,
    },
    /// A job of an admitted chain committed: its checkpoint. Carries the
    /// materialized output bytes so a restarted process can restore the
    /// file into the (rebuilt, in-memory) HDFS and resume the chain from
    /// here instead of re-running the job.
    JobDone {
        /// Request id.
        id: u64,
        /// Index of the job within its chain.
        job_index: u32,
        /// Which attempt committed (0 = first try).
        attempt: u32,
        /// HDFS path of the job's output.
        output_path: String,
        /// The materialized output.
        file: DataFile,
        /// The committed job's metrics, bit-exact (boxed: this variant
        /// would otherwise dwarf the others).
        metrics: Box<JobMetrics>,
    },
    /// A query reached its terminal disposition.
    Done {
        /// Request id.
        id: u64,
        /// How it ended.
        kind: DispositionKind,
        /// When, on the workload clock.
        done_s: f64,
    },
}

impl JournalRecord {
    /// The request id every record variant carries.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            JournalRecord::Admitted { id, .. }
            | JournalRecord::JobDone { id, .. }
            | JournalRecord::Done { id, .. } => *id,
        }
    }
}

// ---------------------------------------------------------------------------
// Payload codec: hand-rolled little-endian primitives (no serde in-tree).
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// `f64`s travel as raw IEEE bits: metrics must survive bit-identically.
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_f64(out, x);
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

fn put_u64_vec(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u64(out, x);
    }
}

/// Bounded reader over a record payload. Every getter fails with a reason
/// string instead of panicking — malformed records become
/// [`MapRedError::JournalCorrupt`], never a crash.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Parsed<T> = Result<T, String>;

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Parsed<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Parsed<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Parsed<u32> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| "u32 field truncated".to_string())?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Parsed<u64> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| "u64 field truncated".to_string())?;
        Ok(u64::from_le_bytes(b))
    }

    fn usize(&mut self) -> Parsed<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("usize field overflows the platform: {v}"))
    }

    fn f64(&mut self) -> Parsed<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_f64(&mut self) -> Parsed<Option<f64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            t => Err(format!("bad Option tag {t}")),
        }
    }

    fn bytes(&mut self) -> Parsed<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> Parsed<String> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|e| format!("invalid UTF-8 in string field: {e}"))
    }

    fn u64_vec(&mut self) -> Parsed<Vec<u64>> {
        let n = self.u32()? as usize;
        let mut v = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    fn done(&self) -> Parsed<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after record payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn encode_data_file(out: &mut Vec<u8>, f: &DataFile) {
    put_u8(out, u8::from(f.is_columnar()));
    if f.is_columnar() {
        put_u32(out, f.frames.len() as u32);
        for fr in &f.frames {
            put_bytes(out, fr);
        }
    } else {
        put_u32(out, f.lines.len() as u32);
        for l in &f.lines {
            put_str(out, l);
        }
    }
}

fn decode_data_file(r: &mut Reader<'_>) -> Parsed<DataFile> {
    let columnar = match r.u8()? {
        0 => false,
        1 => true,
        t => Err(format!("bad DataFile tag {t}"))?,
    };
    let n = r.u32()? as usize;
    let mut file = DataFile::default();
    if columnar {
        file.frames.reserve(n.min(1 << 16));
        for _ in 0..n {
            file.frames.push(r.bytes()?);
        }
    } else {
        file.lines.reserve(n.min(1 << 16));
        for _ in 0..n {
            file.lines.push(r.str()?);
        }
    }
    Ok(file)
}

/// Every [`JobMetrics`] field, in declaration order. A new field must be
/// added here (and below) or the `metrics_roundtrip_is_exhaustive` test in
/// the recovery suite fails the build's test run.
fn encode_job_metrics(out: &mut Vec<u8>, m: &JobMetrics) {
    put_str(out, &m.name);
    put_f64(out, m.map_time_s);
    put_f64(out, m.reduce_time_s);
    put_f64(out, m.startup_delay_s);
    put_u64(out, m.hdfs_read_bytes);
    put_u64(out, m.local_spill_bytes);
    put_u64(out, m.shuffle_bytes);
    put_u64(out, m.hdfs_write_bytes);
    put_u64(out, m.map_in_records);
    put_u64(out, m.map_out_records);
    put_u64(out, m.out_records);
    put_usize(out, m.map_tasks);
    put_usize(out, m.reduce_tasks);
    put_usize(out, m.failed_attempts);
    put_usize(out, m.speculative_tasks);
    put_f64(out, m.speculative_slot_s);
    put_usize(out, m.nodes_lost);
    put_usize(out, m.reexecuted_tasks);
    put_f64(out, m.wasted_s);
    put_usize(out, m.attempt);
    put_u64(out, m.corrupt_blocks_detected);
    put_u64(out, m.refetched_segments);
    put_u64(out, m.skipped_records);
    put_usize(out, m.blacklisted_nodes);
    put_f64(out, m.verify_s);
    put_u64(out, m.checksum_collisions);
    put_u64(out, m.encoded_bytes);
    put_u64(out, m.dict_entries);
    put_u64_vec(out, &m.map_dispatches);
    put_u64_vec(out, &m.reduce_dispatches);
}

fn decode_job_metrics(r: &mut Reader<'_>) -> Parsed<JobMetrics> {
    Ok(JobMetrics {
        name: r.str()?,
        map_time_s: r.f64()?,
        reduce_time_s: r.f64()?,
        startup_delay_s: r.f64()?,
        hdfs_read_bytes: r.u64()?,
        local_spill_bytes: r.u64()?,
        shuffle_bytes: r.u64()?,
        hdfs_write_bytes: r.u64()?,
        map_in_records: r.u64()?,
        map_out_records: r.u64()?,
        out_records: r.u64()?,
        map_tasks: r.usize()?,
        reduce_tasks: r.usize()?,
        failed_attempts: r.usize()?,
        speculative_tasks: r.usize()?,
        speculative_slot_s: r.f64()?,
        nodes_lost: r.usize()?,
        reexecuted_tasks: r.usize()?,
        wasted_s: r.f64()?,
        attempt: r.usize()?,
        corrupt_blocks_detected: r.u64()?,
        refetched_segments: r.u64()?,
        skipped_records: r.u64()?,
        blacklisted_nodes: r.usize()?,
        verify_s: r.f64()?,
        checksum_collisions: r.u64()?,
        encoded_bytes: r.u64()?,
        dict_entries: r.u64()?,
        map_dispatches: r.u64_vec()?,
        reduce_dispatches: r.u64_vec()?,
    })
}

const TAG_ADMITTED: u8 = 1;
const TAG_JOB_DONE: u8 = 2;
const TAG_DONE: u8 = 3;

fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        JournalRecord::Admitted {
            id,
            tenant,
            label,
            seed,
            deadline_s,
            submit_s,
            payload,
        } => {
            put_u8(&mut out, TAG_ADMITTED);
            put_u64(&mut out, *id);
            put_str(&mut out, tenant);
            put_str(&mut out, label);
            put_u64(&mut out, *seed);
            put_opt_f64(&mut out, *deadline_s);
            put_f64(&mut out, *submit_s);
            put_str(&mut out, payload);
        }
        JournalRecord::JobDone {
            id,
            job_index,
            attempt,
            output_path,
            file,
            metrics,
        } => {
            put_u8(&mut out, TAG_JOB_DONE);
            put_u64(&mut out, *id);
            put_u32(&mut out, *job_index);
            put_u32(&mut out, *attempt);
            put_str(&mut out, output_path);
            encode_data_file(&mut out, file);
            encode_job_metrics(&mut out, metrics);
        }
        JournalRecord::Done { id, kind, done_s } => {
            put_u8(&mut out, TAG_DONE);
            put_u64(&mut out, *id);
            put_u8(
                &mut out,
                match kind {
                    DispositionKind::Completed => 0,
                    DispositionKind::DeadlineCancelled => 1,
                    DispositionKind::Shed => 2,
                    DispositionKind::Failed => 3,
                },
            );
            put_f64(&mut out, *done_s);
        }
    }
    out
}

fn decode_record(payload: &[u8]) -> Parsed<JournalRecord> {
    let mut r = Reader::new(payload);
    let rec = match r.u8()? {
        TAG_ADMITTED => JournalRecord::Admitted {
            id: r.u64()?,
            tenant: r.str()?,
            label: r.str()?,
            seed: r.u64()?,
            deadline_s: r.opt_f64()?,
            submit_s: r.f64()?,
            payload: r.str()?,
        },
        TAG_JOB_DONE => JournalRecord::JobDone {
            id: r.u64()?,
            job_index: r.u32()?,
            attempt: r.u32()?,
            output_path: r.str()?,
            file: decode_data_file(&mut r)?,
            metrics: Box::new(decode_job_metrics(&mut r)?),
        },
        TAG_DONE => JournalRecord::Done {
            id: r.u64()?,
            kind: match r.u8()? {
                0 => DispositionKind::Completed,
                1 => DispositionKind::DeadlineCancelled,
                2 => DispositionKind::Shed,
                3 => DispositionKind::Failed,
                t => Err(format!("bad DispositionKind tag {t}"))?,
            },
            done_s: r.f64()?,
        },
        t => Err(format!("unknown record tag {t}"))?,
    };
    r.done()?;
    Ok(rec)
}

/// Checksum covering the frame: the length field and the payload, so a
/// flipped length cannot mis-frame the stream undetected.
fn frame_checksum(len: u32, payload: &[u8]) -> u64 {
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(payload);
    checksum_bytes(&framed)
}

/// What [`recover`] salvaged from a journal byte stream.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The valid records, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (what the journal should be
    /// truncated to before appending again).
    pub valid_len: usize,
    /// Bytes of torn tail discarded, if any.
    pub truncated_bytes: usize,
}

/// Parses a journal byte stream, truncating a torn tail and refusing
/// mid-stream corruption.
///
/// # Errors
///
/// [`MapRedError::JournalCorrupt`] for a bad magic, or a checksum-failed or
/// undecodable record that is *not* the final frame (a final bad frame is a
/// torn tail and is truncated instead).
pub fn recover(bytes: &[u8]) -> Result<Recovered, MapRedError> {
    let torn = |records, valid_len: usize| Recovered {
        records,
        valid_len,
        truncated_bytes: bytes.len() - valid_len,
    };
    if bytes.is_empty() {
        return Ok(torn(Vec::new(), 0));
    }
    if bytes.len() < JOURNAL_MAGIC.len() {
        // A crash during the very first append can tear even the magic.
        return Ok(torn(Vec::new(), 0));
    }
    if &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(MapRedError::JournalCorrupt {
            offset: 0,
            reason: "bad journal magic".into(),
        });
    }
    let mut pos = JOURNAL_MAGIC.len();
    let mut records = Vec::new();
    while pos < bytes.len() {
        let rem = bytes.len() - pos;
        if rem < 12 {
            return Ok(torn(records, pos));
        }
        // `rem >= 12` guarantees these slices, but a torn tail is always
        // the safe answer if the header cannot be read — never a panic.
        let (Ok(stored_b), Ok(len_b)) = (
            <[u8; 8]>::try_from(&bytes[pos..pos + 8]),
            <[u8; 4]>::try_from(&bytes[pos + 8..pos + 12]),
        ) else {
            return Ok(torn(records, pos));
        };
        let stored = u64::from_le_bytes(stored_b);
        let len = u32::from_le_bytes(len_b);
        let Some(payload_end) = (pos + 12).checked_add(len as usize) else {
            return Ok(torn(records, pos));
        };
        if payload_end > bytes.len() {
            // The frame claims more bytes than exist: an interrupted append
            // (or a flipped length that points past EOF — indistinguishable
            // from one, and handled the same safe way).
            return Ok(torn(records, pos));
        }
        let payload = &bytes[pos + 12..payload_end];
        let last_frame = payload_end == bytes.len();
        if frame_checksum(len, payload) != stored {
            if last_frame {
                return Ok(torn(records, pos));
            }
            return Err(MapRedError::JournalCorrupt {
                offset: pos,
                reason: "record checksum mismatch".into(),
            });
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            Err(reason) => {
                return Err(MapRedError::JournalCorrupt {
                    offset: pos,
                    reason,
                })
            }
        }
        pos = payload_end;
    }
    Ok(Recovered {
        records,
        valid_len: pos,
        truncated_bytes: 0,
    })
}

/// The append-only workload journal: an in-memory byte buffer, optionally
/// mirrored to a file on [`Journal::flush`].
///
/// The buffer *is* the durable state: simulated crash tests snapshot
/// [`Journal::bytes`] at arbitrary prefixes (an append-only file's content
/// at any instant is a prefix of its final content) and recover from the
/// truncation, torn tails included.
#[derive(Debug)]
pub struct Journal {
    bytes: Vec<u8>,
    path: Option<PathBuf>,
    /// Length already persisted to `path`.
    synced: usize,
    records: usize,
}

impl Journal {
    /// A journal with no file backing — the durable bytes live in
    /// [`Journal::bytes`] (tests and benches snapshot them directly).
    #[must_use]
    pub fn in_memory() -> Self {
        Journal {
            bytes: JOURNAL_MAGIC.to_vec(),
            path: None,
            synced: 0,
            records: 0,
        }
    }

    /// A journal re-opened over previously-written bytes (e.g. a snapshot
    /// taken before a simulated crash). Call [`recover`] on
    /// [`Journal::bytes`] — or use [`Journal::recover_and_reset`] — before
    /// appending.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let records = recover(&bytes).map_or(0, |r| r.records.len());
        Journal {
            bytes,
            path: None,
            synced: 0,
            records,
        }
    }

    /// Opens (or creates) a file-backed journal, loading any existing
    /// bytes.
    ///
    /// # Errors
    ///
    /// I/O failures reading the existing file.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let bytes = match std::fs::read(&path) {
            Ok(b) if !b.is_empty() => b,
            Ok(_) => JOURNAL_MAGIC.to_vec(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => JOURNAL_MAGIC.to_vec(),
            Err(e) => return Err(e),
        };
        let records = recover(&bytes).map_or(0, |r| r.records.len());
        Ok(Journal {
            bytes,
            path: Some(path),
            synced: 0,
            records,
        })
    }

    /// The journal's bytes as written so far (magic included).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Records appended (or recovered) so far.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Recovers the journal's current bytes and resets it to a fresh epoch
    /// (magic only): the service calls this on restart, replays the
    /// returned records, and the replay re-journals them into the new
    /// epoch — so a second crash recovers just as well.
    ///
    /// # Errors
    ///
    /// [`MapRedError::JournalCorrupt`] as from [`recover`].
    pub fn recover_and_reset(&mut self) -> Result<Recovered, MapRedError> {
        let recovered = recover(&self.bytes)?;
        self.bytes = JOURNAL_MAGIC.to_vec();
        self.synced = 0;
        self.records = 0;
        Ok(recovered)
    }

    /// Appends one record to the in-memory buffer ([`Journal::flush`]
    /// persists it).
    pub fn append(&mut self, rec: &JournalRecord) {
        let payload = encode_record(rec);
        let len = payload.len() as u32;
        self.bytes
            .extend_from_slice(&frame_checksum(len, &payload).to_le_bytes());
        self.bytes.extend_from_slice(&len.to_le_bytes());
        self.bytes.extend_from_slice(&payload);
        self.records += 1;
    }

    /// Persists unsynced bytes to the backing file, if any. In-memory
    /// journals are a no-op (their buffer is the durable state).
    ///
    /// # Errors
    ///
    /// I/O failures writing the file.
    pub fn flush(&mut self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if self.synced == 0 {
            // First flush of this epoch rewrites the whole file, which also
            // truncates any torn tail or stale previous epoch.
            std::fs::write(path, &self.bytes)?;
        } else if self.synced < self.bytes.len() {
            let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
            f.write_all(&self.bytes[self.synced..])?;
        }
        self.synced = self.bytes.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Admitted {
                id: 0,
                tenant: "alpha".into(),
                label: "t0/q17#0".into(),
                seed: 0xDEAD_BEEF,
                deadline_s: Some(1234.5),
                submit_s: 0.25,
                payload: "SELECT cid, count(*) FROM clicks GROUP BY cid".into(),
            },
            JournalRecord::JobDone {
                id: 0,
                job_index: 0,
                attempt: 2,
                output_path: "tmp/q17-0".into(),
                file: DataFile {
                    lines: vec!["1|2".into(), "3|4".into()],
                    frames: Vec::new(),
                },
                metrics: Box::new(JobMetrics {
                    name: "j0".into(),
                    map_time_s: 1.5,
                    reduce_time_s: 0.5,
                    attempt: 2,
                    map_dispatches: vec![3, 4],
                    ..JobMetrics::default()
                }),
            },
            JournalRecord::JobDone {
                id: 1,
                job_index: 1,
                attempt: 0,
                output_path: "out/q17".into(),
                file: DataFile {
                    lines: Vec::new(),
                    frames: vec![vec![1, 2, 3], vec![4, 5]],
                },
                metrics: Box::default(),
            },
            JournalRecord::Done {
                id: 0,
                kind: DispositionKind::Completed,
                done_s: 99.75,
            },
            JournalRecord::Done {
                id: 1,
                kind: DispositionKind::Shed,
                done_s: 2.0,
            },
        ]
    }

    fn journal_of(records: &[JournalRecord]) -> Journal {
        let mut j = Journal::in_memory();
        for r in records {
            j.append(r);
        }
        j
    }

    #[test]
    fn roundtrip_all_record_types() {
        let records = sample_records();
        let j = journal_of(&records);
        let rec = recover(j.bytes()).unwrap();
        assert_eq!(rec.records, records);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.valid_len, j.bytes().len());
        assert_eq!(j.record_count(), records.len());
    }

    #[test]
    fn empty_journal_recovers_empty() {
        let rec = recover(&[]).unwrap();
        assert!(rec.records.is_empty());
        let rec = recover(Journal::in_memory().bytes()).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn every_truncation_point_recovers_a_prefix() {
        // The crash model: a killed process leaves an arbitrary byte prefix
        // of its append-only journal. Every prefix must recover cleanly to
        // a record-prefix, never panic, never error — a torn tail is
        // normal, not corruption.
        let records = sample_records();
        let j = journal_of(&records);
        let bytes = j.bytes();
        // Record boundaries, to validate the prefix property exactly.
        let mut boundaries = vec![JOURNAL_MAGIC.len()];
        {
            let mut probe = Journal::in_memory();
            for r in &records {
                probe.append(r);
                boundaries.push(probe.bytes().len());
            }
        }
        for cut in 0..=bytes.len() {
            let rec = recover(&bytes[..cut]).unwrap_or_else(|e| {
                panic!(
                    "cut {cut}/{}: torn prefix must recover, got {e}",
                    bytes.len()
                )
            });
            if cut < JOURNAL_MAGIC.len() {
                // Even the magic can tear on the very first append.
                assert!(rec.records.is_empty());
                assert_eq!(rec.valid_len, 0);
                continue;
            }
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                rec.records.len(),
                whole,
                "cut {cut}: recovered records must be exactly the whole ones"
            );
            assert_eq!(rec.records[..], records[..whole]);
            assert_eq!(rec.valid_len, boundaries[whole]);
        }
    }

    #[test]
    fn mid_stream_corruption_is_typed_not_a_panic() {
        let records = sample_records();
        let j = journal_of(&records);
        let clean = j.bytes().to_vec();
        // Flip every byte (one at a time) of the *first* record's frame:
        // always followed by more data, so never classifiable as torn.
        let first_end = {
            let mut probe = Journal::in_memory();
            probe.append(&records[0]);
            probe.bytes().len()
        };
        let mut corrupt_seen = 0;
        for i in JOURNAL_MAGIC.len()..first_end {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            match recover(&bad) {
                Err(MapRedError::JournalCorrupt { .. }) => corrupt_seen += 1,
                // A flipped length field can point past EOF, which is
                // indistinguishable from a torn tail; that prefix loss is
                // safe (never wrong data), just not typed corruption.
                Ok(rec) => assert!(rec.records.len() < records.len()),
                Err(other) => panic!("flip at {i}: unexpected error {other}"),
            }
        }
        assert!(
            corrupt_seen > 0,
            "some flips must surface as JournalCorrupt"
        );
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let mut bytes = journal_of(&sample_records()).bytes().to_vec();
        bytes[0] = b'Z';
        assert!(matches!(
            recover(&bytes),
            Err(MapRedError::JournalCorrupt { offset: 0, .. })
        ));
    }

    #[test]
    fn metrics_survive_bit_identically() {
        // Awkward floats: negative zero, subnormals, values with no short
        // decimal form. to_bits round-tripping must preserve all of them.
        let m = JobMetrics {
            name: "bits".into(),
            map_time_s: -0.0,
            reduce_time_s: f64::MIN_POSITIVE / 2.0,
            startup_delay_s: 0.1 + 0.2,
            wasted_s: 1e-300,
            verify_s: 12_345.678_901_234_567,
            speculative_slot_s: f64::MAX,
            ..JobMetrics::default()
        };
        let rec = JournalRecord::JobDone {
            id: 7,
            job_index: 3,
            attempt: 1,
            output_path: "x".into(),
            file: DataFile::default(),
            metrics: Box::new(m.clone()),
        };
        let j = journal_of(std::slice::from_ref(&rec));
        let back = recover(j.bytes()).unwrap().records;
        let JournalRecord::JobDone { metrics, .. } = &back[0] else {
            panic!("wrong record type");
        };
        assert_eq!(
            metrics.map_time_s.to_bits(),
            m.map_time_s.to_bits(),
            "-0.0 must stay -0.0"
        );
        assert_eq!(metrics.as_ref(), &m);
    }

    #[test]
    fn file_backed_journal_flushes_and_reopens() {
        let dir = std::env::temp_dir().join(format!("ysmart-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.bin");
        let records = sample_records();
        {
            let mut j = Journal::open(&path).unwrap();
            for r in &records[..3] {
                j.append(r);
            }
            j.flush().unwrap();
            for r in &records[3..] {
                j.append(r);
            }
            j.flush().unwrap();
        }
        let j = Journal::open(&path).unwrap();
        let rec = recover(j.bytes()).unwrap();
        assert_eq!(rec.records, records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_and_reset_starts_a_fresh_epoch() {
        let mut j = journal_of(&sample_records());
        let rec = j.recover_and_reset().unwrap();
        assert_eq!(rec.records.len(), 5);
        assert_eq!(j.bytes(), JOURNAL_MAGIC);
        assert_eq!(j.record_count(), 0);
    }
}
