//! Errors of the simulated cluster.

use std::fmt;

/// Errors raised while executing MapReduce jobs on the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum MapRedError {
    /// An input path does not exist in HDFS.
    NoSuchFile(String),
    /// A node's local disk overflowed while spilling intermediate data —
    /// the failure mode that stopped Pig's Q-CSA run in the paper (§VII-D).
    DiskFull {
        /// Node index whose disk overflowed.
        node: usize,
        /// Bytes the job attempted to hold on that node's disk.
        needed_bytes: u64,
        /// The node's configured capacity.
        capacity_bytes: u64,
    },
    /// A job exceeded the configured wall-clock cap (Fig. 11's one-hour
    /// cut-off for Hive-with-compression on Q21).
    TimeLimitExceeded {
        /// The cap in simulated seconds.
        limit_s: f64,
    },
    /// A mapper or reducer reported a data error.
    User(String),
    /// A task failed more times than the framework retries (4, as Hadoop).
    TooManyFailures {
        /// The task that kept failing.
        task: String,
    },
}

impl fmt::Display for MapRedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapRedError::NoSuchFile(p) => write!(f, "no such file in HDFS: {p}"),
            MapRedError::DiskFull {
                node,
                needed_bytes,
                capacity_bytes,
            } => write!(
                f,
                "local disk full on node {node}: needed {needed_bytes} bytes, capacity {capacity_bytes}"
            ),
            MapRedError::TimeLimitExceeded { limit_s } => {
                write!(f, "job exceeded time limit of {limit_s} s")
            }
            MapRedError::User(msg) => write!(f, "task error: {msg}"),
            MapRedError::TooManyFailures { task } => {
                write!(f, "task {task} failed too many times")
            }
        }
    }
}

impl std::error::Error for MapRedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            MapRedError::NoSuchFile("x".into()),
            MapRedError::DiskFull {
                node: 0,
                needed_bytes: 10,
                capacity_bytes: 5,
            },
            MapRedError::TimeLimitExceeded { limit_s: 3600.0 },
            MapRedError::User("boom".into()),
            MapRedError::TooManyFailures { task: "m-3".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
