//! Errors of the simulated cluster.

use std::fmt;

/// Errors raised while executing MapReduce jobs on the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum MapRedError {
    /// An input path does not exist in HDFS.
    NoSuchFile(String),
    /// The per-node local disks overflowed while spilling intermediate data —
    /// the failure mode that stopped Pig's Q-CSA run in the paper (§VII-D).
    /// The cost model spreads intermediate data evenly over the cluster, so
    /// the overflow is reported as the modelled per-node load rather than a
    /// fabricated node index.
    DiskFull {
        /// Worker nodes the intermediate data is spread across.
        nodes: usize,
        /// Modelled bytes each node's disk would have to hold.
        per_node_bytes: u64,
        /// A node's configured capacity.
        capacity_bytes: u64,
    },
    /// A job exceeded the configured wall-clock cap (Fig. 11's one-hour
    /// cut-off for Hive-with-compression on Q21).
    TimeLimitExceeded {
        /// The cap in simulated seconds.
        limit_s: f64,
    },
    /// A mapper or reducer reported a data error.
    User(String),
    /// A task failed more times than the framework retries (4, as Hadoop).
    TooManyFailures {
        /// The task that kept failing.
        task: String,
    },
    /// Every worker node died during one job attempt — nothing survives to
    /// re-execute lost tasks, so the whole attempt is lost (the chain-level
    /// [`crate::config::RetryPolicy`] can retry it).
    ClusterLost {
        /// The job whose attempt lost the cluster.
        job: String,
        /// Worker nodes that died.
        nodes: usize,
    },
    /// Every replica of an HDFS block failed its checksum — there is no
    /// clean copy left to read. Retryable at the chain level: a retried
    /// attempt draws fresh corruption randomness (the at-rest flip is
    /// re-sampled, as a re-replicated block would be).
    CorruptBlock {
        /// HDFS path of the file holding the block.
        path: String,
        /// Block index within the file (= map split index).
        block: usize,
        /// Replicas tried, all corrupt.
        replicas: u32,
    },
    /// A job skipped more malformed input records than
    /// [`crate::config::ClusterConfig::skip_bad_records`] allows. Not
    /// retryable — the budget is a policy decision, and a rerun faces the
    /// same data.
    TooManyBadRecords {
        /// The job that hit the budget.
        job: String,
        /// Malformed records encountered.
        skipped: u64,
        /// The configured budget.
        budget: u64,
    },
    /// [`crate::chain::run_chain`] was handed a chain with no jobs.
    EmptyChain,
    /// The tenant's bounded admission queue was full when the query arrived
    /// — the scheduler sheds load instead of queueing unboundedly (or
    /// hanging). Resubmit later; nothing ran.
    QueueFull {
        /// The tenant whose queue overflowed.
        tenant: String,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The scheduler refused the query at admission for a reason other than
    /// queue depth — an unknown tenant, a deadline that had already expired
    /// at submission. Nothing ran.
    Rejected {
        /// The tenant named by the request.
        tenant: String,
        /// Why admission was refused.
        reason: String,
    },
    /// The query's deadline passed before its chain completed. The
    /// scheduler cancelled it cleanly at the deadline, releasing its slot
    /// share; the accompanying [`crate::chain::ChainFailure`]-style report
    /// carries the partial metrics of everything that ran first.
    DeadlineExceeded {
        /// The absolute deadline on the workload timeline, seconds.
        deadline_s: f64,
    },
    /// The tenant spent its cross-chain retry budget: a retryable failure
    /// that would normally back off and re-run instead fails the chain
    /// fast, so one tenant's fault-retry storm cannot monopolise the
    /// cluster. Partial metrics report what ran before the budget died.
    RetryBudgetExhausted {
        /// The tenant whose budget ran out.
        tenant: String,
        /// Retries the tenant was allowed across all of its chains.
        budget: usize,
    },
    /// The scheduler is draining for a graceful shutdown: admission is
    /// closed, in-flight chains run to completion, and new or still-queued
    /// queries are shed with this typed error (distinct from
    /// [`MapRedError::QueueFull`] — the queue may be empty; the *service*
    /// is going away). Resubmit after the restart; nothing ran.
    Draining,
    /// The workload journal holds a record that is neither valid nor a torn
    /// tail: a checksum mismatch or undecodable payload *followed by more
    /// data*. A torn tail (an interrupted final append) is silently
    /// truncated and recovered instead; this error means at-rest journal
    /// corruption that recovery refuses to guess across.
    JournalCorrupt {
        /// Byte offset of the bad record.
        offset: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for MapRedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapRedError::NoSuchFile(p) => write!(f, "no such file in HDFS: {p}"),
            MapRedError::DiskFull {
                nodes,
                per_node_bytes,
                capacity_bytes,
            } => write!(
                f,
                "local disks full: {per_node_bytes} bytes per node across {nodes} nodes, capacity {capacity_bytes}"
            ),
            MapRedError::TimeLimitExceeded { limit_s } => {
                write!(f, "job exceeded time limit of {limit_s} s")
            }
            MapRedError::User(msg) => write!(f, "task error: {msg}"),
            MapRedError::TooManyFailures { task } => {
                write!(f, "task {task} failed too many times")
            }
            MapRedError::ClusterLost { job, nodes } => {
                write!(f, "all {nodes} worker nodes lost during job {job}")
            }
            MapRedError::CorruptBlock {
                path,
                block,
                replicas,
            } => write!(
                f,
                "block {block} of {path} is corrupt on all {replicas} replicas"
            ),
            MapRedError::TooManyBadRecords {
                job,
                skipped,
                budget,
            } => write!(
                f,
                "job {job} skipped {skipped} malformed records, budget {budget}"
            ),
            MapRedError::EmptyChain => write!(f, "job chain has no jobs"),
            MapRedError::QueueFull { tenant, capacity } => {
                write!(f, "tenant {tenant}: admission queue full ({capacity} waiting), query shed")
            }
            MapRedError::Rejected { tenant, reason } => {
                write!(f, "tenant {tenant}: admission rejected: {reason}")
            }
            MapRedError::DeadlineExceeded { deadline_s } => {
                write!(f, "query cancelled at its deadline ({deadline_s} s)")
            }
            MapRedError::RetryBudgetExhausted { tenant, budget } => write!(
                f,
                "tenant {tenant}: retry budget of {budget} exhausted, chain failed fast"
            ),
            MapRedError::Draining => {
                write!(f, "service draining: admission closed, query shed")
            }
            MapRedError::JournalCorrupt { offset, reason } => {
                write!(f, "workload journal corrupt at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for MapRedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            MapRedError::NoSuchFile("x".into()),
            MapRedError::DiskFull {
                nodes: 2,
                per_node_bytes: 10,
                capacity_bytes: 5,
            },
            MapRedError::TimeLimitExceeded { limit_s: 3600.0 },
            MapRedError::User("boom".into()),
            MapRedError::TooManyFailures { task: "m-3".into() },
            MapRedError::ClusterLost {
                job: "j1".into(),
                nodes: 4,
            },
            MapRedError::CorruptBlock {
                path: "data/t".into(),
                block: 2,
                replicas: 3,
            },
            MapRedError::TooManyBadRecords {
                job: "j1".into(),
                skipped: 5,
                budget: 2,
            },
            MapRedError::EmptyChain,
            MapRedError::QueueFull {
                tenant: "t0".into(),
                capacity: 4,
            },
            MapRedError::Rejected {
                tenant: "t1".into(),
                reason: "unknown tenant".into(),
            },
            MapRedError::DeadlineExceeded { deadline_s: 120.0 },
            MapRedError::RetryBudgetExhausted {
                tenant: "t2".into(),
                budget: 8,
            },
            MapRedError::Draining,
            MapRedError::JournalCorrupt {
                offset: 96,
                reason: "checksum mismatch".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
