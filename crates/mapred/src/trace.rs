//! Structured execution tracing: a span timeline of everything the
//! simulator charged time for.
//!
//! When enabled on a [`crate::Cluster`], the engine records one
//! [`TraceEvent`] per simulated event — each map/reduce task attempt,
//! shuffle fetch, checksum verification, speculative copy, node-loss
//! re-execution, backoff wait and inter-job scheduling gap — with its start
//! and duration in *simulated* seconds. Spans are keyed by simulated time
//! and task index, never wall clock, so a trace is bit-identical across
//! `exec_threads` settings (pinned by the determinism suite).
//!
//! Exports:
//!
//! * [`Trace::to_chrome_json`] — the Chrome-trace `trace_events` JSON
//!   format, loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
//!   One trace "process" per executed job (pid 0 is the chain scheduler),
//!   one "thread" per cluster slot; speculative backup copies run on shadow
//!   lanes above [`SPEC_LANE_BASE`].
//! * [`Trace::timeline`] — a compact per-phase text summary.
//!
//! The exporter is hand-rolled (the workspace has no JSON dependency);
//! [`validate_chrome_trace`] is an equally dependency-free parser used by
//! the bench harness and CI to prove emitted traces actually parse.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Thread-id offset of speculative-copy shadow lanes: a backup of a task on
/// slot `s` is drawn on lane `SPEC_LANE_BASE + s`, visually beside the slot
/// it duplicates without overlapping real work.
pub const SPEC_LANE_BASE: u32 = 10_000;

/// A typed argument attached to a trace event (Chrome-trace `args`).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned counter (record counts, byte counts, event tallies).
    U64(u64),
    /// Simulated seconds or other real-valued measure.
    F64(f64),
    /// Free-form label.
    Str(String),
}

/// One span or instant on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Trace process: 0 = the chain scheduler, `1..` = executed jobs in
    /// completion order (assigned by [`Trace::commit_job`]).
    pub pid: u32,
    /// Trace thread: the cluster slot the work ran on (shadow lanes ≥
    /// [`SPEC_LANE_BASE`] hold speculative copies).
    pub tid: u32,
    /// Event category — the taxonomy DESIGN.md documents (`map`, `reduce`,
    /// `fetch`, `verify`, `attempt_failed`, `reexec`, `speculative`,
    /// `write`, `gap`, `backoff`, `job_failed`, `collision`, `skip`,
    /// `dispatch`).
    pub cat: &'static str,
    /// Human-readable name shown on the span.
    pub name: String,
    /// Start, simulated seconds from chain start.
    pub start_s: f64,
    /// Duration in simulated seconds (0 and `instant` for point events).
    pub dur_s: f64,
    /// Point event (`ph:"i"`) instead of a complete span (`ph:"X"`).
    pub instant: bool,
    /// Key/value annotations.
    pub args: Vec<(String, ArgValue)>,
}

impl TraceEvent {
    /// A complete span on lane `tid`.
    #[must_use]
    pub fn span(tid: u32, cat: &'static str, name: String, start_s: f64, dur_s: f64) -> Self {
        TraceEvent {
            pid: 0,
            tid,
            cat,
            name,
            start_s,
            dur_s,
            instant: false,
            args: Vec::new(),
        }
    }

    /// A point event on lane `tid`.
    #[must_use]
    pub fn instant(tid: u32, cat: &'static str, name: String, ts_s: f64) -> Self {
        TraceEvent {
            pid: 0,
            tid,
            cat,
            name,
            start_s: ts_s,
            dur_s: 0.0,
            instant: true,
            args: Vec::new(),
        }
    }

    /// Attaches an argument (builder style).
    #[must_use]
    pub fn arg(mut self, key: impl Into<String>, value: ArgValue) -> Self {
        self.args.push((key.into(), value));
        self
    }

    /// End of the span in simulated seconds.
    #[must_use]
    pub fn end_s(&self) -> f64 {
        self.start_s + self.dur_s
    }
}

/// The recorded timeline of one chain execution (or several, merged).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    /// Labels of pids `1..`; pid 0 is always the chain scheduler.
    processes: Vec<String>,
    /// Simulated time at which the next job attempt starts — set by the
    /// chain runner before each attempt, read by the engine as the origin
    /// of that attempt's spans.
    cursor_s: f64,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Simulated start time of the job attempt being recorded.
    #[must_use]
    pub fn cursor_s(&self) -> f64 {
        self.cursor_s
    }

    /// Moves the attempt origin (chain elapsed time plus scheduling delay).
    pub fn set_cursor(&mut self, s: f64) {
        self.cursor_s = s;
    }

    /// Records a chain-scheduler span (pid 0, lane 0): inter-job gaps,
    /// retry backoffs, failed job attempts, admission-queue waits.
    pub fn chain_span(&mut self, cat: &'static str, name: String, start_s: f64, dur_s: f64) {
        self.events
            .push(TraceEvent::span(0, cat, name, start_s, dur_s));
    }

    /// Records a chain-scheduler instant (pid 0, lane 0): admission,
    /// deadline cancellation, load shedding.
    pub fn chain_instant(&mut self, cat: &'static str, name: String, ts_s: f64) {
        self.events.push(TraceEvent::instant(0, cat, name, ts_s));
    }

    /// Shifts every recorded event `dt_s` later on the timeline. The
    /// multi-tenant scheduler records each chain's lane in chain-local time
    /// (admission = 0) and shifts it to workload-absolute time on
    /// completion, so merged traces of co-running chains line up.
    pub fn shift_s(&mut self, dt_s: f64) {
        for e in &mut self.events {
            e.start_s += dt_s;
        }
        self.cursor_s += dt_s;
    }

    /// Commits one successful job attempt's buffered events under a new
    /// process labelled `label`, returning the assigned pid. Events arrive
    /// with engine-local pids (ignored) and are retagged.
    pub fn commit_job(&mut self, label: String, events: Vec<TraceEvent>) -> u32 {
        self.processes.push(label);
        let pid = self.processes.len() as u32;
        self.events.extend(events.into_iter().map(|mut e| {
            e.pid = pid;
            e
        }));
        pid
    }

    /// All recorded events, in commit order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Labels of the committed job processes (pid = index + 1).
    #[must_use]
    pub fn process_labels(&self) -> &[String] {
        &self.processes
    }

    /// Latest span end across all events — with complete coverage this
    /// equals the chain's total simulated time.
    #[must_use]
    pub fn max_end_s(&self) -> f64 {
        self.events
            .iter()
            .map(TraceEvent::end_s)
            .fold(0.0, f64::max)
    }

    /// Absorbs another chain's trace as additional processes, prefixing its
    /// labels with `prefix` (the bench harness merges one trace per
    /// query/strategy run into a single file). The absorbed chain scheduler
    /// becomes its own named process so concurrent chains don't interleave
    /// on pid 0.
    pub fn absorb(&mut self, prefix: &str, other: Trace) {
        let base = self.processes.len() as u32;
        self.processes.push(format!("{prefix}/chain"));
        let chain_pid = base + 1;
        for label in other.processes {
            self.processes.push(format!("{prefix}/{label}"));
        }
        for mut e in other.events {
            e.pid = if e.pid == 0 {
                chain_pid
            } else {
                chain_pid + e.pid
            };
            self.events.push(e);
        }
    }

    /// Serialises the trace in Chrome's `trace_events` JSON format
    /// (timestamps in microseconds, as the format requires). Deterministic:
    /// events are emitted in recorded order, metadata in (pid, tid) order.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 128 + 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
        };
        // Metadata: process and thread names.
        let mut lanes: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut pid0_used = false;
        for e in &self.events {
            lanes.insert((e.pid, e.tid));
            pid0_used |= e.pid == 0;
        }
        if pid0_used {
            push(&mut out, &mut first);
            out.push_str(
                "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{\"name\":\"chain scheduler\"}}",
            );
        }
        for (i, label) in self.processes.iter().enumerate() {
            push(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                i + 1,
                json_string(label)
            );
        }
        for (pid, tid) in lanes {
            push(&mut out, &mut first);
            let lane = if pid == 0 {
                "scheduler".to_string()
            } else if tid >= SPEC_LANE_BASE {
                format!("slot {} (speculative)", tid - SPEC_LANE_BASE)
            } else {
                format!("slot {tid}")
            };
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_string(&lane)
            );
        }
        // The events themselves.
        for e in &self.events {
            push(&mut out, &mut first);
            out.push_str("{\"ph\":\"");
            out.push_str(if e.instant { "i" } else { "X" });
            let _ = write!(
                out,
                "\",\"pid\":{},\"tid\":{},\"cat\":\"{}\",\"name\":{},\"ts\":{}",
                e.pid,
                e.tid,
                e.cat,
                json_string(&e.name),
                json_number(e.start_s * 1e6)
            );
            if e.instant {
                out.push_str(",\"s\":\"t\"");
            } else {
                let _ = write!(out, ",\"dur\":{}", json_number(e.dur_s * 1e6));
            }
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:", json_string(k));
                    match v {
                        ArgValue::U64(n) => {
                            let _ = write!(out, "{n}");
                        }
                        ArgValue::F64(x) => out.push_str(&json_number(*x)),
                        ArgValue::Str(s) => out.push_str(&json_string(s)),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// A compact per-process, per-category text summary of the timeline.
    #[must_use]
    pub fn timeline(&self) -> String {
        /// Per-category rollup: count, Σdur, min start, max end.
        type CatStats = (usize, f64, f64, f64);
        let mut by_pid: BTreeMap<u32, BTreeMap<&'static str, CatStats>> = BTreeMap::new();
        for e in &self.events {
            let slot = by_pid.entry(e.pid).or_default().entry(e.cat).or_insert((
                0,
                0.0,
                f64::INFINITY,
                0.0,
            ));
            slot.0 += 1;
            slot.1 += e.dur_s;
            slot.2 = slot.2.min(e.start_s);
            slot.3 = slot.3.max(e.end_s());
        }
        let mut out = String::from("trace timeline (simulated seconds)\n");
        for (pid, cats) in &by_pid {
            let label = if *pid == 0 {
                "chain scheduler"
            } else {
                self.processes
                    .get(*pid as usize - 1)
                    .map_or("?", String::as_str)
            };
            let start = cats.values().fold(f64::INFINITY, |a, c| a.min(c.2));
            let end = cats.values().fold(0.0f64, |a, c| a.max(c.3));
            let _ = writeln!(out, "{label}: {start:.2}s .. {end:.2}s");
            for (cat, (count, dur, s, e)) in cats {
                let _ = writeln!(
                    out,
                    "  {cat:<14} x{count:<4} {s:>9.2}s .. {e:>9.2}s  (sum {dur:.2}s)"
                );
            }
        }
        out
    }
}

/// JSON string literal with escaping (quotes, backslash, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite f64 as a JSON number. Rust's `Display` for `f64` never emits
/// scientific notation or leading/trailing junk, so the text is always a
/// valid JSON number; non-finite values (never produced by the simulator)
/// degrade to 0.
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Aggregate statistics of a parsed Chrome trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// All events, metadata included.
    pub events: usize,
    /// Complete (`ph:"X"`) spans.
    pub spans: usize,
    /// Span count per category.
    pub span_cats: BTreeMap<String, usize>,
    /// Distinct non-metadata pids.
    pub processes: usize,
    /// Latest span end in (simulated) seconds.
    pub max_end_s: f64,
}

/// Parses Chrome-trace JSON (with a from-scratch JSON parser — the point is
/// to prove the emitted text parses, not to trust the emitter) and returns
/// aggregate statistics.
///
/// # Errors
///
/// A description of the first malformed construct: bad JSON syntax, a
/// missing `traceEvents` array, or an event missing required fields.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let value = JsonParser::new(json).parse()?;
    let Json::Object(top) = value else {
        return Err("top level is not an object".into());
    };
    let events = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?;
    let Json::Array(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    let mut pids: BTreeSet<i64> = BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let Json::Object(fields) = e else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(Json::Str(ph)) = get("ph") else {
            return Err(format!("event {i} has no ph"));
        };
        let Some(Json::Num(pid)) = get("pid") else {
            return Err(format!("event {i} has no pid"));
        };
        if get("name").is_none() {
            return Err(format!("event {i} has no name"));
        }
        if ph == "M" {
            continue;
        }
        pids.insert(*pid as i64);
        let Some(Json::Num(ts)) = get("ts") else {
            return Err(format!("event {i} has no ts"));
        };
        if ph == "X" {
            let Some(Json::Num(dur)) = get("dur") else {
                return Err(format!("span {i} has no dur"));
            };
            stats.spans += 1;
            if let Some(Json::Str(cat)) = get("cat") {
                *stats.span_cats.entry(cat.clone()).or_insert(0) += 1;
            }
            stats.max_end_s = stats.max_end_s.max((ts + dur) / 1e6);
        }
    }
    stats.processes = pids.len();
    Ok(stats)
}

/// Minimal JSON value tree for validation.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Recursive-descent JSON parser over the full grammar the exporter emits.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through whole.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut tr = Trace::new();
        tr.chain_span("gap", "scheduling gap".into(), 0.0, 2.0);
        tr.set_cursor(2.0);
        let events = vec![
            TraceEvent::span(0, "map", "m0".into(), 2.0, 5.0).arg("in_records", ArgValue::U64(100)),
            TraceEvent::span(1, "map", "m1".into(), 2.0, 4.0),
            TraceEvent::span(SPEC_LANE_BASE, "speculative", "m0 backup".into(), 2.0, 5.0),
            TraceEvent::span(0, "reduce", "r0 \"quoted\"".into(), 7.0, 3.0)
                .arg("note", ArgValue::Str("tab\there".into()))
                .arg("frac", ArgValue::F64(0.25)),
            TraceEvent::instant(0, "collision", "checksum collision".into(), 7.5),
        ];
        tr.commit_job("job-a".into(), events);
        tr
    }

    #[test]
    fn export_round_trips_through_validator() {
        let tr = sample();
        let json = tr.to_chrome_json();
        let stats = validate_chrome_trace(&json).expect("emitted JSON must parse");
        assert_eq!(stats.spans, 5);
        assert_eq!(stats.span_cats.get("map"), Some(&2));
        assert_eq!(stats.processes, 2, "chain scheduler + one job");
        assert!((stats.max_end_s - tr.max_end_s()).abs() < 1e-9);
        assert!((tr.max_end_s() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn commit_assigns_sequential_pids() {
        let mut tr = Trace::new();
        let a = tr.commit_job(
            "a".into(),
            vec![TraceEvent::span(0, "map", "m".into(), 0.0, 1.0)],
        );
        let b = tr.commit_job(
            "b".into(),
            vec![TraceEvent::span(0, "map", "m".into(), 1.0, 1.0)],
        );
        assert_eq!((a, b), (1, 2));
        assert_eq!(tr.events()[0].pid, 1);
        assert_eq!(tr.events()[1].pid, 2);
    }

    #[test]
    fn absorb_offsets_pids_and_prefixes_labels() {
        let mut merged = Trace::new();
        merged.absorb("q17/YSmart", sample());
        merged.absorb("q18/Hive", sample());
        let labels = merged.process_labels();
        assert_eq!(labels[0], "q17/YSmart/chain");
        assert_eq!(labels[1], "q17/YSmart/job-a");
        assert_eq!(labels[2], "q18/Hive/chain");
        // Both chains' scheduler spans moved off pid 0.
        assert!(merged.events().iter().all(|e| e.pid != 0));
        let json = merged.to_chrome_json();
        let stats = validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.processes, 4);
    }

    #[test]
    fn timeline_summarises_categories() {
        let text = sample().timeline();
        assert!(text.contains("chain scheduler"), "{text}");
        assert!(text.contains("job-a"), "{text}");
        assert!(text.contains("map"), "{text}");
        assert!(text.contains("x2"), "two map spans: {text}");
    }

    #[test]
    fn string_escaping_survives_round_trip() {
        let tricky = "a\"b\\c\nd\te\u{1}f";
        let json = json_string(tricky);
        let Json::Str(back) = JsonParser::new(&json).parse().unwrap() else {
            panic!("not a string");
        };
        assert_eq!(back, tricky);
    }

    #[test]
    fn validator_rejects_malformed_input() {
        assert!(validate_chrome_trace("{").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"pid\":1}]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_ok());
    }

    #[test]
    fn empty_trace_exports_empty_event_list() {
        let json = Trace::new().to_chrome_json();
        let stats = validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.events, 0);
        assert_eq!(stats.spans, 0);
    }
}
