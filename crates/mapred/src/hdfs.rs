//! The in-memory global file system (HDFS stand-in).
//!
//! Files are line-oriented, matching the raw-data-file model of the paper's
//! common mapper (§VI-A): a record is a line of text.

use std::collections::BTreeMap;

use crate::error::MapRedError;

/// One line-oriented file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataFile {
    /// The records.
    pub lines: Vec<String>,
}

impl DataFile {
    /// Total payload bytes (line lengths plus one newline each).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.lines.iter().map(|l| l.len() as u64 + 1).sum()
    }
}

/// The global file system of the simulated cluster.
#[derive(Debug, Clone, Default)]
pub struct Hdfs {
    files: BTreeMap<String, DataFile>,
}

impl Hdfs {
    /// An empty file system.
    #[must_use]
    pub fn new() -> Self {
        Hdfs::default()
    }

    /// Creates or replaces a file from lines.
    pub fn put(&mut self, path: &str, lines: Vec<String>) {
        self.files.insert(path.to_string(), DataFile { lines });
    }

    /// Reads a file.
    ///
    /// # Errors
    ///
    /// [`MapRedError::NoSuchFile`] when absent.
    pub fn get(&self, path: &str) -> Result<&DataFile, MapRedError> {
        self.files
            .get(path)
            .ok_or_else(|| MapRedError::NoSuchFile(path.to_string()))
    }

    /// Whether a path exists.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Removes a file (idempotent).
    pub fn delete(&mut self, path: &str) {
        self.files.remove(path);
    }

    /// All paths, in order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Total bytes stored.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(DataFile::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut fs = Hdfs::new();
        fs.put("a", vec!["1|x".into(), "2|y".into()]);
        assert_eq!(fs.get("a").unwrap().lines.len(), 2);
        assert!(fs.exists("a"));
        fs.delete("a");
        assert!(matches!(fs.get("a"), Err(MapRedError::NoSuchFile(_))));
    }

    #[test]
    fn bytes_count_newlines() {
        let f = DataFile {
            lines: vec!["ab".into(), "c".into()],
        };
        assert_eq!(f.bytes(), 3 + 2);
    }

    #[test]
    fn total_bytes_sums_files() {
        let mut fs = Hdfs::new();
        fs.put("a", vec!["ab".into()]);
        fs.put("b", vec!["c".into()]);
        assert_eq!(fs.total_bytes(), 5);
    }
}
