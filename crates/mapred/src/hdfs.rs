//! The in-memory global file system (HDFS stand-in).
//!
//! Files are line-oriented, matching the raw-data-file model of the paper's
//! common mapper (§VI-A): a record is a line of text.
//!
//! # Block integrity
//!
//! Real HDFS stores a CRC per 512-byte chunk in a `.crc` sidecar and
//! verifies it on every read; a mismatch fails the replica and the client
//! transparently reads another one. This module reproduces that contract at
//! block granularity (one block = one map split, which is exactly what a
//! Hadoop map task reads): [`read_block_verified`] draws per-replica
//! corruption from a seeded [`CorruptionModel`], *actually flips a bit* in
//! the corrupted replica's bytes, detects the flip by comparing the XXH64
//! checksum ([`crate::hash::checksum_bytes`]) against the stored one, and
//! fails over to the next replica. Only a checksum-clean replica's bytes —
//! which are the canonical ones — ever reach the mapper, so injected
//! corruption can never change query results, only cost time. A block whose
//! every replica is corrupt has no clean copy left and surfaces
//! [`MapRedError::CorruptBlock`].

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::CorruptionModel;
use crate::error::MapRedError;
use crate::hash::checksum_bytes;

/// One file: line-oriented text, or a sequence of columnar frames.
///
/// Exactly one of the two representations is populated; a file is columnar
/// iff it holds frames ([`DataFile::is_columnar`]). Frame boundaries are
/// the split granularity of the columnar path (a map task reads whole
/// frames), the way text blocks split on line boundaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataFile {
    /// The records, when text.
    pub lines: Vec<String>,
    /// Encoded [`ysmart_rel::ColumnBatch`] frames, when columnar.
    pub frames: Vec<Vec<u8>>,
}

impl DataFile {
    /// Total payload bytes: line lengths plus one newline each, or the
    /// actual encoded frame bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.lines.iter().map(|l| l.len() as u64 + 1).sum::<u64>()
            + self.frames.iter().map(|f| f.len() as u64).sum::<u64>()
    }

    /// Whether the file stores columnar frames.
    #[must_use]
    pub fn is_columnar(&self) -> bool {
        !self.frames.is_empty()
    }
}

/// The global file system of the simulated cluster.
///
/// Beyond the path → file map, the store keeps a *per-node disk model*:
/// every file is assigned to one of `nodes` data nodes by a stable hash of
/// its path, and each node's used-byte counter is updated on every put,
/// replacement and delete. The counters are load-bearing for capacity-
/// pressure decisions (the result-reuse cache evicts against them), so they
/// must stay exactly reconciled with [`Hdfs::total_bytes`] across arbitrary
/// put/delete/evict cycles — [`Hdfs::accounting_reconciled`] checks the
/// invariant and the property suite exercises it.
#[derive(Debug, Clone)]
pub struct Hdfs {
    files: BTreeMap<String, DataFile>,
    /// Data-node count of the per-node disk model (≥ 1).
    nodes: usize,
    /// Bytes stored per node; `node_used.iter().sum() == total_bytes()`.
    node_used: Vec<u64>,
}

impl Default for Hdfs {
    fn default() -> Self {
        Hdfs {
            files: BTreeMap::new(),
            nodes: 1,
            node_used: vec![0],
        }
    }
}

impl Hdfs {
    /// An empty file system with a single-node disk model.
    #[must_use]
    pub fn new() -> Self {
        Hdfs::default()
    }

    /// An empty file system modelling `nodes` data nodes.
    #[must_use]
    pub fn with_nodes(nodes: usize) -> Self {
        let nodes = nodes.max(1);
        Hdfs {
            files: BTreeMap::new(),
            nodes,
            node_used: vec![0; nodes],
        }
    }

    /// Re-shapes the per-node disk model to `nodes` data nodes, re-assigning
    /// every existing file and rebuilding the used-byte counters.
    pub fn set_nodes(&mut self, nodes: usize) {
        self.nodes = nodes.max(1);
        self.node_used = vec![0; self.nodes];
        for (path, file) in &self.files {
            let n = node_index(path, self.nodes);
            self.node_used[n] += file.bytes();
        }
    }

    /// The data node `path` is assigned to.
    #[must_use]
    pub fn node_of(&self, path: &str) -> usize {
        node_index(path, self.nodes)
    }

    /// Stores `file` at `path`, keeping the per-node accounting exact: a
    /// replacement releases the old file's bytes before charging the new
    /// ones. All puts funnel through here.
    fn store(&mut self, path: &str, file: DataFile) {
        let n = node_index(path, self.nodes);
        let new_bytes = file.bytes();
        if let Some(old) = self.files.insert(path.to_string(), file) {
            self.node_used[n] -= old.bytes();
        }
        self.node_used[n] += new_bytes;
    }

    /// Creates or replaces a text file from lines.
    pub fn put(&mut self, path: &str, lines: Vec<String>) {
        self.store(
            path,
            DataFile {
                lines,
                frames: Vec::new(),
            },
        );
    }

    /// Creates or replaces a columnar file from encoded frames.
    pub fn put_frames(&mut self, path: &str, frames: Vec<Vec<u8>>) {
        self.store(
            path,
            DataFile {
                lines: Vec::new(),
                frames,
            },
        );
    }

    /// Stores a pre-built [`DataFile`] — crash recovery restoring a
    /// journaled job output, in whichever format the job wrote it.
    pub fn put_data(&mut self, path: &str, file: DataFile) {
        self.store(path, file);
    }

    /// Reads a file.
    ///
    /// # Errors
    ///
    /// [`MapRedError::NoSuchFile`] when absent.
    pub fn get(&self, path: &str) -> Result<&DataFile, MapRedError> {
        self.files
            .get(path)
            .ok_or_else(|| MapRedError::NoSuchFile(path.to_string()))
    }

    /// Whether a path exists.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Removes a file (idempotent), releasing its bytes from the owning
    /// node's disk-usage accounting.
    pub fn delete(&mut self, path: &str) {
        if let Some(old) = self.files.remove(path) {
            let n = node_index(path, self.nodes);
            self.node_used[n] -= old.bytes();
        }
    }

    /// All paths, in order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Total bytes stored.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(DataFile::bytes).sum()
    }

    /// Per-node used bytes of the disk model, indexed by node.
    #[must_use]
    pub fn node_used_bytes(&self) -> &[u64] {
        &self.node_used
    }

    /// The most-loaded node's used bytes — the capacity-pressure signal.
    #[must_use]
    pub fn max_node_used_bytes(&self) -> u64 {
        self.node_used.iter().copied().max().unwrap_or(0)
    }

    /// Whether the per-node accounting matches the file map exactly: the
    /// counters sum to [`Hdfs::total_bytes`] and each node's counter equals
    /// the recomputed sum of its files. Cheap enough for tests, meaningful
    /// enough that eviction can trust the counters.
    #[must_use]
    pub fn accounting_reconciled(&self) -> bool {
        let mut recomputed = vec![0u64; self.nodes];
        for (path, file) in &self.files {
            recomputed[node_index(path, self.nodes)] += file.bytes();
        }
        recomputed == self.node_used && self.node_used.iter().sum::<u64>() == self.total_bytes()
    }
}

/// Stable node assignment: a path hashes to the same node on every run and
/// platform (the checksum is XXH64 over the path bytes).
fn node_index(path: &str, nodes: usize) -> usize {
    (checksum_bytes(path.as_bytes()) % nodes.max(1) as u64) as usize
}

/// Canonical byte encoding of a whole file — the stream its content
/// checksum covers: newline-terminated lines for text, length-prefixed
/// frames for columnar (the prefix keeps frame boundaries part of the
/// identity).
#[must_use]
pub fn file_bytes(f: &DataFile) -> Vec<u8> {
    if f.is_columnar() {
        let mut out = Vec::with_capacity(f.frames.iter().map(|fr| fr.len() + 8).sum());
        for fr in &f.frames {
            out.extend_from_slice(&(fr.len() as u64).to_le_bytes());
            out.extend_from_slice(fr);
        }
        out
    } else {
        block_bytes(&f.lines)
    }
}

/// XXH64 checksum of a whole file's canonical bytes — the integrity stamp
/// the result-reuse cache stores at insert time and verifies on every hit.
#[must_use]
pub fn file_checksum(f: &DataFile) -> u64 {
    checksum_bytes(&file_bytes(f))
}

/// Canonical on-disk encoding of a block's lines (newline-terminated), the
/// byte stream the block checksum covers.
#[must_use]
pub fn block_bytes(lines: &[String]) -> Vec<u8> {
    let mut out = Vec::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for l in lines {
        out.extend_from_slice(l.as_bytes());
        out.push(b'\n');
    }
    out
}

/// The stored checksum of a block — computed at write time in real HDFS;
/// here derived from the canonical lines, which are the written bytes.
#[must_use]
pub fn block_checksum(lines: &[String]) -> u64 {
    checksum_bytes(&block_bytes(lines))
}

/// Outcome of one verified block read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRead {
    /// Replicas whose checksum failed before a clean one was found.
    pub corrupt_replicas: u32,
    /// Real payload bytes of the block — the volume each read+verify pass
    /// moved (failover re-reads move it again).
    pub block_bytes: u64,
    /// Injected bit flips the checksum *failed to detect* (the garbled
    /// bytes checksummed equal to the clean ones). Practically unreachable
    /// with XXH64, but counted in every build profile — a silent pass here
    /// would mean corrupt bytes served as clean.
    pub collisions: u32,
}

/// Reads one block through its checksum, failing over across replicas.
///
/// Corruption is drawn per `(path, block, replica, attempt)` from the
/// seeded model; a corrupted replica has a seeded bit of its byte stream
/// genuinely flipped, and detection is the real checksum comparison, not a
/// modelled coin — the returned data is always the canonical bytes of a
/// clean replica.
///
/// # Errors
///
/// [`MapRedError::CorruptBlock`] when every replica fails verification.
pub fn read_block_verified(
    lines: &[String],
    path: &str,
    block: usize,
    replication: u32,
    model: &CorruptionModel,
    attempt: usize,
) -> Result<BlockRead, MapRedError> {
    const SPLITMIX: u64 = 0x9E37_79B9_7F4A_7C15;
    let bytes = block_bytes(lines);
    let read = |corrupt_replicas, collisions| BlockRead {
        corrupt_replicas,
        block_bytes: bytes.len() as u64,
        collisions,
    };
    // An empty block has no bytes to flip — and nothing to protect.
    if model.block_rate <= 0.0 || bytes.is_empty() {
        return Ok(read(0, 0));
    }
    let stored = checksum_bytes(&bytes);
    let base = model.seed
        ^ checksum_bytes(path.as_bytes())
        ^ (block as u64 + 0xB10C).wrapping_mul(SPLITMIX)
        ^ crate::engine::attempt_mix(attempt);
    let replication = replication.max(1);
    let mut corrupt = 0u32;
    let mut collisions = 0u32;
    for replica in 0..replication {
        let mut rng =
            StdRng::seed_from_u64(base ^ (u64::from(replica) + 0x11).wrapping_mul(SPLITMIX));
        if rng.gen::<f64>() < model.block_rate {
            // This replica took a hit at rest: flip a seeded bit and run
            // the actual detection path.
            let bit = rng.gen::<u64>() as usize % (bytes.len() * 8);
            let mut garbled = bytes.clone();
            garbled[bit / 8] ^= 1 << (bit % 8);
            if checksum_bytes(&garbled) != stored {
                corrupt += 1;
                continue;
            }
            // A 64-bit checksum collision on a single-bit flip: practically
            // unreachable (excluded by the avalanche test in `hash`), but
            // when it happens the flip sails through undetected — count it
            // in every build profile so it surfaces in JobMetrics instead
            // of vanishing in release builds.
            collisions += 1;
        }
        return Ok(read(corrupt, collisions));
    }
    Err(MapRedError::CorruptBlock {
        path: path.to_string(),
        block,
        replicas: replication,
    })
}

/// The columnar counterpart of [`read_block_verified`]: reads one encoded
/// frame through its *embedded* per-column-chunk checksums, failing over
/// across replicas. Detection is [`ysmart_rel::ColumnBatch::decode_frame`]
/// itself — a corrupted replica has a seeded bit genuinely flipped, and
/// the frame's header/chunk checksums reject it, localizing the flip to
/// one column. Only a verifiably-clean replica's bytes reach the mapper.
///
/// # Errors
///
/// [`MapRedError::CorruptBlock`] when every replica fails verification.
pub fn read_frame_verified(
    frame: &[u8],
    path: &str,
    block: usize,
    replication: u32,
    model: &CorruptionModel,
    attempt: usize,
) -> Result<BlockRead, MapRedError> {
    const SPLITMIX: u64 = 0x9E37_79B9_7F4A_7C15;
    let read = |corrupt_replicas, collisions| BlockRead {
        corrupt_replicas,
        block_bytes: frame.len() as u64,
        collisions,
    };
    if model.block_rate <= 0.0 || frame.is_empty() {
        return Ok(read(0, 0));
    }
    let base = model.seed
        ^ checksum_bytes(path.as_bytes())
        ^ (block as u64 + 0xB10C).wrapping_mul(SPLITMIX)
        ^ crate::engine::attempt_mix(attempt);
    let replication = replication.max(1);
    let mut corrupt = 0u32;
    let mut collisions = 0u32;
    for replica in 0..replication {
        let mut rng =
            StdRng::seed_from_u64(base ^ (u64::from(replica) + 0x11).wrapping_mul(SPLITMIX));
        if rng.gen::<f64>() < model.block_rate {
            let bit = rng.gen::<u64>() as usize % (frame.len() * 8);
            let mut garbled = frame.to_vec();
            garbled[bit / 8] ^= 1 << (bit % 8);
            // Real detection path: the frame decoder's own checksum
            // verification, not a modelled coin.
            if ysmart_rel::ColumnBatch::decode_frame(&garbled).is_err() {
                corrupt += 1;
                continue;
            }
            // The flipped frame still decoded — an undetected corruption.
            // Counted like the block-checksum collision above.
            collisions += 1;
        }
        return Ok(read(corrupt, collisions));
    }
    Err(MapRedError::CorruptBlock {
        path: path.to_string(),
        block,
        replicas: replication,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut fs = Hdfs::new();
        fs.put("a", vec!["1|x".into(), "2|y".into()]);
        assert_eq!(fs.get("a").unwrap().lines.len(), 2);
        assert!(fs.exists("a"));
        fs.delete("a");
        assert!(matches!(fs.get("a"), Err(MapRedError::NoSuchFile(_))));
    }

    #[test]
    fn bytes_count_newlines() {
        let f = DataFile {
            lines: vec!["ab".into(), "c".into()],
            frames: Vec::new(),
        };
        assert_eq!(f.bytes(), 3 + 2);
    }

    #[test]
    fn total_bytes_sums_files() {
        let mut fs = Hdfs::new();
        fs.put("a", vec!["ab".into()]);
        fs.put("b", vec!["c".into()]);
        assert_eq!(fs.total_bytes(), 5);
    }

    fn lines() -> Vec<String> {
        (0..50).map(|i| format!("{i}|payload-{i}")).collect()
    }

    #[test]
    fn verified_read_clean_at_rate_zero() {
        let model = CorruptionModel::uniform(0.0, 1);
        let r = read_block_verified(&lines(), "data/t", 0, 3, &model, 0).unwrap();
        assert_eq!(r.corrupt_replicas, 0);
        let file = DataFile {
            lines: lines(),
            frames: Vec::new(),
        };
        assert_eq!(r.block_bytes, file.bytes());
    }

    #[test]
    fn verified_read_fails_over_to_surviving_replica() {
        // Certain corruption with certain failover impossible; sweep seeds
        // at a high rate until a read survives via a later replica.
        let mut saw_failover = false;
        for seed in 0..200u64 {
            let model = CorruptionModel::uniform(0.5, seed);
            if let Ok(r) = read_block_verified(&lines(), "data/t", 0, 3, &model, 0) {
                if r.corrupt_replicas > 0 {
                    saw_failover = true;
                    break;
                }
            }
        }
        assert!(
            saw_failover,
            "p=0.5 over 3 replicas × 200 seeds must fail over"
        );
    }

    #[test]
    fn all_replicas_corrupt_is_an_error() {
        let model = CorruptionModel::uniform(1.0, 7);
        let e = read_block_verified(&lines(), "data/t", 4, 3, &model, 0).unwrap_err();
        let MapRedError::CorruptBlock {
            path,
            block,
            replicas,
        } = e
        else {
            panic!("expected CorruptBlock, got {e:?}");
        };
        assert_eq!((path.as_str(), block, replicas), ("data/t", 4, 3));
    }

    #[test]
    fn retry_attempts_draw_fresh_corruption() {
        // Find a (seed) whose attempt-0 read loses every replica, then show
        // some later attempt of the same block recovers — the property the
        // chain-level retry of CorruptBlock depends on.
        let mut verified = false;
        for seed in 0..300u64 {
            let model = CorruptionModel::uniform(0.75, seed);
            let first = read_block_verified(&lines(), "data/t", 0, 2, &model, 0);
            if first.is_err() {
                let recovered = (1..20)
                    .any(|a| read_block_verified(&lines(), "data/t", 0, 2, &model, a).is_ok());
                assert!(recovered, "seed {seed}: no attempt in 20 recovered");
                verified = true;
                break;
            }
        }
        assert!(verified, "p=0.75² must kill both replicas for some seed");
    }

    #[test]
    fn verified_read_is_deterministic() {
        let model = CorruptionModel::uniform(0.4, 99);
        let a = read_block_verified(&lines(), "data/t", 1, 3, &model, 2);
        let b = read_block_verified(&lines(), "data/t", 1, 3, &model, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_block_never_corrupts() {
        let model = CorruptionModel::uniform(1.0, 1);
        let r = read_block_verified(&[], "data/t", 0, 3, &model, 0).unwrap();
        assert_eq!(r.corrupt_replicas, 0);
        assert_eq!(r.block_bytes, 0);
    }

    fn frame() -> Vec<u8> {
        use ysmart_rel::{row, ColumnBatch};
        let rows: Vec<ysmart_rel::Row> = (0..50).map(|i| row![i as i64, "payload"]).collect();
        ColumnBatch::from_rows(&rows).unwrap().encode_frame()
    }

    #[test]
    fn verified_frame_read_clean_at_rate_zero() {
        let model = CorruptionModel::uniform(0.0, 1);
        let r = read_frame_verified(&frame(), "data/t", 0, 3, &model, 0).unwrap();
        assert_eq!(r.corrupt_replicas, 0);
        assert_eq!(r.block_bytes, frame().len() as u64);
    }

    #[test]
    fn verified_frame_read_detects_flips_and_fails_over() {
        let mut saw_failover = false;
        for seed in 0..200u64 {
            let model = CorruptionModel::uniform(0.5, seed);
            if let Ok(r) = read_frame_verified(&frame(), "data/t", 0, 3, &model, 0) {
                if r.corrupt_replicas > 0 {
                    saw_failover = true;
                    assert_eq!(r.collisions, 0, "frame checksums must catch the flip");
                    break;
                }
            }
        }
        assert!(
            saw_failover,
            "p=0.5 over 3 replicas × 200 seeds must fail over"
        );
    }

    #[test]
    fn all_frame_replicas_corrupt_is_an_error() {
        let model = CorruptionModel::uniform(1.0, 7);
        let e = read_frame_verified(&frame(), "data/t", 4, 3, &model, 0).unwrap_err();
        assert!(matches!(e, MapRedError::CorruptBlock { block: 4, .. }));
    }

    #[test]
    fn per_node_accounting_survives_put_replace_delete() {
        let mut fs = Hdfs::with_nodes(4);
        fs.put("a", vec!["one".into(), "two".into()]);
        fs.put("b", vec!["xyz".into()]);
        assert!(fs.accounting_reconciled());
        // Replacement-put must release the old bytes before charging the
        // new — the classic drift bug this accounting exists to prevent.
        fs.put("a", vec!["much-longer-line".into()]);
        assert!(fs.accounting_reconciled());
        fs.delete("a");
        fs.delete("a"); // idempotent delete must not double-release
        assert!(fs.accounting_reconciled());
        fs.delete("b");
        assert_eq!(fs.total_bytes(), 0);
        assert_eq!(fs.node_used_bytes().iter().sum::<u64>(), 0);
    }

    #[test]
    fn set_nodes_rebuilds_counters_for_existing_files() {
        let mut fs = Hdfs::new();
        for i in 0..16 {
            fs.put(&format!("f{i}"), vec![format!("row-{i}")]);
        }
        fs.set_nodes(5);
        assert!(fs.accounting_reconciled());
        assert_eq!(fs.node_used_bytes().len(), 5);
        assert_eq!(fs.node_used_bytes().iter().sum::<u64>(), fs.total_bytes());
    }

    #[test]
    fn node_assignment_is_stable() {
        let fs = Hdfs::with_nodes(7);
        assert_eq!(fs.node_of("reuse/abc"), fs.node_of("reuse/abc"));
    }

    #[test]
    fn file_checksum_distinguishes_formats_and_content() {
        let text = DataFile {
            lines: vec!["a".into(), "b".into()],
            frames: Vec::new(),
        };
        let text2 = DataFile {
            lines: vec!["a".into(), "c".into()],
            frames: Vec::new(),
        };
        assert_ne!(file_checksum(&text), file_checksum(&text2));
        let col = DataFile {
            lines: Vec::new(),
            frames: vec![frame()],
        };
        assert_ne!(file_checksum(&text), file_checksum(&col));
        assert_eq!(file_checksum(&col), file_checksum(&col.clone()));
    }

    #[test]
    fn columnar_file_bytes_are_frame_bytes() {
        let mut fs = Hdfs::new();
        let f = frame();
        let len = f.len() as u64;
        fs.put_frames("a", vec![f.clone(), f]);
        let file = fs.get("a").unwrap();
        assert!(file.is_columnar());
        assert_eq!(file.bytes(), 2 * len);
        assert_eq!(fs.total_bytes(), 2 * len);
    }
}
