//! Job chains: sequential execution of a translated query's jobs.
//!
//! A translated query is a chain of jobs with data dependencies through
//! HDFS (§II-A: "a complex computation process can be represented by a
//! chain of jobs"). The chain runner adds the costs the paper attributes to
//! job count: per-job scheduler latency, and — under the production
//! [`crate::config::ContentionModel`] — randomised scheduling gaps before
//! each launch, the mechanism that amplified Hive's disadvantage on the
//! Facebook cluster (§VII-F: "Because Hive executes more jobs than YSmart,
//! it causes higher scheduling cost").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{run_job_attempt, Cluster};
use crate::error::MapRedError;
use crate::hash::hash_row;
use crate::hdfs::DataFile;
use crate::job::JobSpec;
use crate::metrics::{ChainMetrics, JobMetrics};
use crate::trace::Trace;

/// A sequence of jobs executed in order; each job may read the outputs of
/// earlier ones from HDFS.
#[derive(Debug, Default)]
pub struct JobChain {
    /// The jobs, in execution order.
    pub jobs: Vec<JobSpec>,
}

impl JobChain {
    /// An empty chain.
    #[must_use]
    pub fn new() -> Self {
        JobChain::default()
    }

    /// Appends a job.
    pub fn push(&mut self, job: JobSpec) -> &mut Self {
        self.jobs.push(job);
        self
    }

    /// Number of jobs — the quantity YSmart minimises.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Result of running a chain.
#[derive(Debug, Clone)]
pub struct ChainOutcome {
    /// Per-job metrics in execution order.
    pub metrics: ChainMetrics,
    /// HDFS path holding the final job's output.
    pub final_output: String,
}

/// A failed chain: the error plus the *partial* metrics of everything that
/// ran before the failure — completed jobs, retries, backoff waits and
/// burned failed-attempt time. A chain that dies three jobs in still
/// reports what those jobs cost.
#[derive(Debug, Clone)]
pub struct ChainFailure {
    /// What stopped the chain.
    pub error: MapRedError,
    /// Metrics accumulated up to the failure.
    pub metrics: ChainMetrics,
    /// The partial execution trace up to the failure, when tracing was on —
    /// a failed or cancelled chain still produces an inspectable timeline
    /// (committed jobs, gaps, backoffs, the failed attempts themselves).
    /// Boxed to keep the error variant small on the happy path.
    pub trace: Option<Box<Trace>>,
}

impl From<ChainFailure> for MapRedError {
    fn from(f: ChainFailure) -> Self {
        f.error
    }
}

impl std::fmt::Display for ChainFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chain failed after {} completed jobs: {}",
            self.metrics.jobs.len(),
            self.error
        )
    }
}

impl std::error::Error for ChainFailure {}

/// Whether a failed job attempt is worth retrying: injected faults
/// ([`MapRedError::TooManyFailures`], [`MapRedError::ClusterLost`]) and
/// at-rest corruption ([`MapRedError::CorruptBlock`] — a re-replicated
/// block re-samples the flip) draw fresh randomness on the next attempt,
/// and a [`MapRedError::DiskFull`] cluster may have been cleaned up.
/// Missing inputs, user errors, time limits and over-budget bad records
/// are permanent.
#[must_use]
pub fn retryable(e: &MapRedError) -> bool {
    matches!(
        e,
        MapRedError::TooManyFailures { .. }
            | MapRedError::ClusterLost { .. }
            | MapRedError::DiskFull { .. }
            | MapRedError::CorruptBlock { .. }
    )
}

/// Runs all jobs in order, charging inter-job scheduling costs.
///
/// When the cluster has a [`crate::config::RetryPolicy`], a job attempt
/// that dies with a retryable error is retried after an exponential
/// backoff, with the failed attempt's burned time and the backoff charged
/// to the chain. Recovery is *checkpointed*: every finished job's output
/// already sits in HDFS, so only the failed job re-runs — the chain resumes
/// from where it died instead of restarting.
///
/// # Errors
///
/// [`MapRedError::EmptyChain`] for a chain with no jobs; otherwise stops at
/// the first failing job (disk full, time limit, missing input, injected
/// faults) once retries — if any — are exhausted. The chain's cumulative
/// time, including failed attempts and backoff, is also checked against the
/// cluster time limit. Failures come wrapped in a [`ChainFailure`] carrying
/// the partial [`ChainMetrics`] of everything that ran first.
pub fn run_chain(cluster: &mut Cluster, chain: &JobChain) -> Result<ChainOutcome, ChainFailure> {
    let mut session = ChainSession::new(chain_seed(chain));
    loop {
        match session.step(cluster, chain) {
            ChainStep::Advanced | ChainStep::Backoff { .. } => {}
            ChainStep::Finished => return Ok(session.into_outcome()),
            ChainStep::Failed => return Err(session.into_failure(cluster)),
        }
    }
}

/// The seed [`run_chain`] derives for a chain: a stable hash of the first
/// job's name, so repeated runs of the same translation reproduce exactly.
/// Schedulers submitting many instances of one query should pick distinct
/// per-request seeds instead.
#[must_use]
pub fn chain_seed(chain: &JobChain) -> u64 {
    chain
        .jobs
        .first()
        .map_or(0, |j| hash_row(&ysmart_rel::row![j.name.as_str()]))
}

/// A journaled job completion handed back to a [`ChainSession`] on crash
/// recovery: when the session reaches job `job_index` on attempt `attempt`,
/// it *fast-forwards* — restores `file` to the job's output path and applies
/// the recorded bit-exact metrics instead of re-executing. Failed attempts
/// before `attempt` were never journaled (only commits are checkpoints), so
/// they re-execute live with their original seeded randomness, reproducing
/// identical burned time and backoffs — the measured wasted work of a crash.
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// Index of the job within its chain.
    pub job_index: usize,
    /// The attempt that committed (0 = first try).
    pub attempt: usize,
    /// HDFS path the job wrote (must match the chain's job output).
    pub output_path: String,
    /// The materialized output, restored verbatim.
    pub file: DataFile,
    /// The committed attempt's metrics, applied bit-identically.
    pub metrics: JobMetrics,
    /// `true` when the fast-forward comes from the cross-query reuse cache
    /// ([`crate::reuse`]) rather than the crash-recovery journal — counted
    /// and traced separately (`reuse` lane vs `replay` lane).
    pub from_cache: bool,
}

/// What one [`ChainSession::step`] did.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainStep {
    /// One job attempt succeeded; the chain has more jobs to run.
    Advanced,
    /// The final job committed — take the result with
    /// [`ChainSession::into_outcome`].
    Finished,
    /// A retryable failure: the burned attempt and the (jittered) backoff
    /// are already charged; the next `step` re-runs the failed job.
    Backoff {
        /// What the attempt died with.
        error: MapRedError,
        /// The backoff charged, simulated seconds.
        backoff_s: f64,
    },
    /// Terminal failure — take it with [`ChainSession::into_failure`].
    Failed,
}

/// Re-entrant, stepwise execution state of one chain.
///
/// [`run_chain`] drives a session to completion on a dedicated cluster; the
/// multi-tenant [`crate::scheduler`] instead keeps many sessions open over
/// *one* shared cluster, stepping whichever chain's turn it is in simulated
/// time. Everything that used to be implicit cluster-global state is
/// per-session here: the recovery checkpoint, the accumulated
/// [`ChainMetrics`], the scheduling-gap RNG, and (optionally) a private
/// trace lane that is swapped into the cluster only for the duration of a
/// step — so interleaved chains never write into each other's timelines.
///
/// The session is `Clone`: a clone is a *snapshot* (checkpoint, metrics,
/// gap-RNG state, trace lane), and stepping the clone on a cloned cluster
/// is bit-identical to stepping the original — suspend-at-any-step resume.
#[derive(Debug, Clone)]
pub struct ChainSession {
    seed: u64,
    /// Next job to run — the chain's recovery checkpoint.
    i: usize,
    /// Attempt index of job `i`.
    attempt: usize,
    /// Chain-local simulated time charged so far.
    elapsed: f64,
    metrics: ChainMetrics,
    final_output: String,
    gap_rng: Option<StdRng>,
    gap_rng_ready: bool,
    /// The session's own trace lane (`None` = use the cluster's, if any).
    trace: Option<Trace>,
    /// When set, a retryable failure fails the chain instead of backing
    /// off — the scheduler's per-tenant retry-budget gate.
    deny_retries: bool,
    error: Option<MapRedError>,
    /// Journaled completions to fast-forward through on crash recovery.
    replay: Vec<ReplayedJob>,
    /// Jobs fast-forwarded from the journal instead of executed.
    replayed: usize,
    /// Jobs fast-forwarded from the cross-query reuse cache.
    reused: usize,
}

impl ChainSession {
    /// A fresh session. `seed` drives the scheduling-gap RNG and backoff
    /// jitter; co-running chains should get distinct seeds so their gaps
    /// and retries decorrelate.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ChainSession {
            seed,
            i: 0,
            attempt: 0,
            elapsed: 0.0,
            metrics: ChainMetrics::default(),
            final_output: String::new(),
            gap_rng: None,
            gap_rng_ready: false,
            trace: None,
            deny_retries: false,
            error: None,
            replay: Vec::new(),
            replayed: 0,
            reused: 0,
        }
    }

    /// A session recording its own trace lane, independent of whether the
    /// cluster traces. The lane is in chain-local time (admission = 0);
    /// shift it with [`Trace::shift_s`] to align co-running chains.
    #[must_use]
    pub fn with_tracing(seed: u64) -> Self {
        let mut s = ChainSession::new(seed);
        s.trace = Some(Trace::new());
        s
    }

    /// Chain-local simulated time charged so far, including failed
    /// attempts, gaps and backoff waits.
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed
    }

    /// Metrics accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &ChainMetrics {
        &self.metrics
    }

    /// Jobs completed so far (the recovery checkpoint).
    #[must_use]
    pub fn jobs_done(&self) -> usize {
        self.i
    }

    /// Gate for the scheduler's per-tenant retry budget: with `deny` set, a
    /// retryable failure becomes terminal instead of backing off.
    pub fn deny_retries(&mut self, deny: bool) {
        self.deny_retries = deny;
    }

    /// Hands the session journaled completions to fast-forward through —
    /// crash recovery. Steps whose `(job_index, attempt)` match a replayed
    /// job skip execution and apply the recorded output + metrics; all other
    /// steps (failed attempts included) re-execute live. Scheduling-gap
    /// draws happen on every step either way, so the gap RNG stays on the
    /// original stream and post-recovery randomness is bit-identical.
    pub fn set_replay(&mut self, jobs: Vec<ReplayedJob>) {
        self.replay = jobs;
    }

    /// Jobs fast-forwarded from the journal instead of executed — the saved
    /// work of crash recovery (its complement is the wasted work).
    #[must_use]
    pub fn replayed_jobs(&self) -> usize {
        self.replayed
    }

    /// Jobs fast-forwarded from the cross-query reuse cache instead of
    /// executed — cache hits applied through the replay machinery.
    #[must_use]
    pub fn reused_jobs(&self) -> usize {
        self.reused
    }

    /// Marks the session failed with `error` without running anything —
    /// deadline cancellation and budget exhaustion end a chain from the
    /// outside. Take the partial state with [`ChainSession::into_failure`].
    pub fn abandon(&mut self, error: MapRedError) {
        self.error = Some(error);
    }

    /// Takes the session's private trace lane, if it records one.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Consumes a finished session ([`ChainStep::Finished`]).
    #[must_use]
    pub fn into_outcome(self) -> ChainOutcome {
        ChainOutcome {
            metrics: self.metrics,
            final_output: self.final_output,
        }
    }

    /// Consumes a failed session ([`ChainStep::Failed`] or
    /// [`ChainSession::abandon`]). The failure carries the partial trace:
    /// the session's own lane when it records one, otherwise a snapshot of
    /// the cluster's trace (which keeps accumulating for its owner).
    #[must_use]
    pub fn into_failure(mut self, cluster: &mut Cluster) -> ChainFailure {
        let trace = self
            .trace
            .take()
            .or_else(|| cluster.trace_mut().cloned())
            .map(Box::new);
        ChainFailure {
            error: self.error.unwrap_or(MapRedError::EmptyChain),
            metrics: self.metrics,
            trace,
        }
    }

    /// Runs one job attempt: the scheduling gap, the attempt itself, and —
    /// on a retryable failure — the backoff charge. Everything is charged
    /// to this session's clock and metrics; with a private trace lane, the
    /// cluster's own trace is untouched.
    pub fn step(&mut self, cluster: &mut Cluster, chain: &JobChain) -> ChainStep {
        if self.error.is_some() {
            return ChainStep::Failed;
        }
        if chain.is_empty() {
            self.error = Some(MapRedError::EmptyChain);
            return ChainStep::Failed;
        }
        // A session-owned lane shadows the cluster's trace for the step; a
        // session without one records into the cluster's trace, if any.
        let shadow = self.trace.is_some();
        if shadow {
            cluster.swap_trace(&mut self.trace);
        }
        let result = self.step_inner(cluster, chain);
        if shadow {
            cluster.swap_trace(&mut self.trace);
        }
        result
    }

    fn step_inner(&mut self, cluster: &mut Cluster, chain: &JobChain) -> ChainStep {
        let job = &chain.jobs[self.i];
        let mut delay = if self.i == 0 {
            0.0
        } else {
            cluster.config.inter_job_delay_s
        };
        if !self.gap_rng_ready {
            // Seeded once, from the contention model in force at the first
            // step — [`run_chain`] reproduces its historical stream.
            self.gap_rng = cluster
                .config
                .contention
                .map(|c| StdRng::seed_from_u64(c.seed ^ self.seed));
            self.gap_rng_ready = true;
        }
        if let (Some(c), Some(rng)) = (cluster.config.contention, self.gap_rng.as_mut()) {
            delay += rng.gen::<f64>() * c.max_scheduling_gap_s;
        }
        // Tracing: scheduling gaps live on the chain-scheduler lane, and
        // the cursor tells the engine where on the simulated timeline this
        // attempt's spans start.
        if let Some(tr) = cluster.trace_mut() {
            if delay > 0.0 {
                tr.chain_span(
                    "gap",
                    format!("scheduling gap before {}", job.name),
                    self.elapsed,
                    delay,
                );
            }
            tr.set_cursor(self.elapsed + delay);
        }
        // Crash recovery fast path: a journaled commit for exactly this
        // (job, attempt) replaces execution — restore the materialized
        // output and the recorded metrics. The path check guards against a
        // journal from a different workload; on mismatch the job simply
        // runs live (correct, just not saved work).
        let replayed = self
            .replay
            .iter()
            .position(|r| {
                r.job_index == self.i && r.attempt == self.attempt && r.output_path == job.output
            })
            .map(|at| self.replay.remove(at));
        let attempt_result = match replayed {
            Some(rj) => {
                cluster.hdfs.put_data(&job.output, rj.file);
                // Cache hits and journal replays share the fast-forward
                // mechanics but are accounted (and traced) separately:
                // reuse is saved cross-query work, replay is recovery.
                let (cat, what) = if rj.from_cache {
                    self.reused += 1;
                    ("reuse", "reused from cache")
                } else {
                    self.replayed += 1;
                    ("replay", "replayed from journal")
                };
                if let Some(tr) = cluster.trace_mut() {
                    tr.chain_span(
                        cat,
                        format!("{} {what}", job.name),
                        self.elapsed + delay,
                        rj.metrics.total_s() - rj.metrics.startup_delay_s,
                    );
                }
                Ok(rj.metrics)
            }
            None => run_job_attempt(cluster, job, self.attempt),
        };
        match attempt_result {
            Ok(mut m) => {
                m.startup_delay_s = delay;
                self.elapsed += m.total_s();
                self.final_output = job.output.clone();
                self.metrics.jobs.push(m);
                self.i += 1;
                self.attempt = 0;
                if let Some(failed) = self.check_time_limit(cluster) {
                    return failed;
                }
                if self.i == chain.jobs.len() {
                    ChainStep::Finished
                } else {
                    ChainStep::Advanced
                }
            }
            Err(fail) => {
                // The attempt's buffered spans were dropped by the engine;
                // one summary span on the scheduler lane records the
                // burned time instead.
                if let Some(tr) = cluster.trace_mut() {
                    tr.chain_span(
                        "job_failed",
                        format!(
                            "{} attempt {} failed: {}",
                            job.name,
                            self.attempt + 1,
                            fail.error
                        ),
                        self.elapsed + delay,
                        fail.wasted_s,
                    );
                }
                self.metrics.failed_attempt_s += delay + fail.wasted_s;
                self.elapsed += delay + fail.wasted_s;
                let can_retry = cluster.config.retry.filter(|p| {
                    !self.deny_retries && retryable(&fail.error) && self.attempt < p.max_retries
                });
                let Some(policy) = can_retry else {
                    self.error = Some(fail.error);
                    return ChainStep::Failed;
                };
                // Jitter keys on (chain seed, job index, retry index): the
                // same chain reproduces exactly, co-failing chains spread.
                let backoff = policy.backoff_jittered_s(
                    self.attempt,
                    self.seed ^ (self.i as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                );
                if let Some(tr) = cluster.trace_mut() {
                    tr.chain_span(
                        "backoff",
                        format!(
                            "retry backoff before {} attempt {}",
                            job.name,
                            self.attempt + 2
                        ),
                        self.elapsed,
                        backoff,
                    );
                }
                self.metrics.retries += 1;
                self.metrics.backoff_delay_s += backoff;
                self.elapsed += backoff;
                self.attempt += 1;
                // Outputs of jobs[..i] are already in HDFS; only job `i`
                // re-runs.
                if let Some(failed) = self.check_time_limit(cluster) {
                    return failed;
                }
                ChainStep::Backoff {
                    error: fail.error,
                    backoff_s: backoff,
                }
            }
        }
    }

    fn check_time_limit(&mut self, cluster: &Cluster) -> Option<ChainStep> {
        let limit = cluster.config.time_limit_s?;
        if self.elapsed > limit {
            self.error = Some(MapRedError::TimeLimitExceeded { limit_s: limit });
            return Some(ChainStep::Failed);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, ContentionModel};
    use crate::job::{MapOutput, Mapper, ReduceOutput, Reducer};
    use ysmart_rel::{row, Row};

    struct IdMapper;
    impl Mapper for IdMapper {
        fn map(&mut self, line: &str, out: &mut MapOutput) {
            let n: i64 = line
                .parse()
                .unwrap_or_else(|_| panic!("IdMapper: non-numeric input line {line:?}"));
            out.emit(row![n % 3], row![n]);
        }
    }

    struct CountReducer;
    impl Reducer for CountReducer {
        fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
            let k = key
                .get(0)
                .unwrap_or_else(|_| panic!("CountReducer: empty key row {key:?}"));
            out.emit_line(format!("{}|{}", k, values.len()));
        }
    }

    struct PassMapper;
    impl Mapper for PassMapper {
        fn map(&mut self, line: &str, out: &mut MapOutput) {
            let (k, v) = line
                .split_once('|')
                .unwrap_or_else(|| panic!("PassMapper: line without '|' separator: {line:?}"));
            let k = k
                .parse::<i64>()
                .unwrap_or_else(|_| panic!("PassMapper: non-numeric key in line {line:?}"));
            let v = v
                .parse::<i64>()
                .unwrap_or_else(|_| panic!("PassMapper: non-numeric value in line {line:?}"));
            out.emit(row![0i64], row![k, v]);
        }
    }

    struct SumCountsReducer;
    impl Reducer for SumCountsReducer {
        fn reduce(&mut self, _key: &Row, values: &[Row], out: &mut ReduceOutput) {
            let s: i64 = values
                .iter()
                .map(|v| {
                    v.get(1)
                        .ok()
                        .and_then(ysmart_rel::Value::as_int)
                        .unwrap_or_else(|| {
                            panic!("SumCountsReducer: value row without integer count: {v:?}")
                        })
                })
                .sum();
            out.emit_line(format!("{s}"));
        }
    }

    fn two_job_chain() -> JobChain {
        let mut chain = JobChain::new();
        chain.push(
            JobSpec::builder("count")
                .input("data/nums", || Box::new(IdMapper))
                .reducer(|| Box::new(CountReducer))
                .output("tmp/counts")
                .reduce_tasks(2)
                .build(),
        );
        chain.push(
            JobSpec::builder("total")
                .input("tmp/counts", || Box::new(PassMapper))
                .reducer(|| Box::new(SumCountsReducer))
                .output("out/total")
                .reduce_tasks(1)
                .build(),
        );
        chain
    }

    #[test]
    fn chain_pipes_through_hdfs() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.load_table("nums", (0..100).map(|i| i.to_string()).collect());
        let outcome = run_chain(&mut c, &two_job_chain()).unwrap();
        assert_eq!(outcome.final_output, "out/total");
        assert_eq!(c.hdfs.get("out/total").unwrap().lines, vec!["100"]);
        assert_eq!(outcome.metrics.jobs.len(), 2);
        // Second job pays the scheduler delay.
        assert_eq!(outcome.metrics.jobs[0].startup_delay_s, 0.0);
        assert!(outcome.metrics.jobs[1].startup_delay_s > 0.0);
    }

    #[test]
    fn empty_chain_is_an_error() {
        let mut c = Cluster::new(ClusterConfig::default());
        let e = run_chain(&mut c, &JobChain::new()).unwrap_err();
        assert!(matches!(e.error, MapRedError::EmptyChain));
        assert!(e.metrics.jobs.is_empty());
    }

    #[test]
    fn chain_cumulative_time_limit_enforced() {
        // Measure the unlimited chain, then cap it between the largest
        // single job and the chain total: every job fits individually, only
        // the cumulative check can fire.
        let load = |c: &mut Cluster| {
            c.load_table("nums", (0..100).map(|i| i.to_string()).collect());
        };
        let mut free = Cluster::new(ClusterConfig::default());
        load(&mut free);
        let metrics = run_chain(&mut free, &two_job_chain()).unwrap().metrics;
        let total = metrics.total_s();
        let biggest_job = metrics
            .jobs
            .iter()
            .map(|j| j.map_time_s + j.reduce_time_s)
            .fold(0.0, f64::max);
        let limit = total * 0.99;
        assert!(biggest_job < limit && limit < total, "cap must sit between");

        let mut capped = Cluster::new(ClusterConfig {
            time_limit_s: Some(limit),
            ..ClusterConfig::default()
        });
        load(&mut capped);
        let e = run_chain(&mut capped, &two_job_chain()).unwrap_err();
        assert!(matches!(e.error, MapRedError::TimeLimitExceeded { .. }));
        // The partial metrics report what ran before the cap fired.
        assert!(!e.metrics.jobs.is_empty());
    }

    #[test]
    fn contention_adds_gaps_deterministically() {
        let run = |seed| {
            let mut c = Cluster::new(ClusterConfig {
                contention: Some(ContentionModel {
                    slot_share: 0.5,
                    max_scheduling_gap_s: 300.0,
                    task_slowdown: 1.5,
                    seed,
                }),
                ..ClusterConfig::default()
            });
            c.load_table("nums", (0..100).map(|i| i.to_string()).collect());
            run_chain(&mut c, &two_job_chain())
                .unwrap()
                .metrics
                .total_s()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert!((a - b).abs() < 1e-12, "same seed, same gaps");
        assert!((a - c).abs() > 1e-9, "different seed, different gaps");
    }

    #[test]
    fn more_jobs_cost_more_under_contention() {
        // The §VII-F mechanism: with big scheduling gaps, a 2-job chain is
        // slower than an equivalent 1-job chain even if work is equal.
        let base = ClusterConfig {
            contention: Some(ContentionModel {
                slot_share: 1.0,
                max_scheduling_gap_s: 300.0,
                task_slowdown: 1.0,
                seed: 3,
            }),
            ..ClusterConfig::default()
        };
        let mut c1 = Cluster::new(base.clone());
        c1.load_table("nums", (0..100).map(|i| i.to_string()).collect());
        let one = {
            let mut chain = JobChain::new();
            chain.push(
                JobSpec::builder("count")
                    .input("data/nums", || Box::new(IdMapper))
                    .reducer(|| Box::new(CountReducer))
                    .output("out/one")
                    .reduce_tasks(2)
                    .build(),
            );
            run_chain(&mut c1, &chain).unwrap().metrics.total_s()
        };
        let mut c2 = Cluster::new(base);
        c2.load_table("nums", (0..100).map(|i| i.to_string()).collect());
        let two = run_chain(&mut c2, &two_job_chain())
            .unwrap()
            .metrics
            .total_s();
        assert!(two > one);
    }
}
