//! Job chains: sequential execution of a translated query's jobs.
//!
//! A translated query is a chain of jobs with data dependencies through
//! HDFS (§II-A: "a complex computation process can be represented by a
//! chain of jobs"). The chain runner adds the costs the paper attributes to
//! job count: per-job scheduler latency, and — under the production
//! [`crate::config::ContentionModel`] — randomised scheduling gaps before
//! each launch, the mechanism that amplified Hive's disadvantage on the
//! Facebook cluster (§VII-F: "Because Hive executes more jobs than YSmart,
//! it causes higher scheduling cost").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{run_job_attempt, Cluster};
use crate::error::MapRedError;
use crate::hash::hash_row;
use crate::job::JobSpec;
use crate::metrics::ChainMetrics;

/// A sequence of jobs executed in order; each job may read the outputs of
/// earlier ones from HDFS.
#[derive(Debug, Default)]
pub struct JobChain {
    /// The jobs, in execution order.
    pub jobs: Vec<JobSpec>,
}

impl JobChain {
    /// An empty chain.
    #[must_use]
    pub fn new() -> Self {
        JobChain::default()
    }

    /// Appends a job.
    pub fn push(&mut self, job: JobSpec) -> &mut Self {
        self.jobs.push(job);
        self
    }

    /// Number of jobs — the quantity YSmart minimises.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Result of running a chain.
#[derive(Debug, Clone)]
pub struct ChainOutcome {
    /// Per-job metrics in execution order.
    pub metrics: ChainMetrics,
    /// HDFS path holding the final job's output.
    pub final_output: String,
}

/// A failed chain: the error plus the *partial* metrics of everything that
/// ran before the failure — completed jobs, retries, backoff waits and
/// burned failed-attempt time. A chain that dies three jobs in still
/// reports what those jobs cost.
#[derive(Debug, Clone)]
pub struct ChainFailure {
    /// What stopped the chain.
    pub error: MapRedError,
    /// Metrics accumulated up to the failure.
    pub metrics: ChainMetrics,
}

impl From<ChainFailure> for MapRedError {
    fn from(f: ChainFailure) -> Self {
        f.error
    }
}

impl std::fmt::Display for ChainFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chain failed after {} completed jobs: {}",
            self.metrics.jobs.len(),
            self.error
        )
    }
}

impl std::error::Error for ChainFailure {}

/// Whether a failed job attempt is worth retrying: injected faults
/// ([`MapRedError::TooManyFailures`], [`MapRedError::ClusterLost`]) and
/// at-rest corruption ([`MapRedError::CorruptBlock`] — a re-replicated
/// block re-samples the flip) draw fresh randomness on the next attempt,
/// and a [`MapRedError::DiskFull`] cluster may have been cleaned up.
/// Missing inputs, user errors, time limits and over-budget bad records
/// are permanent.
#[must_use]
pub fn retryable(e: &MapRedError) -> bool {
    matches!(
        e,
        MapRedError::TooManyFailures { .. }
            | MapRedError::ClusterLost { .. }
            | MapRedError::DiskFull { .. }
            | MapRedError::CorruptBlock { .. }
    )
}

/// Runs all jobs in order, charging inter-job scheduling costs.
///
/// When the cluster has a [`crate::config::RetryPolicy`], a job attempt
/// that dies with a retryable error is retried after an exponential
/// backoff, with the failed attempt's burned time and the backoff charged
/// to the chain. Recovery is *checkpointed*: every finished job's output
/// already sits in HDFS, so only the failed job re-runs — the chain resumes
/// from where it died instead of restarting.
///
/// # Errors
///
/// [`MapRedError::EmptyChain`] for a chain with no jobs; otherwise stops at
/// the first failing job (disk full, time limit, missing input, injected
/// faults) once retries — if any — are exhausted. The chain's cumulative
/// time, including failed attempts and backoff, is also checked against the
/// cluster time limit. Failures come wrapped in a [`ChainFailure`] carrying
/// the partial [`ChainMetrics`] of everything that ran first.
pub fn run_chain(cluster: &mut Cluster, chain: &JobChain) -> Result<ChainOutcome, ChainFailure> {
    if chain.is_empty() {
        return Err(ChainFailure {
            error: MapRedError::EmptyChain,
            metrics: ChainMetrics::default(),
        });
    }
    let mut metrics = ChainMetrics::default();
    let mut gap_rng = cluster.config.contention.map(|c| {
        StdRng::seed_from_u64(c.seed ^ hash_row(&ysmart_rel::row![chain.jobs[0].name.as_str()]))
    });
    let mut elapsed = 0.0;
    let mut final_output = String::new();
    let mut i = 0; // next job to run — the chain's recovery checkpoint
    let mut attempt = 0; // attempt index of job `i`
    while i < chain.jobs.len() {
        let job = &chain.jobs[i];
        let mut delay = if i == 0 {
            0.0
        } else {
            cluster.config.inter_job_delay_s
        };
        if let (Some(c), Some(rng)) = (cluster.config.contention, gap_rng.as_mut()) {
            delay += rng.gen::<f64>() * c.max_scheduling_gap_s;
        }
        // Tracing: scheduling gaps live on the chain-scheduler lane, and
        // the cursor tells the engine where on the simulated timeline this
        // attempt's spans start.
        if let Some(tr) = cluster.trace_mut() {
            if delay > 0.0 {
                tr.chain_span(
                    "gap",
                    format!("scheduling gap before {}", job.name),
                    elapsed,
                    delay,
                );
            }
            tr.set_cursor(elapsed + delay);
        }
        match run_job_attempt(cluster, job, attempt) {
            Ok(mut m) => {
                m.startup_delay_s = delay;
                elapsed += m.total_s();
                final_output = job.output.clone();
                metrics.jobs.push(m);
                i += 1;
                attempt = 0;
            }
            Err(fail) => {
                // The attempt's buffered spans were dropped by the engine;
                // one summary span on the scheduler lane records the
                // burned time instead.
                if let Some(tr) = cluster.trace_mut() {
                    tr.chain_span(
                        "job_failed",
                        format!(
                            "{} attempt {} failed: {}",
                            job.name,
                            attempt + 1,
                            fail.error
                        ),
                        elapsed + delay,
                        fail.wasted_s,
                    );
                }
                metrics.failed_attempt_s += delay + fail.wasted_s;
                elapsed += delay + fail.wasted_s;
                let can_retry = cluster
                    .config
                    .retry
                    .filter(|p| retryable(&fail.error) && attempt < p.max_retries);
                let Some(policy) = can_retry else {
                    return Err(ChainFailure {
                        error: fail.error,
                        metrics,
                    });
                };
                let backoff = policy.backoff_s(attempt);
                if let Some(tr) = cluster.trace_mut() {
                    tr.chain_span(
                        "backoff",
                        format!("retry backoff before {} attempt {}", job.name, attempt + 2),
                        elapsed,
                        backoff,
                    );
                }
                metrics.retries += 1;
                metrics.backoff_delay_s += backoff;
                elapsed += backoff;
                attempt += 1;
                // Outputs of jobs[..i] are already in HDFS; only job `i`
                // re-runs.
            }
        }
        if let Some(limit) = cluster.config.time_limit_s {
            if elapsed > limit {
                return Err(ChainFailure {
                    error: MapRedError::TimeLimitExceeded { limit_s: limit },
                    metrics,
                });
            }
        }
    }
    Ok(ChainOutcome {
        metrics,
        final_output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, ContentionModel};
    use crate::job::{MapOutput, Mapper, ReduceOutput, Reducer};
    use ysmart_rel::{row, Row};

    struct IdMapper;
    impl Mapper for IdMapper {
        fn map(&mut self, line: &str, out: &mut MapOutput) {
            let n: i64 = line.parse().unwrap();
            out.emit(row![n % 3], row![n]);
        }
    }

    struct CountReducer;
    impl Reducer for CountReducer {
        fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
            out.emit_line(format!("{}|{}", key.get(0).unwrap(), values.len()));
        }
    }

    struct PassMapper;
    impl Mapper for PassMapper {
        fn map(&mut self, line: &str, out: &mut MapOutput) {
            let (k, v) = line.split_once('|').unwrap();
            out.emit(
                row![0i64],
                row![k.parse::<i64>().unwrap(), v.parse::<i64>().unwrap()],
            );
        }
    }

    struct SumCountsReducer;
    impl Reducer for SumCountsReducer {
        fn reduce(&mut self, _key: &Row, values: &[Row], out: &mut ReduceOutput) {
            let s: i64 = values
                .iter()
                .map(|v| v.get(1).unwrap().as_int().unwrap())
                .sum();
            out.emit_line(format!("{s}"));
        }
    }

    fn two_job_chain() -> JobChain {
        let mut chain = JobChain::new();
        chain.push(
            JobSpec::builder("count")
                .input("data/nums", || Box::new(IdMapper))
                .reducer(|| Box::new(CountReducer))
                .output("tmp/counts")
                .reduce_tasks(2)
                .build(),
        );
        chain.push(
            JobSpec::builder("total")
                .input("tmp/counts", || Box::new(PassMapper))
                .reducer(|| Box::new(SumCountsReducer))
                .output("out/total")
                .reduce_tasks(1)
                .build(),
        );
        chain
    }

    #[test]
    fn chain_pipes_through_hdfs() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.load_table("nums", (0..100).map(|i| i.to_string()).collect());
        let outcome = run_chain(&mut c, &two_job_chain()).unwrap();
        assert_eq!(outcome.final_output, "out/total");
        assert_eq!(c.hdfs.get("out/total").unwrap().lines, vec!["100"]);
        assert_eq!(outcome.metrics.jobs.len(), 2);
        // Second job pays the scheduler delay.
        assert_eq!(outcome.metrics.jobs[0].startup_delay_s, 0.0);
        assert!(outcome.metrics.jobs[1].startup_delay_s > 0.0);
    }

    #[test]
    fn empty_chain_is_an_error() {
        let mut c = Cluster::new(ClusterConfig::default());
        let e = run_chain(&mut c, &JobChain::new()).unwrap_err();
        assert!(matches!(e.error, MapRedError::EmptyChain));
        assert!(e.metrics.jobs.is_empty());
    }

    #[test]
    fn chain_cumulative_time_limit_enforced() {
        // Measure the unlimited chain, then cap it between the largest
        // single job and the chain total: every job fits individually, only
        // the cumulative check can fire.
        let load = |c: &mut Cluster| {
            c.load_table("nums", (0..100).map(|i| i.to_string()).collect());
        };
        let mut free = Cluster::new(ClusterConfig::default());
        load(&mut free);
        let metrics = run_chain(&mut free, &two_job_chain()).unwrap().metrics;
        let total = metrics.total_s();
        let biggest_job = metrics
            .jobs
            .iter()
            .map(|j| j.map_time_s + j.reduce_time_s)
            .fold(0.0, f64::max);
        let limit = total * 0.99;
        assert!(biggest_job < limit && limit < total, "cap must sit between");

        let mut capped = Cluster::new(ClusterConfig {
            time_limit_s: Some(limit),
            ..ClusterConfig::default()
        });
        load(&mut capped);
        let e = run_chain(&mut capped, &two_job_chain()).unwrap_err();
        assert!(matches!(e.error, MapRedError::TimeLimitExceeded { .. }));
        // The partial metrics report what ran before the cap fired.
        assert!(!e.metrics.jobs.is_empty());
    }

    #[test]
    fn contention_adds_gaps_deterministically() {
        let run = |seed| {
            let mut c = Cluster::new(ClusterConfig {
                contention: Some(ContentionModel {
                    slot_share: 0.5,
                    max_scheduling_gap_s: 300.0,
                    task_slowdown: 1.5,
                    seed,
                }),
                ..ClusterConfig::default()
            });
            c.load_table("nums", (0..100).map(|i| i.to_string()).collect());
            run_chain(&mut c, &two_job_chain())
                .unwrap()
                .metrics
                .total_s()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert!((a - b).abs() < 1e-12, "same seed, same gaps");
        assert!((a - c).abs() > 1e-9, "different seed, different gaps");
    }

    #[test]
    fn more_jobs_cost_more_under_contention() {
        // The §VII-F mechanism: with big scheduling gaps, a 2-job chain is
        // slower than an equivalent 1-job chain even if work is equal.
        let base = ClusterConfig {
            contention: Some(ContentionModel {
                slot_share: 1.0,
                max_scheduling_gap_s: 300.0,
                task_slowdown: 1.0,
                seed: 3,
            }),
            ..ClusterConfig::default()
        };
        let mut c1 = Cluster::new(base.clone());
        c1.load_table("nums", (0..100).map(|i| i.to_string()).collect());
        let one = {
            let mut chain = JobChain::new();
            chain.push(
                JobSpec::builder("count")
                    .input("data/nums", || Box::new(IdMapper))
                    .reducer(|| Box::new(CountReducer))
                    .output("out/one")
                    .reduce_tasks(2)
                    .build(),
            );
            run_chain(&mut c1, &chain).unwrap().metrics.total_s()
        };
        let mut c2 = Cluster::new(base);
        c2.load_table("nums", (0..100).map(|i| i.to_string()).collect());
        let two = run_chain(&mut c2, &two_job_chain())
            .unwrap()
            .metrics
            .total_s();
        assert!(two > one);
    }
}
