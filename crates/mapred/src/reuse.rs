//! Cross-query result reuse — the ReStore idea over YSmart chains.
//!
//! *ReStore: Reusing Results of MapReduce Jobs* materializes sub-job
//! outputs and rewrites later jobs to read them instead of recomputing.
//! This module is that layer for the simulated cluster: committed job
//! outputs stay materialized in [`Hdfs`] under fingerprint-addressed
//! `reuse/<fp>` paths, and the multi-tenant scheduler fast-forwards any
//! *prefix* of an incoming chain whose job fingerprints hit the cache,
//! through the same [`crate::chain::ChainSession::set_replay`] machinery
//! crash recovery uses — so a hit restores the recorded output bytes and
//! applies the recorded metrics bit-identically to having executed.
//!
//! Soundness rests on three guards:
//!
//! * **Fingerprints** ([`crate::job::JobSpec::fingerprint`]) bind the
//!   blueprint structure *and* the identity of every input (producer
//!   fingerprints for intermediates, content checksums for base tables);
//!   jobs whose input identity cannot be established carry `None` and are
//!   never cached or reused.
//! * **Epochs**: the cache is scoped to one cluster configuration. A
//!   config change ([`ReuseCache::ensure_epoch`]) drops every entry, since
//!   cost-model and format knobs change the bytes and metrics a hit would
//!   replay.
//! * **Integrity**: every hit re-verifies the cached file's XXH64 content
//!   checksum, with at-rest corruption drawn from the cluster's seeded
//!   [`CorruptionModel`] genuinely flipping a bit first. A mismatch evicts
//!   the entry and reports a miss — the chain re-executes, so corruption
//!   costs time, never answers.
//!
//! Capacity pressure is relieved by LRU eviction over the *last-hit
//! simulated instant* (insertion instant until first hit), skipping entries
//! pinned by in-flight readers. All cache decisions happen in the
//! scheduler's single-threaded event loop at deterministic simulated
//! times, so behaviour is bit-identical across `exec_threads` settings.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{ClusterConfig, CorruptionModel};
use crate::hash::checksum_bytes;
use crate::hdfs::{file_bytes, file_checksum, DataFile, Hdfs};
use crate::metrics::JobMetrics;

/// Configuration of the result-reuse cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseConfig {
    /// Total bytes of cached outputs kept materialized in HDFS. `0`
    /// disables caching: nothing is ever inserted, every lookup misses —
    /// the byte-identical baseline the CI gate pins.
    pub capacity_bytes: u64,
}

impl ReuseConfig {
    /// A cache bounded at `capacity_bytes`.
    #[must_use]
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        ReuseConfig { capacity_bytes }
    }
}

/// Counters of one cache's lifetime, surfaced in
/// [`crate::scheduler::WorkloadReport::reuse`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReuseStats {
    /// Lookups that returned a verified cached output.
    pub hits: u64,
    /// Lookups that found no entry (including fingerprint-less jobs never
    /// reaching the cache is *not* counted here — only real lookups).
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Hits rejected because the cached bytes failed checksum
    /// verification; each also evicts the damaged entry.
    pub integrity_failures: u64,
    /// Bytes currently cached (live gauge, not a counter).
    pub bytes_cached: u64,
    /// Simulated execution seconds the hits avoided (recorded job time
    /// minus scheduling delay, summed over hits).
    pub reused_work_s: f64,
}

impl ReuseStats {
    /// Hit rate over all lookups, in `[0, 1]`; `0` when no lookups ran.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached job output.
#[derive(Debug, Clone)]
struct Entry {
    /// Fingerprint-addressed HDFS path holding the materialized output.
    path: String,
    /// Content checksum taken at insert time, verified on every hit.
    checksum: u64,
    /// Size of the materialized file.
    bytes: u64,
    /// The committed job's recorded metrics, replayed on a hit.
    metrics: JobMetrics,
    /// Simulated instant of the last hit (insert instant until then) —
    /// the LRU eviction key.
    last_hit_s: f64,
    /// Monotonic tiebreak for equal instants, and the salt of the at-rest
    /// corruption draw (a re-inserted fingerprint draws fresh).
    seq: u64,
    /// In-flight readers; a pinned entry is never evicted.
    pins: u32,
}

/// The cross-query result-reuse cache. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct ReuseCache {
    config: Option<ReuseConfig>,
    entries: BTreeMap<u64, Entry>,
    stats: ReuseStats,
    seq: u64,
    epoch: Option<u64>,
}

/// The epoch a cluster configuration defines: any config change — cost
/// model, data format, corruption seed — yields a different epoch and
/// therefore an empty cache.
#[must_use]
pub fn config_epoch(config: &ClusterConfig) -> u64 {
    checksum_bytes(format!("{config:?}").as_bytes())
}

/// The fingerprint-addressed HDFS path of a cached output.
#[must_use]
pub fn reuse_path(fingerprint: u64) -> String {
    format!("reuse/{fingerprint:016x}")
}

impl ReuseCache {
    /// An empty cache with the given capacity.
    #[must_use]
    pub fn new(config: ReuseConfig) -> Self {
        ReuseCache {
            config: Some(config),
            ..ReuseCache::default()
        }
    }

    /// The configured capacity in bytes (0 when constructed `Default`).
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.config.map_or(0, |c| c.capacity_bytes)
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &ReuseStats {
        &self.stats
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a fingerprint is cached.
    #[must_use]
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.entries.contains_key(&fingerprint)
    }

    /// Scopes the cache to `epoch` (see [`config_epoch`]): on a change,
    /// every cached file is deleted from `hdfs` and the entries dropped.
    /// Counters survive — they describe the cache's lifetime, not one
    /// epoch.
    pub fn ensure_epoch(&mut self, hdfs: &mut Hdfs, epoch: u64) {
        if self.epoch == Some(epoch) {
            return;
        }
        for entry in self.entries.values() {
            hdfs.delete(&entry.path);
        }
        self.stats.bytes_cached = 0;
        self.entries.clear();
        self.epoch = Some(epoch);
    }

    /// Looks up a fingerprint at simulated instant `now_s`, verifying the
    /// cached bytes before serving them. At-rest corruption is drawn from
    /// `corruption` per `(seed, fingerprint, entry seq)` and genuinely
    /// flips a bit of the candidate bytes; detection is the real checksum
    /// comparison against the insert-time stamp. A damaged entry is
    /// evicted and reported as a miss, so the caller re-executes.
    pub fn lookup(
        &mut self,
        hdfs: &mut Hdfs,
        fingerprint: u64,
        corruption: Option<&CorruptionModel>,
        now_s: f64,
    ) -> Option<(DataFile, JobMetrics)> {
        let Some(entry) = self.entries.get_mut(&fingerprint) else {
            self.stats.misses += 1;
            return None;
        };
        let Ok(file) = hdfs.get(&entry.path) else {
            // The materialized file vanished out from under the entry
            // (defensive: nothing in-tree deletes reuse/ paths directly).
            let dead = self.entries.remove(&fingerprint).expect("entry exists");
            self.stats.bytes_cached -= dead.bytes;
            self.stats.misses += 1;
            return None;
        };
        let mut candidate = file_bytes(file);
        if let Some(model) = corruption {
            const SPLITMIX: u64 = 0x9E37_79B9_7F4A_7C15;
            let seed = model.seed
                ^ fingerprint.wrapping_mul(SPLITMIX)
                ^ (entry.seq + 0xCAC4E).wrapping_mul(SPLITMIX);
            let mut rng = StdRng::seed_from_u64(seed);
            if model.block_rate > 0.0
                && !candidate.is_empty()
                && rng.gen::<f64>() < model.block_rate
            {
                let bit = rng.gen::<u64>() as usize % (candidate.len() * 8);
                candidate[bit / 8] ^= 1 << (bit % 8);
            }
        }
        if checksum_bytes(&candidate) != entry.checksum {
            let dead = self.entries.remove(&fingerprint).expect("entry exists");
            hdfs.delete(&dead.path);
            self.stats.bytes_cached -= dead.bytes;
            self.stats.integrity_failures += 1;
            self.stats.misses += 1;
            return None;
        }
        // Only the LRU instant advances; the entry keeps its insertion seq
        // (it salts the at-rest corruption draw).
        entry.last_hit_s = now_s;
        let result = (file.clone(), entry.metrics.clone());
        self.stats.hits += 1;
        self.stats.reused_work_s += entry.metrics.total_s() - entry.metrics.startup_delay_s;
        Some(result)
    }

    /// Inserts a committed job output at simulated instant `now_s`,
    /// materializing it in `hdfs` under [`reuse_path`]. No-ops when the
    /// capacity is 0, the fingerprint is already cached (recovery replays
    /// re-commit the same jobs), or the file cannot fit even after
    /// evicting every unpinned entry.
    pub fn insert(
        &mut self,
        hdfs: &mut Hdfs,
        fingerprint: u64,
        file: DataFile,
        metrics: JobMetrics,
        now_s: f64,
    ) {
        let capacity = self.capacity_bytes();
        if capacity == 0 || self.entries.contains_key(&fingerprint) {
            return;
        }
        let bytes = file.bytes();
        if bytes > capacity {
            return;
        }
        while self.stats.bytes_cached + bytes > capacity {
            if !self.evict_lru(hdfs) {
                return;
            }
        }
        let path = reuse_path(fingerprint);
        let checksum = file_checksum(&file);
        hdfs.put_data(&path, file);
        self.seq += 1;
        self.entries.insert(
            fingerprint,
            Entry {
                path,
                checksum,
                bytes,
                metrics,
                last_hit_s: now_s,
                seq: self.seq,
                pins: 0,
            },
        );
        self.stats.insertions += 1;
        self.stats.bytes_cached += bytes;
    }

    /// Evicts the least-recently-hit unpinned entry; `false` when every
    /// entry is pinned (or the cache is empty).
    fn evict_lru(&mut self, hdfs: &mut Hdfs) -> bool {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.pins == 0)
            .min_by(|(_, a), (_, b)| {
                a.last_hit_s
                    .partial_cmp(&b.last_hit_s)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.seq.cmp(&b.seq))
            })
            .map(|(fp, _)| *fp);
        let Some(fp) = victim else {
            return false;
        };
        let dead = self.entries.remove(&fp).expect("victim exists");
        hdfs.delete(&dead.path);
        self.stats.bytes_cached -= dead.bytes;
        self.stats.evictions += 1;
        true
    }

    /// Marks a fingerprint as having an in-flight reader; pinned entries
    /// are never evicted. Unknown fingerprints are ignored.
    pub fn pin(&mut self, fingerprint: u64) {
        if let Some(e) = self.entries.get_mut(&fingerprint) {
            e.pins += 1;
        }
    }

    /// Releases one pin (saturating; unknown fingerprints are ignored —
    /// the entry may have been integrity-evicted while pinned readers were
    /// already holding its cloned bytes).
    pub fn unpin(&mut self, fingerprint: u64) {
        if let Some(e) = self.entries.get_mut(&fingerprint) {
            e.pins = e.pins.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(lines: &[&str]) -> DataFile {
        DataFile {
            lines: lines.iter().map(|s| (*s).to_string()).collect(),
            frames: Vec::new(),
        }
    }

    fn metrics(total: f64) -> JobMetrics {
        JobMetrics {
            map_time_s: total,
            ..JobMetrics::default()
        }
    }

    #[test]
    fn round_trips_and_counts() {
        let mut hdfs = Hdfs::new();
        let mut cache = ReuseCache::new(ReuseConfig::with_capacity(1 << 20));
        assert!(cache.lookup(&mut hdfs, 7, None, 0.0).is_none());
        cache.insert(&mut hdfs, 7, text(&["a|1", "b|2"]), metrics(3.0), 1.0);
        assert!(cache.contains(7));
        assert!(hdfs.exists(&reuse_path(7)));
        let (file, m) = cache.lookup(&mut hdfs, 7, None, 2.0).unwrap();
        assert_eq!(file.lines, vec!["a|1".to_string(), "b|2".to_string()]);
        assert!((m.total_s() - 3.0).abs() < 1e-12);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.reused_work_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_zero_never_caches() {
        let mut hdfs = Hdfs::new();
        let mut cache = ReuseCache::new(ReuseConfig::with_capacity(0));
        cache.insert(&mut hdfs, 1, text(&["x"]), metrics(1.0), 0.0);
        assert!(cache.is_empty());
        assert_eq!(hdfs.total_bytes(), 0);
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn lru_evicts_coldest_first() {
        let mut hdfs = Hdfs::new();
        // Each file is 2 bytes ("x\n"); capacity fits exactly two.
        let mut cache = ReuseCache::new(ReuseConfig::with_capacity(4));
        cache.insert(&mut hdfs, 1, text(&["x"]), metrics(1.0), 0.0);
        cache.insert(&mut hdfs, 2, text(&["y"]), metrics(1.0), 1.0);
        // Touch 1 so 2 becomes the LRU victim.
        cache.lookup(&mut hdfs, 1, None, 2.0).unwrap();
        cache.insert(&mut hdfs, 3, text(&["z"]), metrics(1.0), 3.0);
        assert!(cache.contains(1) && cache.contains(3) && !cache.contains(2));
        assert!(!hdfs.exists(&reuse_path(2)));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().bytes_cached, 4);
        assert!(hdfs.accounting_reconciled());
    }

    #[test]
    fn pinned_entry_survives_pressure() {
        let mut hdfs = Hdfs::new();
        let mut cache = ReuseCache::new(ReuseConfig::with_capacity(4));
        cache.insert(&mut hdfs, 1, text(&["x"]), metrics(1.0), 0.0);
        cache.insert(&mut hdfs, 2, text(&["y"]), metrics(1.0), 1.0);
        // 1 is the colder entry but a reader holds it pinned.
        cache.pin(1);
        cache.insert(&mut hdfs, 3, text(&["z"]), metrics(1.0), 2.0);
        assert!(cache.contains(1), "pinned entry must not be evicted");
        assert!(!cache.contains(2), "pressure falls on the unpinned LRU");
        assert!(cache.contains(3));
        cache.unpin(1);
        cache.insert(&mut hdfs, 4, text(&["w"]), metrics(1.0), 3.0);
        assert!(!cache.contains(1), "unpinned, 1 is again evictable");
    }

    #[test]
    fn everything_pinned_skips_insert() {
        let mut hdfs = Hdfs::new();
        let mut cache = ReuseCache::new(ReuseConfig::with_capacity(2));
        cache.insert(&mut hdfs, 1, text(&["x"]), metrics(1.0), 0.0);
        cache.pin(1);
        cache.insert(&mut hdfs, 2, text(&["y"]), metrics(1.0), 1.0);
        assert!(cache.contains(1) && !cache.contains(2));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn corrupt_entry_is_rejected_and_evicted() {
        let mut hdfs = Hdfs::new();
        let mut cache = ReuseCache::new(ReuseConfig::with_capacity(1 << 20));
        cache.insert(&mut hdfs, 9, text(&["payload"]), metrics(2.0), 0.0);
        let certain = CorruptionModel::uniform(1.0, 42);
        assert!(
            cache.lookup(&mut hdfs, 9, Some(&certain), 1.0).is_none(),
            "a flipped bit must fail verification"
        );
        assert!(!cache.contains(9));
        assert!(!hdfs.exists(&reuse_path(9)));
        let s = cache.stats();
        assert_eq!((s.integrity_failures, s.hits, s.misses), (1, 0, 1));
        // Clean model: a fresh insert serves again (new seq, fresh draw).
        cache.insert(&mut hdfs, 9, text(&["payload"]), metrics(2.0), 2.0);
        let clean = CorruptionModel::uniform(0.0, 42);
        assert!(cache.lookup(&mut hdfs, 9, Some(&clean), 3.0).is_some());
    }

    #[test]
    fn epoch_change_clears_entries_and_hdfs() {
        let mut hdfs = Hdfs::new();
        let mut cache = ReuseCache::new(ReuseConfig::with_capacity(1 << 20));
        cache.ensure_epoch(&mut hdfs, 1);
        cache.insert(&mut hdfs, 5, text(&["a"]), metrics(1.0), 0.0);
        cache.ensure_epoch(&mut hdfs, 1);
        assert!(cache.contains(5), "same epoch keeps entries");
        cache.ensure_epoch(&mut hdfs, 2);
        assert!(cache.is_empty());
        assert_eq!(hdfs.total_bytes(), 0);
        assert_eq!(cache.stats().bytes_cached, 0);
        assert!(hdfs.accounting_reconciled());
    }

    #[test]
    fn config_epoch_tracks_config_changes() {
        let a = ClusterConfig::default();
        let mut b = ClusterConfig::default();
        b.size_multiplier *= 2.0;
        assert_eq!(config_epoch(&a), config_epoch(&ClusterConfig::default()));
        assert_ne!(config_epoch(&a), config_epoch(&b));
    }

    #[test]
    fn oversized_file_is_not_cached() {
        let mut hdfs = Hdfs::new();
        let mut cache = ReuseCache::new(ReuseConfig::with_capacity(3));
        cache.insert(&mut hdfs, 1, text(&["too-big"]), metrics(1.0), 0.0);
        assert!(cache.is_empty());
        assert_eq!(hdfs.total_bytes(), 0);
    }

    #[test]
    fn hit_rate_is_hits_over_lookups() {
        let mut s = ReuseStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
