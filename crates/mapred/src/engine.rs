//! Job execution: real data processing plus simulated-time accounting.
//!
//! [`run_job`] executes one [`JobSpec`] against a [`Cluster`]:
//!
//! 1. **Split** — each input file is split into map tasks sized by the HDFS
//!    block size (in *simulated* bytes, so `size_multiplier` controls task
//!    counts the way real data volume would).
//! 2. **Map** — each task runs a fresh mapper over its real records,
//!    partitions output by [`crate::hash::partition`], sorts its run by
//!    `(partition, key, value)`, applies the combiner, and is charged
//!    read + CPU + sort + spill time. Failed attempts (seeded injection)
//!    are re-executed.
//! 3. **Schedule** — task times are packed onto the cluster's map slots by
//!    list scheduling; the map phase lasts until the last task finishes.
//! 4. **Shuffle + Reduce** — each map task's sorted run is split into
//!    per-partition segments; a reduce task k-way-merges its segments
//!    (Hadoop's merge-based shuffle — no global re-sort) and streams each
//!    key group through a fresh reducer as a borrowed slice of the merged
//!    value column. Output lines are written to HDFS with replication cost.
//!
//! Both task phases run on real OS threads
//! ([`crate::config::ClusterConfig::exec_threads`] caps them); all
//! injected-fault randomness is seeded per task index, so results, metrics
//! and simulated times are bit-identical for any thread count.
//! 5. **Checks** — per-node spill volumes are checked against disk
//!    capacity ([`MapRedError::DiskFull`]) and the job total against the
//!    configured time limit.
//!
//! Fault tolerance: a [`crate::config::NodeFailureModel`] kills whole
//! worker nodes during a job attempt. Map outputs live on local disks, so a
//! dead node's tasks are re-executed on the survivors and reducers re-fetch
//! that share of the shuffle — all charged in simulated time, never
//! changing results. A job attempt that cannot finish (a task out of
//! retries, disks full, every node dead) fails with an [`AttemptFailure`]
//! carrying the simulated time it burned; [`crate::chain::run_chain`]
//! retries it under the [`crate::config::RetryPolicy`].
//!
//! Data integrity: a [`crate::config::CorruptionModel`] flips *bytes*, not
//! clocks. HDFS blocks are read through per-block checksums with replica
//! failover ([`crate::hdfs::read_block_verified`]); shuffle segments are
//! checksummed on arrival, re-fetched on mismatch with capped retries, and
//! a mapper whose stored output stays corrupt is re-executed; torn input
//! records are skipped by robust mappers under the
//! [`crate::config::ClusterConfig::skip_bad_records`] budget; and nodes
//! that keep failing are blacklisted ([`crate::config::BlacklistPolicy`]),
//! shrinking the slot pool. Detection is genuine — a bit is actually
//! flipped and an actual checksum comparison catches it — and only
//! canonical bytes ever reach mappers and reducers, so corruption can never
//! change query results, only cost simulated time.

use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ysmart_rel::codec::encode_line;
use ysmart_rel::colbatch::DEFAULT_FRAME_ROWS;

use crate::norm::NormArena;
use ysmart_rel::{ColumnBatch, Row, Value};

use crate::config::{ClusterConfig, DataFormat};
use crate::error::MapRedError;
use crate::hash::{checksum_bytes, hash_row, partition};
use crate::hdfs::Hdfs;
use crate::job::{JobSpec, MapOutput, ReduceEmit, ReduceOutput};
use crate::metrics::JobMetrics;
use crate::trace::{ArgValue, Trace, TraceEvent, SPEC_LANE_BASE};

/// CPU microseconds charged per record comparison in the map-side sort.
const SORT_CPU_US_PER_CMP: f64 = 0.05;
/// Maximum attempts per task, as Hadoop's `mapred.map.max.attempts`.
const MAX_ATTEMPTS: usize = 4;
/// Re-fetches a reducer grants one shuffle segment before giving up on the
/// mapper's output and re-executing the mapper (Hadoop's
/// `mapreduce.reduce.shuffle.maxfetchfailures` spirit).
const MAX_FETCH_RETRIES: usize = 3;
/// Simulated backoff a reducer waits before re-fetching a corrupt segment.
const FETCH_RETRY_BACKOFF_S: f64 = 1.0;
/// CPU seconds charged per gigabyte checksummed (XXH64 runs at a few GB/s
/// on one core). Only charged when a corruption model is configured, so
/// integrity-off runs keep their exact historical timings.
const CHECKSUM_CPU_S_PER_GB: f64 = 0.5;

/// The simulated cluster: a global file system plus the cost model.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The global file system.
    pub hdfs: Hdfs,
    /// The cost model and topology.
    pub config: ClusterConfig,
    /// Execution trace, recorded only when enabled ([`Cluster::enable_tracing`]).
    trace: Option<Trace>,
}

impl Cluster {
    /// Creates a cluster with an empty file system.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        Cluster {
            hdfs: Hdfs::with_nodes(config.nodes.max(1)),
            config,
            trace: None,
        }
    }

    /// Starts recording an execution trace. Until [`Cluster::take_trace`]
    /// is called, every job run on this cluster appends its spans; with
    /// tracing off (the default) no trace work happens at all.
    pub fn enable_tracing(&mut self) {
        self.trace.get_or_insert_with(Trace::new);
    }

    /// Whether a trace is being recorded.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace recorded so far, for in-place inspection or cursor moves.
    pub fn trace_mut(&mut self) -> Option<&mut Trace> {
        self.trace.as_mut()
    }

    /// Stops tracing and returns the recorded trace, if any.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Swaps the cluster's trace slot with `slot`. A re-entrant
    /// [`crate::chain::ChainSession`] owns its own trace lane and installs
    /// it around each step, so concurrently interleaved chains never write
    /// into one cluster-global timeline.
    pub fn swap_trace(&mut self, slot: &mut Option<Trace>) {
        std::mem::swap(&mut self.trace, slot);
    }

    /// Loads a table into HDFS at `data/<name>` as text lines.
    pub fn load_table(&mut self, name: &str, lines: Vec<String>) {
        self.hdfs.put(&format!("data/{name}"), lines);
    }

    /// Loads a table at `data/<name>` in the cluster's configured
    /// [`DataFormat`]: text lines, or encoded columnar frames of
    /// [`DEFAULT_FRAME_ROWS`] rows each. Rows the frame codec rejects
    /// (non-uniform widths, non-finite floats) fall back to text so the
    /// load never fails.
    pub fn load_table_rows(&mut self, name: &str, rows: &[Row]) {
        let path = format!("data/{name}");
        if self.config.data_format == DataFormat::Columnar {
            if let Some((frames, _, _)) = encode_rows_to_frames(rows) {
                self.hdfs.put_frames(&path, frames);
                return;
            }
        }
        self.hdfs.put(&path, rows.iter().map(encode_line).collect());
    }

    /// The conventional HDFS path of a loaded table.
    #[must_use]
    pub fn table_path(name: &str) -> String {
        format!("data/{name}")
    }
}

/// A failed job attempt: the error plus the simulated time the attempt
/// burned before dying. [`crate::chain::run_chain`] charges that time to
/// the chain when it retries the job.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptFailure {
    /// What killed the attempt.
    pub error: MapRedError,
    /// Simulated seconds the attempt ran before failing.
    pub wasted_s: f64,
}

impl From<AttemptFailure> for MapRedError {
    fn from(f: AttemptFailure) -> Self {
        f.error
    }
}

impl From<MapRedError> for AttemptFailure {
    fn from(error: MapRedError) -> Self {
        AttemptFailure {
            error,
            wasted_s: 0.0,
        }
    }
}

/// One map task's slice of its input file: contiguous text lines, or
/// contiguous encoded columnar frames (`base` is the index of the first
/// frame within the file, seeding per-frame replica corruption draws the
/// way the task index seeds per-block draws in text mode).
#[derive(Clone, Copy)]
enum TaskInput<'a> {
    Lines(&'a [String]),
    Frames { frames: &'a [Vec<u8>], base: usize },
}

/// Internal per-map-task result. The map output is a *sorted run* already
/// cut into per-partition segments, in ascending partition order — each
/// segment's parallel key/value columns are sorted by `(key, value)`.
/// Map-only tasks carry their whole output as one pseudo-segment.
struct MapTaskResult {
    runs: Vec<(u32, PartitionRun)>,
    /// 1 when this task straggled and was rescued by a backup task.
    speculative: usize,
    /// Slot-seconds the speculative backup duplicated.
    spec_slot_s: f64,
    /// Error that kills the whole job attempt — a task out of per-task
    /// retries, or a block with no checksum-clean replica left. Surfaced
    /// after every task's time has been accounted.
    fatal: Option<MapRedError>,
    /// Simulated records/bytes per real pair emitted by this task. Usually
    /// the global `size_multiplier`; 1.0 when a combiner collapsed the task
    /// to a handful of partial rows — such output is bounded by key
    /// cardinality, not data volume, and must not scale with it (a map
    /// task covering 2 000 000× more records of a *global* aggregation
    /// still emits one partial row).
    weight: f64,
    time_s: f64,
    spill_bytes: u64,
    in_records: u64,
    out_records: u64,
    failed_attempts: usize,
    /// Corrupt block replicas detected by checksum and failed over.
    corrupt_replicas: u64,
    /// Checksum CPU seconds charged to this task (already in `time_s`).
    verify_s: f64,
    /// Malformed input records the mapper skipped.
    skipped_records: u64,
    /// Injected flips the block checksum failed to detect (collisions).
    collisions: u64,
    /// Duration of one (successful) attempt of this task — `time_s` minus
    /// the re-executed failed attempts. The trace draws failed attempts as
    /// separate spans of half this length, matching the engine's charge.
    attempt_s: f64,
    /// Per-stream dispatch counts reported by the mapper (CMF fan-out).
    dispatches: Vec<u64>,
}

/// Executes one job, mutating HDFS with its output and returning metrics.
///
/// # Errors
///
/// Missing inputs, disk-capacity overflow, time-limit violation, injected
/// faults that exhaust task retries, or loss of every worker node.
pub fn run_job(cluster: &mut Cluster, spec: &JobSpec) -> Result<JobMetrics, MapRedError> {
    run_job_attempt(cluster, spec, 0).map_err(MapRedError::from)
}

/// Mixes a job-attempt index into RNG seeds so a retried job sees fresh
/// failure/straggler draws (attempt 0 leaves seeds unchanged).
pub(crate) fn attempt_mix(attempt: usize) -> u64 {
    (attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F)
}

/// Executes one attempt of a job. `attempt` varies the injected-fault RNG
/// draws, so the chain-level retry of a failed job is not doomed to repeat
/// the exact same deaths.
///
/// # Errors
///
/// As [`run_job`], but failures carry the simulated time the attempt burned
/// before dying ([`AttemptFailure`]).
pub fn run_job_attempt(
    cluster: &mut Cluster,
    spec: &JobSpec,
    attempt: usize,
) -> Result<JobMetrics, AttemptFailure> {
    let cfg = cluster.config.clone();
    let mult = cfg.size_multiplier;
    let slowdown = cfg.contention.map_or(1.0, |c| c.task_slowdown);
    // Tracing: spans are buffered locally and committed to the cluster
    // trace only if this attempt succeeds (a failed attempt is summarised
    // by the chain as one `job_failed` span instead). All emission happens
    // in the serial sections after thread joins, keyed by simulated time
    // and task index — never wall clock — so traces are byte-identical
    // across `exec_threads` settings.
    let tracing = cluster.trace.is_some();
    let cursor = cluster.trace.as_ref().map_or(0.0, Trace::cursor_s);
    let mut tev: Vec<TraceEvent> = Vec::new();

    // ---- split ----------------------------------------------------------
    // Splits are contiguous line (or frame) ranges, so tasks borrow slices
    // of the files already in HDFS — no copy of the input per job. The
    // borrows end before the job's output is written back. Columnar files
    // split on frame boundaries (a task reads whole frames), the way text
    // splits on line boundaries; the format is detected per file, so a
    // columnar-mode job reading a text fallback file still works.
    let block_real_bytes = (cfg.hdfs_block_mb * 1e6 / mult).max(1.0);
    let mut tasks: Vec<(usize, TaskInput)> = Vec::new(); // (input idx, records)
    let mut hdfs_read_real: u64 = 0;
    for (input_idx, input) in spec.inputs.iter().enumerate() {
        let file = cluster.hdfs.get(&input.path)?;
        hdfs_read_real += file.bytes();
        if file.is_columnar() {
            let frames = &file.frames;
            let mut start = 0;
            let mut chunk_bytes = 0.0;
            for (i, frame) in frames.iter().enumerate() {
                chunk_bytes += frame.len() as f64;
                if chunk_bytes >= block_real_bytes {
                    tasks.push((
                        input_idx,
                        TaskInput::Frames {
                            frames: &frames[start..=i],
                            base: start,
                        },
                    ));
                    start = i + 1;
                    chunk_bytes = 0.0;
                }
            }
            if start < frames.len() {
                tasks.push((
                    input_idx,
                    TaskInput::Frames {
                        frames: &frames[start..],
                        base: start,
                    },
                ));
            }
        } else {
            let lines = &file.lines;
            let mut start = 0;
            let mut chunk_bytes = 0.0;
            for (i, line) in lines.iter().enumerate() {
                chunk_bytes += line.len() as f64 + 1.0;
                if chunk_bytes >= block_real_bytes {
                    tasks.push((input_idx, TaskInput::Lines(&lines[start..=i])));
                    start = i + 1;
                    chunk_bytes = 0.0;
                }
            }
            if start < lines.len() || file_is_empty_input(&tasks, input_idx) {
                tasks.push((input_idx, TaskInput::Lines(&lines[start..])));
            }
        }
    }

    // ---- map phase -------------------------------------------------------
    // Tasks are independent, so the *real* work runs in parallel across OS
    // threads (crossbeam scoped threads); determinism is preserved by
    // seeding the failure/straggler RNGs per task index rather than
    // drawing from one sequential stream.
    let job_hash = hash_row(&ysmart_rel::row![spec.name.as_str()]);
    let num_reducers = spec.reduce_tasks.unwrap_or_else(|| {
        let default = cfg.default_reduce_tasks();
        match spec.key_cardinality_hint {
            // More reducers than distinct keys are pure startup overhead.
            Some(keys) => default.min(usize::try_from(keys).unwrap_or(usize::MAX).max(1)),
            None => default,
        }
    });
    let map_only = spec.reducer.is_none();

    let threads = exec_threads(&cfg).min(tasks.len().max(1));
    let results: Vec<MapTaskResult> = if threads <= 1 || tasks.len() < 4 {
        tasks
            .iter()
            .enumerate()
            .map(|(idx, (input_idx, task_input))| {
                run_map_task(
                    &cfg,
                    spec,
                    job_hash,
                    attempt,
                    idx,
                    *input_idx,
                    *task_input,
                    num_reducers,
                    map_only,
                    mult,
                    slowdown,
                )
            })
            .collect()
    } else {
        let chunk = tasks.len().div_ceil(threads);
        type TaskSlice<'a> = (usize, &'a [(usize, TaskInput<'a>)]);
        let task_slices: Vec<TaskSlice> = tasks
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| (i * chunk, c))
            .collect();
        let cfg_ref = &cfg;
        // A panicking task thread (a user mapper that panics despite the
        // record_fatal channel) surfaces as a typed User error, not a
        // panic of the whole chain.
        let chunk_results: Result<Vec<Vec<MapTaskResult>>, MapRedError> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = task_slices
                    .into_iter()
                    .map(|(base, slice)| {
                        scope.spawn(move |_| {
                            slice
                                .iter()
                                .enumerate()
                                .map(|(off, (input_idx, task_input))| {
                                    run_map_task(
                                        cfg_ref,
                                        spec,
                                        job_hash,
                                        attempt,
                                        base + off,
                                        *input_idx,
                                        *task_input,
                                        num_reducers,
                                        map_only,
                                        mult,
                                        slowdown,
                                    )
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().map_err(|_| {
                            MapRedError::User(format!("map task panicked in job {}", spec.name))
                        })
                    })
                    .collect()
            })
            .unwrap_or_else(|_| {
                Err(MapRedError::User(format!(
                    "map phase thread panicked in job {}",
                    spec.name
                )))
            });
        chunk_results
            .map_err(AttemptFailure::from)?
            .into_iter()
            .flatten()
            .collect()
    };
    let speculative_tasks: usize = results.iter().map(|r| r.speculative).sum();

    let mut map_makespan = makespan(results.iter().map(|r| r.time_s), cfg.total_map_slots());

    // A task out of per-task retries — or a block with no checksum-clean
    // replica left — kills the attempt; the whole map phase's work up to
    // that point is lost.
    if let Some(error) = results.iter().find_map(|r| r.fatal.clone()) {
        return Err(AttemptFailure {
            error,
            wasted_s: map_makespan,
        });
    }

    // ---- bad-record budget ----------------------------------------------
    // Mappers skipped malformed records instead of aborting; more skips
    // than the configured budget means the input is too damaged to trust.
    let skipped_records: u64 = results.iter().map(|r| r.skipped_records).sum();
    if skipped_records > cfg.skip_bad_records {
        return Err(AttemptFailure {
            error: MapRedError::TooManyBadRecords {
                job: spec.name.clone(),
                skipped: skipped_records,
                budget: cfg.skip_bad_records,
            },
            wasted_s: map_makespan,
        });
    }

    // ---- node-loss injection ---------------------------------------------
    // Per (job, attempt, node) seeded deaths. A dead node's map outputs are
    // on its local disk and unreachable, so its tasks re-execute on the
    // surviving slots after the original wave; the original runs are
    // wasted work. `lost_map_frac` later charges the reducers' re-fetch.
    let nodes = cfg.nodes.max(1);
    let mut dead = vec![false; nodes];
    let mut nodes_lost = 0usize;
    let mut reexecuted_tasks = 0usize;
    let mut wasted_s = 0.0f64;
    let mut lost_map_frac = 0.0f64;
    // (task index, duration) of map tasks lost to dead nodes, and the
    // simulated time their re-execution wave starts — kept for the trace.
    let mut lost: Vec<(usize, f64)> = Vec::new();
    let mut reexec_base_s = 0.0f64;
    if let Some(model) = cfg.node_failures {
        const SPLITMIX: u64 = 0x9E37_79B9_7F4A_7C15;
        for (n, d) in dead.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                model.seed
                    ^ job_hash
                    ^ attempt_mix(attempt)
                    ^ (n as u64 + 0x0DE5).wrapping_mul(SPLITMIX),
            );
            *d = rng.gen::<f64>() < model.probability;
            nodes_lost += usize::from(*d);
        }
        if nodes_lost == nodes {
            return Err(AttemptFailure {
                error: MapRedError::ClusterLost {
                    job: spec.name.clone(),
                    nodes,
                },
                wasted_s: map_makespan,
            });
        }
        lost = results
            .iter()
            .enumerate()
            .filter(|(idx, _)| dead[idx % nodes])
            .map(|(idx, r)| (idx, r.time_s))
            .collect();
        if !lost.is_empty() {
            reexecuted_tasks += lost.len();
            wasted_s += lost.iter().map(|&(_, t)| t).sum::<f64>();
            lost_map_frac = lost.len() as f64 / results.len() as f64;
            reexec_base_s = map_makespan;
            map_makespan += makespan(
                lost.iter().map(|&(_, t)| t),
                cfg.surviving_map_slots(nodes - nodes_lost),
            );
        }
    }

    // ---- disk-capacity check on map spill --------------------------------
    let total_spill: u64 = results.iter().map(|r| r.spill_bytes).sum();
    check_disk(&cfg, total_spill).map_err(|error| AttemptFailure {
        error,
        wasted_s: map_makespan,
    })?;

    let mut map_dispatches: Vec<u64> = Vec::new();
    for r in &results {
        accumulate(&mut map_dispatches, &r.dispatches);
    }
    let mut metrics = JobMetrics {
        name: spec.name.clone(),
        map_time_s: map_makespan,
        hdfs_read_bytes: scale_u64(hdfs_read_real, mult),
        local_spill_bytes: total_spill,
        map_in_records: scale_u64(results.iter().map(|r| r.in_records).sum::<u64>(), mult),
        map_out_records: scale_u64(results.iter().map(|r| r.out_records).sum::<u64>(), mult),
        map_tasks: results.len(),
        failed_attempts: results.iter().map(|r| r.failed_attempts).sum(),
        speculative_tasks,
        speculative_slot_s: results.iter().map(|r| r.spec_slot_s).sum(),
        nodes_lost,
        reexecuted_tasks,
        wasted_s,
        attempt,
        corrupt_blocks_detected: results.iter().map(|r| r.corrupt_replicas).sum(),
        skipped_records,
        verify_s: results.iter().map(|r| r.verify_s).sum(),
        checksum_collisions: results.iter().map(|r| r.collisions).sum(),
        map_dispatches,
        ..JobMetrics::default()
    };

    // ---- map-phase trace spans -------------------------------------------
    // Re-derive the list schedule the makespan used (identical float ops,
    // so span extents and `map_time_s` agree bit-for-bit) and lay each
    // task's failed attempts, success run, speculative backup and integrity
    // events on its slot's lane.
    if tracing {
        let times: Vec<f64> = results.iter().map(|r| r.time_s).collect();
        let (placed, _) = schedule(&times, cfg.total_map_slots());
        for (idx, r) in results.iter().enumerate() {
            let tid = placed[idx].0 as u32;
            let mut at = cursor + placed[idx].1;
            for f in 0..r.failed_attempts {
                let d = r.attempt_s * 0.5;
                tev.push(TraceEvent::span(
                    tid,
                    "attempt_failed",
                    format!("m{idx} attempt {} (failed)", f + 1),
                    at,
                    d,
                ));
                at += d;
            }
            let mut ev = TraceEvent::span(tid, "map", format!("m{idx}"), at, r.attempt_s)
                .arg("in_records", ArgValue::U64(r.in_records))
                .arg("out_records", ArgValue::U64(r.out_records));
            if r.verify_s > 0.0 {
                ev = ev.arg("verify_s", ArgValue::F64(r.verify_s));
            }
            if r.corrupt_replicas > 0 {
                ev = ev.arg("corrupt_replicas", ArgValue::U64(r.corrupt_replicas));
            }
            tev.push(ev);
            if r.verify_s > 0.0 {
                tev.push(TraceEvent::span(
                    tid,
                    "verify",
                    format!("m{idx} checksum verify"),
                    at,
                    r.verify_s,
                ));
            }
            if r.speculative > 0 {
                tev.push(TraceEvent::span(
                    SPEC_LANE_BASE + tid,
                    "speculative",
                    format!("m{idx} backup"),
                    at,
                    r.spec_slot_s,
                ));
            }
            if r.skipped_records > 0 {
                tev.push(
                    TraceEvent::instant(
                        tid,
                        "skip",
                        format!("m{idx} skipped bad records"),
                        at + r.attempt_s,
                    )
                    .arg("records", ArgValue::U64(r.skipped_records)),
                );
            }
            if r.collisions > 0 {
                tev.push(
                    TraceEvent::instant(tid, "collision", format!("m{idx} checksum collision"), at)
                        .arg("collisions", ArgValue::U64(r.collisions)),
                );
            }
        }
        if !lost.is_empty() {
            let lost_times: Vec<f64> = lost.iter().map(|&(_, t)| t).collect();
            let (placed, _) = schedule(&lost_times, cfg.surviving_map_slots(nodes - nodes_lost));
            for (&(idx, t), &(slot, start)) in lost.iter().zip(&placed) {
                tev.push(TraceEvent::span(
                    slot as u32,
                    "reexec",
                    format!("m{idx} re-exec (node lost)"),
                    cursor + reexec_base_s + start,
                    t,
                ));
            }
        }
    }

    // ---- map-only completion ---------------------------------------------
    if map_only {
        let mut rows: Vec<Row> = Vec::new();
        for r in results {
            for (_, seg) in r.runs {
                rows.extend(seg.values);
            }
        }
        let out_records = rows.len() as u64;
        // Columnar mode writes the output as encoded frames; rows the
        // frame codec rejects (non-uniform widths) fall back to text.
        let encoded = (cfg.data_format == DataFormat::Columnar)
            .then(|| encode_rows_to_frames(&rows))
            .flatten();
        let (out_bytes, lines, frames) = match encoded {
            Some((frames, bytes, dicts)) => {
                metrics.encoded_bytes += bytes;
                metrics.dict_entries += dicts;
                (bytes, Vec::new(), frames)
            }
            None => {
                let mut lines = Vec::with_capacity(rows.len());
                let mut bytes = 0u64;
                for v in &rows {
                    let line = encode_line(v);
                    bytes += line.len() as u64 + 1;
                    lines.push(line);
                }
                (bytes, lines, Vec::new())
            }
        };
        let sim_out = out_bytes as f64 * mult;
        // Map-only jobs still write output to HDFS with replication.
        let write_s = cfg.net_seconds(sim_out * f64::from(cfg.replication))
            / (cfg.total_map_slots() as f64).max(1.0);
        if tracing {
            tev.push(
                TraceEvent::span(
                    0,
                    "write",
                    format!("{} output write", spec.name),
                    cursor + metrics.map_time_s,
                    write_s,
                )
                .arg("bytes", ArgValue::U64(scale_u64(out_bytes, mult))),
            );
        }
        metrics.map_time_s += write_s;
        metrics.hdfs_write_bytes = scale_u64(out_bytes, mult);
        metrics.out_records = scale_u64(out_records, mult);
        check_time(&cfg, metrics.map_time_s).map_err(|error| AttemptFailure {
            error,
            wasted_s: metrics.map_time_s,
        })?;
        if frames.is_empty() {
            cluster.hdfs.put(&spec.output, lines);
        } else {
            cluster.hdfs.put_frames(&spec.output, frames);
        }
        commit_job_trace(cluster, spec, attempt, &metrics, tev);
        return Ok(metrics);
    }

    // ---- shuffle ----------------------------------------------------------
    // Map tasks emitted per-partition sorted segments, so the shuffle is
    // pure *distribution*: whole segments move (Vec pointer copies, no
    // per-pair work) to the reduce tasks that k-way merge them. Tasks are
    // consumed in task order, preserving the merge tie-break order.
    //
    // Under a corruption model each fetched segment is checksummed on
    // arrival. A corrupt fetch (a genuinely bit-flipped copy, detected by
    // checksum mismatch) is re-fetched after a backoff; a segment that
    // stays corrupt past the retry cap means the *mapper's stored output*
    // is bad, so the mapper re-executes and the fresh output is fetched.
    // Only the canonical segment rows ever reach a reducer.
    let compress_ratio = cfg.compression.map_or(1.0, |c| c.ratio);
    let decompress_cpu = cfg.compression.map_or(0.0, |c| c.cpu_s_per_gb);
    const SPLITMIX: u64 = 0x9E37_79B9_7F4A_7C15;
    const PARTMIX: u64 = 0xA076_1D64_78BD_642F;
    let task_times: Vec<f64> = results.iter().map(|r| r.time_s).collect();
    let task_failed: Vec<usize> = results.iter().map(|r| r.failed_attempts).collect();
    let mut part_runs: Vec<Vec<PartitionRun>> = (0..num_reducers).map(|_| Vec::new()).collect();
    let mut shuffle_sim_bytes = vec![0.0f64; num_reducers];
    let mut shuffle_sim_records = vec![0.0f64; num_reducers];
    let mut refetch_extra_s = vec![0.0f64; num_reducers];
    let mut refetched_segments = 0u64;
    let mut segment_verify_s = 0.0f64;
    let mut fetch_failures = vec![0usize; nodes];
    let mut seg_collisions = 0u64;
    // Per-partition integrity detail for the trace's fetch/verify spans.
    let mut part_verify = vec![0.0f64; num_reducers];
    let mut part_refetches = vec![0u64; num_reducers];
    let columnar = cfg.data_format == DataFormat::Columnar;
    let mut seg_encoded_bytes = 0u64;
    let mut seg_dict_entries = 0u64;
    for (t, r) in results.into_iter().enumerate() {
        let weight = r.weight;
        for (p, seg) in r.runs {
            let p = p as usize;
            // Wire form of the segment: columnar mode encodes one frame of
            // `key ⧺ value` rows (per-column-chunk checksums), falling back
            // to the text framing when widths are non-uniform across the
            // segment; text mode counts text framing bytes.
            // Real wire bytes are built only when the corruption model
            // will actually flip bits in them; otherwise the exact frame
            // size comes from `segment_frame_stats` with no encoding pass.
            let need_wire = cfg.corruption.is_some_and(|m| m.segment_rate > 0.0);
            let seg_frame = if columnar && need_wire {
                segment_frame(&seg)
            } else {
                None
            };
            let frame_stats = match &seg_frame {
                Some((frame, dicts)) => Some((frame.len() as u64, *dicts)),
                None if columnar && !need_wire => segment_frame_stats(&seg),
                None => None,
            };
            let bytes = match frame_stats {
                Some((len, dicts)) => {
                    seg_encoded_bytes += len;
                    seg_dict_entries += dicts;
                    len as f64
                }
                None => seg
                    .keys
                    .iter()
                    .zip(&seg.values)
                    .map(|(k, v)| (k.size_bytes() + v.size_bytes() + 2) as f64)
                    .sum(),
            };
            shuffle_sim_bytes[p] += bytes * weight;
            shuffle_sim_records[p] += seg.keys.len() as f64 * weight;
            if let Some(model) = cfg.corruption.filter(|m| m.segment_rate > 0.0) {
                if !seg.keys.is_empty() {
                    let sim_raw = bytes * weight;
                    let sim_wire = sim_raw * compress_ratio;
                    let mut rng = StdRng::seed_from_u64(
                        model.seed
                            ^ job_hash
                            ^ attempt_mix(attempt)
                            ^ (t as u64 + 1).wrapping_mul(SPLITMIX)
                            ^ (p as u64 + 1).wrapping_mul(PARTMIX),
                    );
                    let mut corrupt_fetches = 0usize;
                    if rng.gen::<f64>() < model.segment_rate {
                        // In-flight corruption: flip a seeded bit in the
                        // fetched copy of the segment's canonical bytes and
                        // run the real detection path. The garbled copy is
                        // discarded; `seg`'s rows are the mapper's stored
                        // (canonical) output. In columnar mode the frame's
                        // per-column-chunk checksums do the detecting (the
                        // flip localises to one column's chunk); in text
                        // mode it is the whole-segment XXH64.
                        let (canon, is_frame) = match seg_frame {
                            Some((ref frame, _)) => (frame.clone(), true),
                            None => (segment_canon_bytes(&seg), false),
                        };
                        let stored = checksum_bytes(&canon);
                        loop {
                            let bit = rng.gen::<u64>() as usize % (canon.len() * 8);
                            let mut garbled = canon.clone();
                            garbled[bit / 8] ^= 1 << (bit % 8);
                            let undetected = if is_frame {
                                ColumnBatch::decode_frame(&garbled).is_ok()
                            } else {
                                checksum_bytes(&garbled) == stored
                            };
                            if undetected {
                                // A checksum collision lets the flip through
                                // undetected — excluded for single-bit flips
                                // by the avalanche test in `hash` (and the
                                // exhaustive flip test in `rel::colbatch`),
                                // but when it happens it is *counted* in
                                // every build profile
                                // (JobMetrics::checksum_collisions), not
                                // debug-asserted away.
                                seg_collisions += 1;
                                break;
                            }
                            corrupt_fetches += 1;
                            if corrupt_fetches > MAX_FETCH_RETRIES
                                || rng.gen::<f64>() >= model.segment_rate
                            {
                                break;
                            }
                        }
                    }
                    // Every fetched copy is checksummed on arrival.
                    let verify =
                        sim_raw / 1e9 * CHECKSUM_CPU_S_PER_GB * (1.0 + corrupt_fetches as f64);
                    segment_verify_s += verify;
                    refetch_extra_s[p] += verify;
                    part_verify[p] += verify;
                    if corrupt_fetches > MAX_FETCH_RETRIES {
                        // The mapper's stored output itself is bad: its
                        // failed fetches, a full mapper re-execution and
                        // the final re-fetch are all charged to this
                        // reducer's fetch phase, and the failure counts
                        // against the mapper's node.
                        refetched_segments += MAX_FETCH_RETRIES as u64;
                        part_refetches[p] += MAX_FETCH_RETRIES as u64;
                        refetch_extra_s[p] += MAX_FETCH_RETRIES as f64
                            * (cfg.net_seconds(sim_wire) + FETCH_RETRY_BACKOFF_S)
                            + task_times[t]
                            + cfg.net_seconds(sim_wire);
                        wasted_s += task_times[t];
                        reexecuted_tasks += 1;
                        fetch_failures[t % nodes] += 1;
                    } else if corrupt_fetches > 0 {
                        refetched_segments += corrupt_fetches as u64;
                        part_refetches[p] += corrupt_fetches as u64;
                        refetch_extra_s[p] += corrupt_fetches as f64
                            * (cfg.net_seconds(sim_wire) + FETCH_RETRY_BACKOFF_S);
                    }
                }
            }
            part_runs[p].push(seg);
        }
    }

    // ---- node blacklist ---------------------------------------------------
    // Hadoop's TaskTracker blacklist: a (surviving) node whose tasks kept
    // failing — injected task failures or shuffle outputs that failed
    // verification — is excluded from further scheduling, shrinking the
    // slot pool the reduce waves pack onto. Task-to-node attribution uses
    // the same `index % nodes` placement as node-loss re-execution.
    let mut blacklisted = 0usize;
    if let Some(policy) = cfg.blacklist {
        let mut per_node = fetch_failures;
        for (t, &failed) in task_failed.iter().enumerate() {
            per_node[t % nodes] += failed;
        }
        let threshold = policy.max_failures.max(1);
        let candidates = (0..nodes)
            .filter(|&n| !dead[n] && per_node[n] >= threshold)
            .count();
        // Never blacklist the cluster out of existence: at least one node
        // stays schedulable.
        blacklisted = candidates.min((nodes - nodes_lost).saturating_sub(1));
    }

    let total_shuffle_sim: f64 = shuffle_sim_bytes.iter().sum::<f64>() * compress_ratio;
    check_disk(&cfg, total_shuffle_sim as u64).map_err(|error| AttemptFailure {
        error,
        wasted_s: metrics.map_time_s,
    })?;

    // ---- reduce phase ------------------------------------------------------
    // Reduce tasks are independent given the split shuffle segments, so the
    // real work runs on scoped threads like the map phase; the straggler /
    // node-loss RNG is seeded per partition index, and all accumulation
    // below happens in partition order after the join, so results, metrics
    // and times are identical to the serial path.
    // Invariant, not a reachable panic: `map_only` jobs returned above.
    let reducer_factory = spec.reducer.as_ref().expect("non-map-only");
    let reduce_ctx = ReduceCtx {
        cfg: &cfg,
        job_hash,
        mult,
        slowdown,
        compress_ratio,
        decompress_cpu,
        nodes_lost,
        lost_map_frac,
        nodes,
        dead: &dead,
        shuffle_sim_bytes: &shuffle_sim_bytes,
        shuffle_sim_records: &shuffle_sim_records,
        refetch_extra_s: &refetch_extra_s,
        columnar,
    };
    let reduce_threads = exec_threads(&cfg).min(num_reducers.max(1));
    let reduce_results: Vec<ReduceTaskResult> = if reduce_threads <= 1 || num_reducers < 2 {
        part_runs
            .into_iter()
            .enumerate()
            .map(|(p, runs)| run_reduce_task(&reduce_ctx, reducer_factory, p, runs))
            .collect()
    } else {
        let chunk = num_reducers.div_ceil(reduce_threads);
        let task_slices: Vec<(usize, Vec<Vec<PartitionRun>>)> = {
            let mut slices = Vec::new();
            let mut base = 0;
            let mut iter = part_runs.into_iter();
            while base < num_reducers {
                let take: Vec<Vec<PartitionRun>> = iter.by_ref().take(chunk).collect();
                if take.is_empty() {
                    break;
                }
                let len = take.len();
                slices.push((base, take));
                base += len;
            }
            slices
        };
        let ctx_ref = &reduce_ctx;
        let chunk_results: Result<Vec<Vec<ReduceTaskResult>>, MapRedError> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = task_slices
                    .into_iter()
                    .map(|(base, slice)| {
                        scope.spawn(move |_| {
                            slice
                                .into_iter()
                                .enumerate()
                                .map(|(off, runs)| {
                                    run_reduce_task(ctx_ref, reducer_factory, base + off, runs)
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().map_err(|_| {
                            MapRedError::User(format!("reduce task panicked in job {}", spec.name))
                        })
                    })
                    .collect()
            })
            .unwrap_or_else(|_| {
                Err(MapRedError::User(format!(
                    "reduce phase thread panicked in job {}",
                    spec.name
                )))
            });
        let chunk_results = chunk_results.map_err(|error| AttemptFailure {
            error,
            wasted_s: metrics.map_time_s,
        })?;
        chunk_results.into_iter().flatten().collect()
    };

    let mut reduce_speculative = 0usize;
    let mut reduce_spec_slot_s = 0.0f64;
    let mut reduce_times: Vec<f64> = Vec::with_capacity(num_reducers);
    // Per-task output, in partition order: each task produced either text
    // lines or columnar frames (never both).
    let mut outs: Vec<(Vec<String>, Vec<Vec<u8>>)> = Vec::with_capacity(num_reducers);
    let mut out_records_total = 0u64;
    let mut out_bytes = 0u64;
    let mut reduce_fatal: Option<MapRedError> = None;
    let mut rinfo: Vec<RSpanInfo> = Vec::with_capacity(if tracing { num_reducers } else { 0 });
    for r in reduce_results {
        reduce_speculative += r.speculative;
        reduce_spec_slot_s += r.spec_slot_s;
        wasted_s += r.wasted_s;
        reexecuted_tasks += r.reexecuted;
        out_bytes += r.out_bytes;
        out_records_total += r.out_records;
        metrics.encoded_bytes += r.encoded_bytes;
        metrics.dict_entries += r.dict_entries;
        reduce_times.push(r.time_s);
        if reduce_fatal.is_none() {
            reduce_fatal = r.fatal;
        }
        accumulate(&mut metrics.reduce_dispatches, &r.dispatches);
        if tracing {
            rinfo.push(RSpanInfo {
                wasted_s: r.wasted_s,
                reexecuted: r.reexecuted,
                fetch_frac: r.fetch_frac,
                speculative: r.speculative,
                spec_slot_s: r.spec_slot_s,
                out_records: r.out_records,
            });
        }
        outs.push((r.lines, r.frames));
    }
    let reduce_slots = if nodes_lost > 0 || blacklisted > 0 {
        cfg.surviving_reduce_slots((nodes - nodes_lost - blacklisted).max(1))
    } else {
        cfg.total_reduce_slots()
    };
    let reduce_makespan = makespan(reduce_times.iter().copied(), reduce_slots);
    // A reducer that reported an evaluation error kills the attempt as a
    // typed (non-retryable) failure after the phase's time is accounted.
    if let Some(error) = reduce_fatal {
        return Err(AttemptFailure {
            error,
            wasted_s: metrics.map_time_s + reduce_makespan,
        });
    }
    metrics.reduce_time_s = reduce_makespan;
    metrics.shuffle_bytes = total_shuffle_sim as u64;
    metrics.hdfs_write_bytes = scale_u64(out_bytes, mult);
    metrics.out_records = scale_u64(out_records_total, mult);
    metrics.encoded_bytes += seg_encoded_bytes;
    metrics.dict_entries += seg_dict_entries;
    metrics.reduce_tasks = num_reducers;
    metrics.speculative_tasks = speculative_tasks + reduce_speculative;
    metrics.speculative_slot_s += reduce_spec_slot_s;
    metrics.reexecuted_tasks = reexecuted_tasks;
    metrics.wasted_s = wasted_s;
    metrics.refetched_segments = refetched_segments;
    metrics.blacklisted_nodes = blacklisted;
    metrics.verify_s += segment_verify_s;
    metrics.checksum_collisions += seg_collisions;

    // ---- reduce-phase trace spans ----------------------------------------
    // Same re-derived schedule as the makespan; each reduce task's lane
    // shows its (possibly wasted-then-restarted) run, with the shuffle
    // fetch and checksum verification as nested sub-spans.
    if tracing {
        let (placed, _) = schedule(&reduce_times, reduce_slots);
        let rbase = cursor + metrics.map_time_s;
        for (p, info) in rinfo.iter().enumerate() {
            let tid = placed[p].0 as u32;
            let mut at = rbase + placed[p].1;
            if info.reexecuted > 0 {
                tev.push(TraceEvent::span(
                    tid,
                    "reexec",
                    format!("r{p} first run (node lost)"),
                    at,
                    info.wasted_s,
                ));
                at += info.wasted_s;
            }
            let run_dur = reduce_times[p] - info.wasted_s;
            tev.push(
                TraceEvent::span(tid, "reduce", format!("r{p}"), at, run_dur)
                    .arg("out_records", ArgValue::U64(info.out_records)),
            );
            let fetch_dur = info.fetch_frac * run_dur;
            if fetch_dur > 0.0 {
                let mut ev =
                    TraceEvent::span(tid, "fetch", format!("r{p} shuffle fetch"), at, fetch_dur);
                if part_refetches[p] > 0 {
                    ev = ev.arg("refetches", ArgValue::U64(part_refetches[p]));
                }
                tev.push(ev);
                if part_verify[p] > 0.0 {
                    tev.push(TraceEvent::span(
                        tid,
                        "verify",
                        format!("r{p} segment verify"),
                        at,
                        part_verify[p].min(fetch_dur),
                    ));
                }
            }
            if info.speculative > 0 {
                tev.push(TraceEvent::span(
                    SPEC_LANE_BASE + tid,
                    "speculative",
                    format!("r{p} backup"),
                    at,
                    info.spec_slot_s,
                ));
            }
        }
        if seg_collisions > 0 {
            tev.push(
                TraceEvent::instant(
                    0,
                    "collision",
                    "shuffle checksum collision".to_string(),
                    rbase,
                )
                .arg("collisions", ArgValue::U64(seg_collisions)),
            );
        }
    }

    check_time(&cfg, metrics.map_time_s + metrics.reduce_time_s).map_err(|error| {
        AttemptFailure {
            error,
            wasted_s: metrics.map_time_s + metrics.reduce_time_s,
        }
    })?;
    let any_lines = outs.iter().any(|(l, _)| !l.is_empty());
    let any_frames = outs.iter().any(|(_, f)| !f.is_empty());
    if any_frames && !any_lines {
        let frames: Vec<Vec<u8>> = outs.into_iter().flat_map(|(_, f)| f).collect();
        cluster.hdfs.put_frames(&spec.output, frames);
    } else {
        // Text output — or the pathological mixed case where only some
        // partitions' rows were frame-packable: render frames back to
        // their (byte-identical) text lines so the file stays one format.
        let mut all_lines: Vec<String> = Vec::new();
        for (lines, frames) in outs {
            for frame in frames {
                if let Ok(batch) = ColumnBatch::decode_frame(&frame) {
                    for i in 0..batch.num_rows() {
                        all_lines.push(encode_line(&batch.row(i)));
                    }
                }
            }
            all_lines.extend(lines);
        }
        cluster.hdfs.put(&spec.output, all_lines);
    }
    commit_job_trace(cluster, spec, attempt, &metrics, tev);
    Ok(metrics)
}

/// Per-reduce-task detail kept (only when tracing) for span emission.
struct RSpanInfo {
    wasted_s: f64,
    reexecuted: usize,
    fetch_frac: f64,
    speculative: usize,
    spec_slot_s: f64,
    out_records: u64,
}

/// Scales a real (measured) count by the simulated size multiplier,
/// rounding to nearest — truncation made per-job fields drift from chain
/// totals at non-integer multipliers.
fn scale_u64(real: u64, mult: f64) -> u64 {
    (real as f64 * mult).round() as u64
}

/// Element-wise accumulation of per-stream dispatch counts (streams a task
/// never touched stay at their implicit zero).
fn accumulate(acc: &mut Vec<u64>, d: &[u64]) {
    if acc.len() < d.len() {
        acc.resize(d.len(), 0);
    }
    for (a, &x) in acc.iter_mut().zip(d) {
        *a += x;
    }
}

/// Commits one successful job attempt's buffered spans to the cluster
/// trace, appending the CMF dispatch-count instant, under a process
/// labelled with the job (and attempt, for retried jobs).
fn commit_job_trace(
    cluster: &mut Cluster,
    spec: &JobSpec,
    attempt: usize,
    metrics: &JobMetrics,
    mut tev: Vec<TraceEvent>,
) {
    let Some(tr) = cluster.trace.as_mut() else {
        return;
    };
    let cursor = tr.cursor_s();
    if !metrics.map_dispatches.is_empty() || !metrics.reduce_dispatches.is_empty() {
        let mut ev = TraceEvent::instant(
            0,
            "dispatch",
            format!("{} stream dispatches", spec.name),
            cursor,
        );
        for (i, &d) in metrics.map_dispatches.iter().enumerate() {
            ev = ev.arg(format!("map_s{i}"), ArgValue::U64(d));
        }
        for (i, &d) in metrics.reduce_dispatches.iter().enumerate() {
            ev = ev.arg(format!("reduce_s{i}"), ArgValue::U64(d));
        }
        tev.push(ev);
    }
    if metrics.encoded_bytes > 0 {
        tev.push(
            TraceEvent::instant(
                0,
                "encoded",
                format!("{} columnar encoding", spec.name),
                cursor,
            )
            .arg("encoded_bytes", ArgValue::U64(metrics.encoded_bytes))
            .arg("dict_entries", ArgValue::U64(metrics.dict_entries)),
        );
    }
    let label = if attempt == 0 {
        spec.name.clone()
    } else {
        format!("{} (attempt {})", spec.name, attempt + 1)
    };
    tr.commit_job(label, tev);
}

/// Runs one map task: real record processing plus its simulated cost.
/// Failure and straggler randomness is seeded per `(job, attempt, task
/// index)` so results and times are identical however tasks are scheduled
/// onto threads, while retried job attempts see fresh draws.
#[allow(clippy::too_many_arguments)]
fn run_map_task(
    cfg: &ClusterConfig,
    spec: &JobSpec,
    job_hash: u64,
    attempt: usize,
    task_idx: usize,
    input_idx: usize,
    task_input: TaskInput<'_>,
    num_reducers: usize,
    map_only: bool,
    mult: f64,
    slowdown: f64,
) -> MapTaskResult {
    const SPLITMIX: u64 = 0x9E37_79B9_7F4A_7C15;
    let task_seed = |base: u64| {
        base ^ job_hash ^ attempt_mix(attempt) ^ (task_idx as u64 + 1).wrapping_mul(SPLITMIX)
    };
    let input = &spec.inputs[input_idx];
    let real_in_bytes: u64 = match task_input {
        TaskInput::Lines(lines) => lines.iter().map(|l| l.len() as u64 + 1).sum(),
        TaskInput::Frames { frames, .. } => frames.iter().map(|f| f.len() as u64).sum(),
    };

    // ---- block integrity (checksummed HDFS read) ---------------------
    // The block is read through its checksum — one whole-block XXH64 for
    // text, per-column-chunk XXH64s per frame for columnar; corrupt
    // replicas cost an extra read + verify pass each, and a block (or
    // frame) with no clean replica left kills the whole job attempt after
    // its burned time is charged.
    let mut corrupt_replicas = 0u64;
    let mut verify_s = 0.0f64;
    let mut integrity_extra_s = 0.0f64;
    let mut collisions = 0u64;
    if let Some(model) = cfg.corruption {
        let sim_bytes = real_in_bytes as f64 * mult;
        let checksum_pass_s = sim_bytes / 1e9 * CHECKSUM_CPU_S_PER_GB;
        let outcome = match task_input {
            TaskInput::Lines(lines) => crate::hdfs::read_block_verified(
                lines,
                &input.path,
                task_idx,
                cfg.replication,
                &model,
                attempt,
            )
            .map(|read| (u64::from(read.corrupt_replicas), u64::from(read.collisions))),
            TaskInput::Frames { frames, base } => {
                let mut totals = Ok((0u64, 0u64));
                for (i, frame) in frames.iter().enumerate() {
                    match crate::hdfs::read_frame_verified(
                        frame,
                        &input.path,
                        base + i,
                        cfg.replication,
                        &model,
                        attempt,
                    ) {
                        Ok(read) => {
                            if let Ok((cr, col)) = &mut totals {
                                *cr += u64::from(read.corrupt_replicas);
                                *col += u64::from(read.collisions);
                            }
                        }
                        Err(error) => {
                            totals = Err(error);
                            break;
                        }
                    }
                }
                totals
            }
        };
        match outcome {
            Ok((cr, col)) => {
                corrupt_replicas = cr;
                collisions = col;
                verify_s = checksum_pass_s * (1.0 + corrupt_replicas as f64);
                // Each failed replica was fully read and verified before
                // the failover re-read.
                integrity_extra_s =
                    corrupt_replicas as f64 * cfg.disk_seconds(sim_bytes) + verify_s;
            }
            Err(error) => {
                let passes = f64::from(cfg.replication.max(1));
                let burned = (cfg.task_startup_s
                    + passes * (cfg.disk_seconds(sim_bytes) + checksum_pass_s))
                    * slowdown;
                return MapTaskResult {
                    runs: Vec::new(),
                    speculative: 0,
                    spec_slot_s: 0.0,
                    fatal: Some(error),
                    weight: mult,
                    time_s: burned,
                    spill_bytes: 0,
                    in_records: 0,
                    out_records: 0,
                    failed_attempts: 0,
                    corrupt_replicas: u64::from(cfg.replication.max(1)),
                    verify_s: passes * checksum_pass_s,
                    skipped_records: 0,
                    collisions: 0,
                    attempt_s: burned,
                    dispatches: Vec::new(),
                };
            }
        }
    }

    let mut mapper = (input.mapper)();
    let mut out = MapOutput::default();
    // Torn-record injection: with `record_rate`, a garbled extra line —
    // the real line plus one bogus field holding a control byte — follows
    // a real one, like a partially-written append. The extra field makes
    // it undecodable under *any* schema (field count always off by one),
    // so a robust mapper skips it via `record_bad` and real records are
    // untouched: results stay oracle-identical while skips are counted.
    // Columnar frames are binary (a torn append is caught by the frame
    // checksums before any row decodes), so the same per-row draws count
    // the detected-and-skipped record directly.
    let record_rate = cfg.corruption.map_or(0.0, |m| m.record_rate);
    let mut record_rng = (record_rate > 0.0).then(|| {
        let seed = cfg.corruption.map_or(0, |m| m.seed);
        StdRng::seed_from_u64(task_seed(seed ^ 0x0BAD_5EED))
    });
    let in_bytes = real_in_bytes;
    let in_records: u64;
    match task_input {
        TaskInput::Lines(lines) => {
            // One pair per line at most — reserve once, never regrow
            // mid-task.
            out.reserve(lines.len());
            in_records = lines.len() as u64;
            for line in lines {
                mapper.map(line, &mut out);
                if let Some(rng) = record_rng.as_mut() {
                    if rng.gen::<f64>() < record_rate {
                        let garbage = format!("{line}|\u{1}");
                        mapper.map(&garbage, &mut out);
                    }
                }
            }
        }
        TaskInput::Frames { frames, .. } => {
            let mut rows_total = 0u64;
            for frame in frames {
                match ColumnBatch::decode_frame(frame) {
                    Ok(batch) => {
                        out.reserve(batch.num_rows());
                        rows_total += batch.num_rows() as u64;
                        mapper.map_batch(&batch, &mut out);
                        if let Some(rng) = record_rng.as_mut() {
                            for _ in 0..batch.num_rows() {
                                if rng.gen::<f64>() < record_rate {
                                    out.record_bad();
                                }
                            }
                        }
                    }
                    Err(e) => {
                        // A stored frame that fails decoding outside the
                        // injected-corruption path is a real integrity
                        // violation — surface it as a typed job failure.
                        out.record_fatal(format!(
                            "undecodable columnar frame in {}: {e}",
                            input.path
                        ));
                    }
                }
            }
            in_records = rows_total;
        }
    }
    let skipped_records = out.bad_records();
    let map_work = out.work();
    let mut user_fatal = out.take_fatal();
    let dispatches = out.take_dispatches();
    let (mut keys, mut values) = out.into_columns();
    let out_records = keys.len() as u64;
    // Sort the run by (partition, key, value) — Hadoop's sort-based
    // shuffle — then cut it into per-partition segments straight off the
    // sorted permutation. Each key is hashed to its partition once (not
    // once per comparison) and each pair is moved exactly once; the
    // shuffle later hands whole segments to reduce tasks without
    // re-splitting anything.
    let mut runs: Vec<(u32, PartitionRun)> = Vec::new();
    if !map_only {
        // Encode each normalized key once into one flat arena; the sort
        // (and every later merge/group comparison) then compares key
        // bytes, falling back to value `Row`s only on key ties.
        let arena = NormArena::from_keys(&keys);
        // Sort packed `(partition, key prefix, index)` entries: the two
        // integers resolve almost every comparison from a flat array —
        // equal prefixes fall back to the arena slices, and full key ties
        // to the value rows. Unstable is safe: residual ties are fully
        // equal (partition, key, value) triples, so any ordering of them
        // yields the same run.
        let mut entries: Vec<(u32, u64, u32)> = (0..keys.len())
            .map(|i| {
                (
                    partition(&keys[i], num_reducers) as u32,
                    arena.prefix8(i),
                    i as u32,
                )
            })
            .collect();
        entries.sort_unstable_by(|a, b| {
            (a.0, a.1).cmp(&(b.0, b.1)).then_with(|| {
                let (i, j) = (a.2 as usize, b.2 as usize);
                arena
                    .key(i)
                    .cmp(arena.key(j))
                    .then_with(|| values[i].cmp(&values[j]))
            })
        });
        let mut start = 0usize;
        while start < entries.len() {
            let p = entries[start].0;
            let mut end = start + 1;
            while end < entries.len() && entries[end].0 == p {
                end += 1;
            }
            let mut seg = PartitionRun {
                keys: Vec::with_capacity(end - start),
                values: Vec::with_capacity(end - start),
                norms: NormArena::with_capacity(end - start),
            };
            for &(_, _, i) in &entries[start..end] {
                let i = i as usize;
                seg.keys.push(std::mem::take(&mut keys[i]));
                seg.values.push(std::mem::take(&mut values[i]));
                seg.norms.push_encoded(arena.key(i));
            }
            runs.push((p, seg));
            start = end;
        }
    } else {
        // Map-only output is written as-is; keep it as one pseudo-segment
        // (no shuffle, so no normalized keys needed).
        runs.push((
            0,
            PartitionRun {
                keys,
                values,
                norms: NormArena::default(),
            },
        ));
    }
    let pair_bytes = |(k, v): (&Row, &Row)| -> u64 { (k.size_bytes() + v.size_bytes() + 2) as u64 };
    let seg_bytes =
        |seg: &PartitionRun| -> u64 { seg.keys.iter().zip(&seg.values).map(pair_bytes).sum() };
    let raw_out_bytes: u64 = runs.iter().map(|(_, seg)| seg_bytes(seg)).sum();
    // Combiner per key group — groups are contiguous borrowed slices of the
    // sorted value column; only the combiner's (usually single) output rows
    // are materialised, and the group key is moved, not cloned, into the
    // last of them.
    let mut combined_bytes = raw_out_bytes;
    if let (Some(cf), false) = (&spec.combiner, map_only) {
        let mut combiner = cf();
        combined_bytes = 0;
        for (_, seg) in &mut runs {
            let mut new_keys: Vec<Row> = Vec::new();
            let mut new_values: Vec<Row> = Vec::new();
            let mut new_norms = NormArena::default();
            let mut i = 0;
            while i < seg.keys.len() {
                let key_norm = seg.norms.key(i);
                let mut j = i + 1;
                while j < seg.keys.len() && seg.norms.key(j) == key_norm {
                    j += 1;
                }
                let mut combined = combiner.combine(&seg.keys[i], &seg.values[i..j]);
                // Keep the run sorted within the key group, as the shuffle
                // merge requires of its inputs: the group's outputs share
                // one key, so ordering by value orders the (key, value)
                // pairs.
                combined.sort_unstable();
                let n = combined.len();
                for (m, v) in combined.into_iter().enumerate() {
                    new_norms.push_encoded(seg.norms.key(i));
                    new_keys.push(if m + 1 == n {
                        std::mem::take(&mut seg.keys[i])
                    } else {
                        seg.keys[i].clone()
                    });
                    new_values.push(v);
                }
                i = j;
            }
            seg.keys = new_keys;
            seg.values = new_values;
            seg.norms = new_norms;
            combined_bytes += seg_bytes(seg);
        }
        if user_fatal.is_none() {
            user_fatal = combiner.take_error();
        }
    }

    // Cardinality-bounded combiner output does not scale with volume.
    let total_pairs: usize = runs.iter().map(|(_, seg)| seg.keys.len()).sum();
    let weight = if spec.combiner.is_some() && total_pairs <= 4 {
        1.0
    } else {
        mult
    };

    // ---- cost model for this task ------------------------------------
    let sim_in_bytes = in_bytes as f64 * mult;
    let sim_records = in_records as f64 * mult;
    let read_s = cfg.locality * cfg.disk_seconds(sim_in_bytes)
        + (1.0 - cfg.locality) * cfg.net_seconds(sim_in_bytes);
    let cpu_s =
        (sim_records * cfg.map_cpu_us_per_record + map_work as f64 * mult * cfg.work_cpu_us) / 1e6;
    let sim_out_records = out_records as f64 * mult;
    let sort_s = if map_only || sim_out_records < 2.0 {
        0.0
    } else {
        sim_out_records * sim_out_records.log2().max(1.0) * SORT_CPU_US_PER_CMP / 1e6
    };
    let sim_combined_bytes = combined_bytes as f64 * weight;
    let (spill_sim_bytes, compress_s) = match (cfg.compression, map_only) {
        (Some(c), false) => (
            sim_combined_bytes * c.ratio,
            sim_combined_bytes / 1e9 * c.cpu_s_per_gb,
        ),
        _ => (sim_combined_bytes, 0.0),
    };
    let spill_s = if map_only {
        0.0
    } else {
        cfg.disk_seconds(spill_sim_bytes)
    };
    let mut base_time =
        (cfg.task_startup_s + read_s + integrity_extra_s + cpu_s + sort_s + compress_s + spill_s)
            * slowdown;

    // Straggler model: a sampled straggler runs `slowdown`× slower; with
    // speculative execution a backup task caps it near normal time, and the
    // backup's duplicated run is charged as cluster slot-seconds.
    let mut speculative = 0usize;
    let mut spec_slot_s = 0.0f64;
    if let Some(model) = cfg.stragglers {
        let mut rng = StdRng::seed_from_u64(task_seed(model.seed));
        if rng.gen::<f64>() < model.probability {
            let slowed = base_time * model.slowdown.max(1.0);
            base_time = if model.speculative {
                speculative = 1;
                let capped = slowed.min(base_time * 1.2);
                spec_slot_s = capped;
                capped
            } else {
                slowed
            };
        }
    }

    // Failure injection: failed attempts waste half their run then retry;
    // a task out of retries poisons the whole job attempt (`fatal`).
    let attempt_s = base_time;
    let mut failed_attempts = 0;
    let mut fatal = None;
    let mut time_s = base_time;
    if let Some(model) = cfg.failures {
        let mut rng = StdRng::seed_from_u64(task_seed(model.seed));
        while failed_attempts + 1 < MAX_ATTEMPTS && rng.gen::<f64>() < model.probability {
            failed_attempts += 1;
            time_s += base_time * 0.5;
        }
        if failed_attempts + 1 >= MAX_ATTEMPTS && rng.gen::<f64>() < model.probability {
            time_s += base_time * 0.5;
            fatal = Some(MapRedError::TooManyFailures {
                task: format!("{}-m-{task_idx}", spec.name),
            });
        }
    }

    MapTaskResult {
        runs,
        speculative,
        spec_slot_s,
        // A user evaluation error (reported through the output buffer or
        // the combiner) outranks injected-fault deaths: it is permanent.
        fatal: user_fatal.map(MapRedError::User).or(fatal),
        weight,
        time_s,
        spill_bytes: spill_sim_bytes as u64,
        in_records,
        out_records,
        failed_attempts,
        corrupt_replicas,
        verify_s,
        skipped_records,
        collisions,
        attempt_s,
        dispatches,
    }
}

/// One partition's contiguous segment of one map task's sorted run —
/// parallel key/value columns, sorted by `(key, value)`. `norms` carries
/// each key's [`crate::norm`] encoding so the shuffle merge and reducer
/// grouping compare key bytes, touching value `Row`s only on key ties.
struct PartitionRun {
    keys: Vec<Row>,
    values: Vec<Row>,
    norms: NormArena,
}

/// Encodes rows into columnar frames of [`DEFAULT_FRAME_ROWS`] rows each,
/// returning `(frames, total bytes, dictionary entries)`. `None` when any
/// chunk is rejected by the frame codec (non-uniform widths, non-finite
/// floats) — callers fall back to the text encoding.
fn encode_rows_to_frames(rows: &[Row]) -> Option<(Vec<Vec<u8>>, u64, u64)> {
    let mut frames = Vec::with_capacity(rows.len().div_ceil(DEFAULT_FRAME_ROWS.max(1)));
    let mut bytes = 0u64;
    let mut dicts = 0u64;
    for chunk in rows.chunks(DEFAULT_FRAME_ROWS.max(1)) {
        let batch = ColumnBatch::from_rows(chunk).ok()?;
        dicts += batch.dict_entries();
        let frame = batch.encode_frame();
        bytes += frame.len() as u64;
        frames.push(frame);
    }
    Some((frames, bytes, dicts))
}

/// Columnar wire form of one shuffle segment: a single encoded frame of
/// `key ⧺ value` rows, plus its dictionary-entry count. `None` for empty
/// segments or when pair widths are non-uniform across the segment (the
/// mixed-width values of some merged mappers) — the caller falls back to
/// the text framing of [`segment_canon_bytes`].
fn segment_frame(seg: &PartitionRun) -> Option<(Vec<u8>, u64)> {
    if seg.keys.is_empty() {
        return None;
    }
    let rows: Vec<Row> = seg
        .keys
        .iter()
        .zip(&seg.values)
        .map(|(k, v)| {
            let mut vals = Vec::with_capacity(k.values().len() + v.values().len());
            vals.extend(k.values().iter().cloned());
            vals.extend(v.values().iter().cloned());
            Row::new(vals)
        })
        .collect();
    let batch = ColumnBatch::from_rows(&rows).ok()?;
    Some((batch.encode_frame(), batch.dict_entries()))
}

/// Exact encoded size and dictionary-entry count of [`segment_frame`]'s
/// frame, computed without materializing rows, columns or bytes — the
/// shuffle's byte accounting needs only the numbers unless a corruption
/// model wants real wire bytes to flip. Agrees with `segment_frame`
/// byte-for-byte (asserted by `segment_frame_stats_match_real_encoding`),
/// including its `None` fallbacks (empty or width-mixed segments,
/// non-finite floats).
fn segment_frame_stats(seg: &PartitionRun) -> Option<(u64, u64)> {
    let nrows = seg.keys.len();
    if nrows == 0 {
        return None;
    }
    let width = seg.keys[0].len() + seg.values[0].len();
    for (k, v) in seg.keys.iter().zip(&seg.values) {
        if k.len() + v.len() != width {
            return None;
        }
    }
    // Column chunk sizes under `ColumnBatch`'s type inference: a column
    // is typed when every non-null value shares one type (all-null ⇒
    // Int), otherwise Var. Rows almost always share one key width, which
    // pins each column to the key side or the value side — resolved once
    // per column instead of branching per cell on the hot path.
    let kw = seg.keys[0].len();
    let uniform_split = seg.keys.iter().all(|k| k.len() == kw);
    let mut chunks = 0u64;
    let mut dicts = 0u64;
    for c in 0..width {
        let (bytes, d) = if uniform_split {
            let (src, cc) = if c < kw {
                (&seg.keys, c)
            } else {
                (&seg.values, c - kw)
            };
            column_chunk_stats(nrows, |r| &src[r].values()[cc])?
        } else {
            column_chunk_stats(nrows, |r| {
                let k = &seg.keys[r];
                if c < k.len() {
                    &k.values()[c]
                } else {
                    &seg.values[r].values()[c - k.len()]
                }
            })?
        };
        chunks += bytes;
        dicts += d;
    }
    let header = 4 + 2 + 4 + width as u64 * 13 + 8;
    Some((header + chunks, dicts))
}

/// Encoded chunk bytes and dictionary-entry count of one column under
/// `ColumnBatch`'s inference, reading cells through `cell`. `None` when a
/// non-finite float forces the frame codec's fallback.
fn column_chunk_stats<'a>(nrows: usize, cell: impl Fn(usize) -> &'a Value) -> Option<(u64, u64)> {
    #[derive(PartialEq, Clone, Copy)]
    enum Ty {
        None,
        Int,
        Float,
        Bool,
        Str,
        Mixed,
    }
    let mut ty = Ty::None;
    for r in 0..nrows {
        let vt = match cell(r) {
            Value::Null => continue,
            Value::Int(_) => Ty::Int,
            Value::Float(f) => {
                if !f.is_finite() {
                    return None;
                }
                Ty::Float
            }
            Value::Bool(_) => Ty::Bool,
            Value::Str(_) => Ty::Str,
        };
        ty = match ty {
            Ty::None => vt,
            t if t == vt => t,
            _ => Ty::Mixed,
        };
    }
    let mut dicts = 0u64;
    let bytes = match ty {
        Ty::None | Ty::Int | Ty::Float => nrows as u64 * 9,
        Ty::Bool => nrows as u64 * 2,
        Ty::Str => {
            let mut dict: std::collections::HashSet<&str, ysmart_rel::colbatch::FnvBuildHasher> =
                std::collections::HashSet::default();
            let mut dict_bytes = 0u64;
            for r in 0..nrows {
                if let Value::Str(v) = cell(r) {
                    if dict.insert(v.as_str()) {
                        dict_bytes += 4 + v.len() as u64;
                    }
                }
            }
            dicts = dict.len() as u64;
            nrows as u64 * 5 + 4 + dict_bytes
        }
        Ty::Mixed => (0..nrows)
            .map(|r| match cell(r) {
                Value::Null => 1,
                Value::Bool(_) => 2,
                Value::Int(_) | Value::Float(_) => 9,
                Value::Str(v) => 5 + v.len() as u64,
            })
            .sum(),
    };
    Some((bytes, dicts))
}

/// Packs a reduce task's emissions into columnar frames, with the stream
/// tag of tagged rows folded in as a leading `Int` column (the text
/// rendering's `tag|` prefix, typed). `None` when any emission is a
/// pre-rendered line or a chunk is rejected by the frame codec.
fn pack_emits(emits: &[ReduceEmit]) -> Option<(Vec<Vec<u8>>, u64, u64)> {
    let mut rows = Vec::with_capacity(emits.len());
    for e in emits {
        match e {
            ReduceEmit::Line(_) => return None,
            ReduceEmit::Row { tag: None, row } => rows.push(row.clone()),
            ReduceEmit::Row { tag: Some(t), row } => {
                let mut vals = Vec::with_capacity(row.values().len() + 1);
                vals.push(Value::Int(*t));
                vals.extend(row.values().iter().cloned());
                rows.push(Row::new(vals));
            }
        }
    }
    encode_rows_to_frames(&rows)
}

/// Canonical wire encoding of a shuffle segment — the byte stream its
/// checksum covers. Key and value share a line, tab-separated, matching how
/// Hadoop's IFile frames a pair per record.
fn segment_canon_bytes(seg: &PartitionRun) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in seg.keys.iter().zip(&seg.values) {
        out.extend_from_slice(encode_line(k).as_bytes());
        out.push(b'\t');
        out.extend_from_slice(encode_line(v).as_bytes());
        out.push(b'\n');
    }
    out
}

/// Read-only context shared by every reduce task of one job attempt.
struct ReduceCtx<'a> {
    cfg: &'a ClusterConfig,
    job_hash: u64,
    mult: f64,
    slowdown: f64,
    compress_ratio: f64,
    decompress_cpu: f64,
    nodes_lost: usize,
    lost_map_frac: f64,
    nodes: usize,
    dead: &'a [bool],
    shuffle_sim_bytes: &'a [f64],
    shuffle_sim_records: &'a [f64],
    /// Per-partition extra fetch-phase seconds from data integrity:
    /// checksum verification of arriving segments, corrupt-fetch retries
    /// with backoff, and re-executed mappers whose output stayed corrupt.
    refetch_extra_s: &'a [f64],
    /// Whether the job writes its output as columnar frames.
    columnar: bool,
}

/// Internal per-reduce-task result. Output is either text `lines` or
/// columnar `frames`, never both in one task.
struct ReduceTaskResult {
    time_s: f64,
    lines: Vec<String>,
    frames: Vec<Vec<u8>>,
    out_records: u64,
    /// Actual encoded frame bytes this task produced (0 in text mode).
    encoded_bytes: u64,
    /// Dictionary entries across this task's frames (0 in text mode).
    dict_entries: u64,
    out_bytes: u64,
    speculative: usize,
    spec_slot_s: f64,
    /// Simulated seconds wasted because this reducer's node died.
    wasted_s: f64,
    /// 1 when this reducer re-executed after a node death.
    reexecuted: usize,
    /// Evaluation error reported by the reducer (kills the job attempt
    /// with a typed error instead of a panic).
    fatal: Option<MapRedError>,
    /// Per-stream dispatch counts reported by the reducer (CMF fan-out).
    dispatches: Vec<u64>,
    /// Fraction of this task's run spent fetching shuffle segments — used
    /// by the trace to draw the fetch sub-span.
    fetch_frac: f64,
}

/// K-way merge of per-task sorted runs into one sorted pair of key/value
/// columns. Equal `(key, value)` pairs are taken from the lowest run (task)
/// index first — exactly the order the previous global stable sort
/// produced — so key groups reach the reducer in an order independent of
/// how the merge is scheduled.
fn merge_runs(runs: Vec<PartitionRun>) -> MergedRun {
    let mut runs: Vec<PartitionRun> = runs.into_iter().filter(|r| !r.keys.is_empty()).collect();
    let total: usize = runs.iter().map(|r| r.keys.len()).sum();
    let mut out = MergedRun {
        keys: Vec::with_capacity(total),
        values: Vec::with_capacity(total),
        group_starts: Vec::new(),
    };
    if runs.len() == 1 {
        let r = runs.pop().expect("one run");
        for i in 0..r.norms.len() {
            if i == 0 || r.norms.key(i) != r.norms.key(i - 1) {
                out.group_starts.push(i as u32);
            }
        }
        out.keys = r.keys;
        out.values = r.values;
        return out;
    }
    if runs.is_empty() {
        return out;
    }
    // Tournament merge over a min-heap of run heads: O(log k) comparisons
    // per pop, each a key *byte* compare falling back to the value `Row`
    // only on key ties — the run index breaks full ties toward the
    // earliest task. Heads borrow key encodings from the runs' arenas and
    // value rows from the runs themselves, so the merge first computes the
    // order (and the group boundaries), then moves every pair exactly once.
    struct Head<'a> {
        /// First eight key bytes as an integer — resolves most
        /// comparisons without touching the slices.
        prefix: u64,
        key: &'a [u8],
        value: &'a Row,
        run: u32,
    }
    impl PartialEq for Head<'_> {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == std::cmp::Ordering::Equal
        }
    }
    impl Eq for Head<'_> {}
    impl PartialOrd for Head<'_> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head<'_> {
        // Reversed: `BinaryHeap` is a max-heap, the smallest head must
        // pop first.
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .prefix
                .cmp(&self.prefix)
                .then_with(|| other.key.cmp(self.key))
                .then_with(|| other.value.cmp(self.value))
                .then_with(|| other.run.cmp(&self.run))
        }
    }
    let mut order: Vec<(u32, u32)> = Vec::with_capacity(total);
    {
        let mut pos = vec![0usize; runs.len()];
        let mut heap = BinaryHeap::with_capacity(runs.len());
        for (i, r) in runs.iter().enumerate() {
            heap.push(Head {
                prefix: r.norms.prefix8(0),
                key: r.norms.key(0),
                value: &r.values[0],
                run: i as u32,
            });
            pos[i] = 1;
        }
        let mut prev_key: Option<&[u8]> = None;
        while let Some(Head { key, run, .. }) = heap.pop() {
            let r = run as usize;
            if prev_key != Some(key) {
                out.group_starts.push(order.len() as u32);
                prev_key = Some(key);
            }
            order.push((run, (pos[r] - 1) as u32));
            let p = pos[r];
            if p < runs[r].keys.len() {
                pos[r] = p + 1;
                heap.push(Head {
                    prefix: runs[r].norms.prefix8(p),
                    key: runs[r].norms.key(p),
                    value: &runs[r].values[p],
                    run,
                });
            }
        }
    }
    for (run, i) in order {
        let (run, i) = (run as usize, i as usize);
        out.keys.push(std::mem::take(&mut runs[run].keys[i]));
        out.values.push(std::mem::take(&mut runs[run].values[i]));
    }
    out
}

/// The merged, fully sorted pair columns of one reduce task. Key groups
/// are pre-delimited: group `g` spans
/// `group_starts[g]..group_starts[g + 1]` (the last runs to the end).
#[derive(Default)]
struct MergedRun {
    keys: Vec<Row>,
    values: Vec<Row>,
    group_starts: Vec<u32>,
}

/// Runs one reduce task: merges its shuffle segments, streams each key
/// group through a fresh reducer as a borrowed slice of the merged value
/// column, and charges the task's simulated cost. Straggler and node-loss
/// randomness is seeded per partition index, so times are identical
/// however tasks are scheduled onto threads.
fn run_reduce_task(
    ctx: &ReduceCtx<'_>,
    reducer_factory: &crate::job::ReducerFactory,
    p: usize,
    runs: Vec<PartitionRun>,
) -> ReduceTaskResult {
    let cfg = ctx.cfg;
    let merged = merge_runs(runs);
    let MergedRun {
        keys,
        values,
        group_starts,
    } = merged;
    let mut reducer = reducer_factory();
    let mut out = ReduceOutput::default();
    let real_records = keys.len() as f64;
    for (g, &start) in group_starts.iter().enumerate() {
        let i = start as usize;
        let j = group_starts
            .get(g + 1)
            .map_or(keys.len(), |&next| next as usize);
        reducer.reduce(&keys[i], &values[i..j], &mut out);
    }
    let reduce_work = out.work();
    let fatal = out.take_fatal().map(MapRedError::User);
    let dispatches = out.take_dispatches();
    let emits = out.into_emits();
    let out_records = emits.len() as u64;
    // Columnar mode packs row emissions into binary frames; emissions the
    // frame codec can't take (pre-rendered lines, non-uniform widths) fall
    // back to text rendering, byte-identical to a self-formatting reducer.
    let (lines, frames, out_bytes, encoded_bytes, dict_entries) =
        match ctx.columnar.then(|| pack_emits(&emits)).flatten() {
            Some((frames, bytes, dicts)) => (Vec::new(), frames, bytes, bytes, dicts),
            None => {
                let lines: Vec<String> = emits.iter().map(ReduceEmit::to_line).collect();
                let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
                (lines, Vec::new(), bytes, 0, 0)
            }
        };

    let sim_in = ctx.shuffle_sim_bytes[p] * ctx.compress_ratio;
    let sim_raw_in = ctx.shuffle_sim_bytes[p];
    let sim_records = ctx.shuffle_sim_records[p];
    // Reduce-side work units scale with the same per-pair weights.
    let work_scale = if real_records > 0.0 {
        sim_records / real_records
    } else {
        0.0
    };
    let fetch_s = cfg.net_seconds(sim_in) * (1.0 - cfg.shuffle_overlap) + ctx.refetch_extra_s[p];
    let merge_s = cfg.disk_seconds(sim_in) + sim_raw_in / 1e9 * ctx.decompress_cpu;
    let cpu_s = (sim_records * cfg.reduce_cpu_us_per_record
        + reduce_work as f64 * work_scale * cfg.work_cpu_us)
        / 1e6;
    let sim_out = out_bytes as f64 * ctx.mult;
    let write_s = cfg.net_seconds(sim_out * f64::from(cfg.replication));
    let phases_s = cfg.task_startup_s + fetch_s + merge_s + cpu_s + write_s;
    // Share of the run spent fetching — slowdown/straggler factors stretch
    // every phase alike, so the fraction survives them (trace sub-span).
    let fetch_frac = if phases_s > 0.0 {
        fetch_s / phases_s
    } else {
        0.0
    };
    let mut time_s = phases_s * ctx.slowdown;
    let mut speculative = 0usize;
    let mut spec_slot_s = 0.0f64;
    if let Some(model) = cfg.stragglers {
        const SPLITMIX: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rng = StdRng::seed_from_u64(
            model.seed ^ ctx.job_hash ^ (p as u64 + 0x5151).wrapping_mul(SPLITMIX),
        );
        if rng.gen::<f64>() < model.probability {
            let slowed = time_s * model.slowdown.max(1.0);
            time_s = if model.speculative {
                speculative = 1;
                let capped = slowed.min(time_s * 1.2);
                spec_slot_s = capped;
                capped
            } else {
                slowed
            };
        }
    }
    let mut wasted_s = 0.0f64;
    let mut reexecuted = 0usize;
    if ctx.nodes_lost > 0 {
        // Re-executed mappers' share of this partition is fetched again,
        // after the map phase — no overlap discount.
        time_s += cfg.net_seconds(sim_in * ctx.lost_map_frac);
        if ctx.dead[p % ctx.nodes] {
            // The reducer itself sat on a dead node: its first run is
            // wasted and it restarts on a survivor.
            wasted_s = time_s;
            reexecuted = 1;
            time_s *= 2.0;
        }
    }
    ReduceTaskResult {
        time_s,
        lines,
        frames,
        out_records,
        encoded_bytes,
        dict_entries,
        out_bytes,
        speculative,
        spec_slot_s,
        wasted_s,
        reexecuted,
        fatal,
        dispatches,
        fetch_frac,
    }
}

/// Real OS threads used for task execution: the
/// [`ClusterConfig::exec_threads`] override, or every available core.
fn exec_threads(cfg: &ClusterConfig) -> usize {
    // `available_parallelism` reads /sys on Linux — cache it, this runs
    // twice per job.
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    cfg.exec_threads
        .unwrap_or_else(|| {
            *CORES.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
        })
        .max(1)
}

/// Whether input `idx` has produced no task yet (empty files still get one
/// task so their output path exists).
fn file_is_empty_input(tasks: &[(usize, TaskInput<'_>)], idx: usize) -> bool {
    !tasks.iter().any(|(i, _)| *i == idx)
}

/// List-scheduling makespan of task durations over `slots` parallel slots.
/// `total_cmp` keeps the selection total even for NaN inputs (which the
/// cost model never produces) — no panic path.
fn makespan(tasks: impl Iterator<Item = f64>, slots: usize) -> f64 {
    let slots = slots.max(1);
    let mut finish = vec![0.0f64; slots];
    for t in tasks {
        // assign to the earliest-free slot
        let idx = finish
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        finish[idx] += t;
    }
    finish.into_iter().fold(0.0, f64::max)
}

/// The same list schedule as [`makespan`], additionally returning each
/// task's `(slot, start)` placement — the trace's lane layout. The float
/// operations are identical (`finish[idx] += t` in task order, earliest
/// slot by `total_cmp`), so the returned makespan — and therefore every
/// span extent derived from the placements — is bit-equal to what
/// [`makespan`] charged the metrics.
fn schedule(tasks: &[f64], slots: usize) -> (Vec<(usize, f64)>, f64) {
    let slots = slots.max(1);
    let mut finish = vec![0.0f64; slots];
    let mut placed = Vec::with_capacity(tasks.len());
    for &t in tasks {
        let idx = finish
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        placed.push((idx, finish[idx]));
        finish[idx] += t;
    }
    (placed, finish.into_iter().fold(0.0, f64::max))
}

/// Intermediate data is modelled as spread evenly over the cluster, so the
/// check (and the error it reports) is in per-node load, not a per-node
/// breakdown the model doesn't have.
fn check_disk(cfg: &ClusterConfig, total_bytes: u64) -> Result<(), MapRedError> {
    let nodes = cfg.nodes.max(1);
    let per_node = total_bytes as f64 / nodes as f64;
    let capacity = cfg.disk_capacity_mb * 1e6;
    if per_node > capacity {
        return Err(MapRedError::DiskFull {
            nodes,
            per_node_bytes: per_node as u64,
            capacity_bytes: capacity as u64,
        });
    }
    Ok(())
}

fn check_time(cfg: &ClusterConfig, elapsed: f64) -> Result<(), MapRedError> {
    if let Some(limit) = cfg.time_limit_s {
        if elapsed > limit {
            return Err(MapRedError::TimeLimitExceeded { limit_s: limit });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Combiner, JobSpec, Mapper, Reducer};
    use ysmart_rel::{row, Value};

    /// `segment_frame_stats` must agree with the real encoder on every
    /// segment shape it claims to size: typed columns, dictionaries with
    /// repeats, nulls, Var fallbacks — and must return `None` exactly when
    /// the encoder falls back to text.
    #[test]
    fn segment_frame_stats_match_real_encoding() {
        let seg = |pairs: Vec<(Row, Row)>| {
            let (keys, values): (Vec<Row>, Vec<Row>) = pairs.into_iter().unzip();
            let norms = NormArena::from_keys(&keys);
            PartitionRun {
                keys,
                values,
                norms,
            }
        };
        let cases = [
            seg(vec![(row![1i64], row![2i64, "apple"])]),
            seg(vec![
                (row![1i64, "k"], row![1.5f64, true, "apple"]),
                (row![2i64, "k"], row![2.5f64, false, "apple"]),
                (row![3i64, "m"], row![-0.5f64, true, "banana"]),
            ]),
            // Nulls in every column, all-null column, empty strings.
            seg(vec![
                (
                    Row::new(vec![Value::Null, Value::Null]),
                    Row::new(vec![Value::Null, Value::Str(String::new())]),
                ),
                (
                    Row::new(vec![Value::Int(4), Value::Null]),
                    Row::new(vec![Value::Null, Value::Str("x".into())]),
                ),
            ]),
            // Mixed-type column -> Var chunk.
            seg(vec![
                (row![1i64], row![Value::Int(1)]),
                (row![2i64], row![Value::Str("s".into())]),
                (row![3i64], row![Value::Bool(true)]),
                (row![4i64], row![Value::Float(0.25)]),
                (row![5i64], row![Value::Null]),
            ]),
            // Uniform total width with shifted key/value split.
            seg(vec![
                (row![1i64], row!["a", 2i64]),
                (row![2i64, "b"], row![3i64]),
            ]),
        ];
        for (i, seg) in cases.iter().enumerate() {
            let real = segment_frame(seg);
            let stats = segment_frame_stats(seg);
            match (real, stats) {
                (Some((frame, dicts)), Some((len, sdicts))) => {
                    assert_eq!(frame.len() as u64, len, "case {i}: size");
                    assert_eq!(dicts, sdicts, "case {i}: dict entries");
                }
                (None, None) => {}
                (r, s) => panic!("case {i}: encoder {:?} vs stats {s:?}", r.map(|_| ())),
            }
        }
        // Fallback cases: empty and width-mixed segments size as None on
        // both paths.
        let empty = seg(vec![]);
        assert!(segment_frame(&empty).is_none() && segment_frame_stats(&empty).is_none());
        let mixed = seg(vec![
            (row![1i64], row![2i64]),
            (row![1i64], row![2i64, 3i64]),
        ]);
        assert!(segment_frame(&mixed).is_none() && segment_frame_stats(&mixed).is_none());
    }

    /// Word-count-style mapper: `<key>|<n>` lines.
    struct KvMapper;
    impl Mapper for KvMapper {
        fn map(&mut self, line: &str, out: &mut MapOutput) {
            let (k, v) = line.split_once('|').unwrap();
            out.emit(
                row![k.parse::<i64>().unwrap()],
                row![v.parse::<i64>().unwrap()],
            );
        }
    }

    struct SumReducer;
    impl Reducer for SumReducer {
        fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput) {
            let s: i64 = values
                .iter()
                .map(|v| v.get(0).unwrap().as_int().unwrap())
                .sum();
            out.emit_line(format!("{}|{}", key.get(0).unwrap(), s));
        }
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        fn combine(&mut self, _key: &Row, values: &[Row]) -> Vec<Row> {
            let s: i64 = values
                .iter()
                .map(|v| v.get(0).unwrap().as_int().unwrap())
                .sum();
            vec![row![s]]
        }
    }

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    fn sum_job(reducers: usize, combiner: bool) -> JobSpec {
        let mut b = JobSpec::builder("sum")
            .input("data/t", || Box::new(KvMapper))
            .reducer(|| Box::new(SumReducer))
            .output("out/sum")
            .reduce_tasks(reducers);
        if combiner {
            b = b.combiner(|| Box::new(SumCombiner));
        }
        b.build()
    }

    fn load_pairs(c: &mut Cluster) {
        let lines: Vec<String> = (0..1000).map(|i| format!("{}|1", i % 10)).collect();
        c.load_table("t", lines);
    }

    fn sorted_output(c: &Cluster, path: &str) -> Vec<String> {
        let mut lines = c.hdfs.get(path).unwrap().lines.clone();
        lines.sort();
        lines
    }

    #[test]
    fn sum_job_correct_across_reducer_counts() {
        for reducers in [1, 3, 8] {
            let mut c = cluster();
            load_pairs(&mut c);
            let m = run_job(&mut c, &sum_job(reducers, false)).unwrap();
            let lines = sorted_output(&c, "out/sum");
            assert_eq!(lines.len(), 10);
            for l in &lines {
                assert!(l.ends_with("|100"), "line {l}");
            }
            assert_eq!(m.reduce_tasks, reducers);
            assert_eq!(m.map_in_records, 1000);
        }
    }

    #[test]
    fn combiner_preserves_result_and_cuts_shuffle() {
        let (mut c1, mut c2) = (cluster(), cluster());
        load_pairs(&mut c1);
        load_pairs(&mut c2);
        let plain = run_job(&mut c1, &sum_job(2, false)).unwrap();
        let combined = run_job(&mut c2, &sum_job(2, true)).unwrap();
        assert_eq!(sorted_output(&c1, "out/sum"), sorted_output(&c2, "out/sum"));
        assert!(
            combined.shuffle_bytes < plain.shuffle_bytes / 10,
            "combiner should collapse 1000 pairs into ≤ tasks×keys: {} vs {}",
            combined.shuffle_bytes,
            plain.shuffle_bytes
        );
        assert!(combined.reduce_time_s < plain.reduce_time_s);
    }

    #[test]
    fn map_only_job_writes_values() {
        struct PassMapper;
        impl Mapper for PassMapper {
            fn map(&mut self, line: &str, out: &mut MapOutput) {
                let (k, v) = line.split_once('|').unwrap();
                if v == "1" {
                    out.emit(row![0i64], row![k.parse::<i64>().unwrap()]);
                }
            }
        }
        let mut c = cluster();
        c.load_table("t", vec!["5|1".into(), "6|0".into(), "7|1".into()]);
        let spec = JobSpec::builder("sel")
            .input("data/t", || Box::new(PassMapper))
            .output("out/sel")
            .build();
        let m = run_job(&mut c, &spec).unwrap();
        assert_eq!(c.hdfs.get("out/sel").unwrap().lines, vec!["5", "7"]);
        assert_eq!(m.reduce_tasks, 0);
        assert!(m.reduce_time_s == 0.0);
    }

    #[test]
    fn missing_input_errors() {
        let mut c = cluster();
        let e = run_job(&mut c, &sum_job(1, false)).unwrap_err();
        assert!(matches!(e, MapRedError::NoSuchFile(_)));
    }

    #[test]
    fn size_multiplier_scales_simulated_time_not_results() {
        let (mut c1, mut c2) = (cluster(), cluster());
        c2.config.size_multiplier = 1000.0;
        load_pairs(&mut c1);
        load_pairs(&mut c2);
        let small = run_job(&mut c1, &sum_job(2, false)).unwrap();
        let big = run_job(&mut c2, &sum_job(2, false)).unwrap();
        assert_eq!(sorted_output(&c1, "out/sum"), sorted_output(&c2, "out/sum"));
        assert!(big.total_s() > small.total_s());
        assert_eq!(big.hdfs_read_bytes, small.hdfs_read_bytes * 1000);
    }

    #[test]
    fn disk_full_stops_job() {
        let mut c = cluster();
        c.config.disk_capacity_mb = 0.000001; // 1 byte per node
        load_pairs(&mut c);
        let e = run_job(&mut c, &sum_job(2, false)).unwrap_err();
        assert!(matches!(e, MapRedError::DiskFull { .. }));
    }

    #[test]
    fn time_limit_enforced() {
        let mut c = cluster();
        c.config.time_limit_s = Some(0.001);
        load_pairs(&mut c);
        let e = run_job(&mut c, &sum_job(2, false)).unwrap_err();
        assert!(matches!(e, MapRedError::TimeLimitExceeded { .. }));
    }

    #[test]
    fn failures_add_time_but_not_change_results() {
        let (mut c1, mut c2) = (cluster(), cluster());
        c2.config.failures = Some(crate::config::FailureModel {
            probability: 0.5,
            seed: 42,
        });
        load_pairs(&mut c1);
        load_pairs(&mut c2);
        let clean = run_job(&mut c1, &sum_job(2, false)).unwrap();
        let flaky = run_job(&mut c2, &sum_job(2, false)).unwrap();
        assert_eq!(sorted_output(&c1, "out/sum"), sorted_output(&c2, "out/sum"));
        assert!(flaky.failed_attempts > 0);
        assert!(flaky.map_time_s > clean.map_time_s);
    }

    #[test]
    fn compression_shrinks_shuffle_but_costs_cpu() {
        let (mut c1, mut c2) = (cluster(), cluster());
        c2.config.compression = Some(crate::config::Compression::default());
        // Make network nearly free so compression cannot win (the paper's
        // isolated-cluster finding).
        for c in [&mut c1, &mut c2] {
            c.config.net_mbps = 1e6;
            c.config.size_multiplier = 1e5;
        }
        load_pairs(&mut c1);
        load_pairs(&mut c2);
        let plain = run_job(&mut c1, &sum_job(2, false)).unwrap();
        let compressed = run_job(&mut c2, &sum_job(2, false)).unwrap();
        assert!(compressed.shuffle_bytes < plain.shuffle_bytes);
        assert!(
            compressed.total_s() > plain.total_s(),
            "compression CPU should dominate when network is free"
        );
        assert_eq!(sorted_output(&c1, "out/sum"), sorted_output(&c2, "out/sum"));
    }

    #[test]
    fn makespan_schedules_waves() {
        // 8 unit tasks on 4 slots = 2 waves.
        let t = makespan((0..8).map(|_| 1.0), 4);
        assert!((t - 2.0).abs() < 1e-9);
        // uneven tasks
        let t = makespan([3.0, 1.0, 1.0, 1.0].into_iter(), 2);
        assert!((t - 3.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut c = cluster();
            load_pairs(&mut c);
            let m = run_job(&mut c, &sum_job(3, true)).unwrap();
            (c.hdfs.get("out/sum").unwrap().lines.clone(), m.total_s())
        };
        let (l1, t1) = run();
        let (l2, t2) = run();
        assert_eq!(l1, l2);
        assert!((t1 - t2).abs() < 1e-12);
    }

    /// [`KvMapper`] that skips undecodable lines instead of panicking —
    /// what injected torn records require of a robust mapper.
    struct TolerantKvMapper;
    impl Mapper for TolerantKvMapper {
        fn map(&mut self, line: &str, out: &mut MapOutput) {
            let parsed = line
                .split_once('|')
                .and_then(|(k, v)| Some((k.parse::<i64>().ok()?, v.parse::<i64>().ok()?)));
            match parsed {
                Some((k, v)) => out.emit(row![k], row![v]),
                None => out.record_bad(),
            }
        }
    }

    fn tolerant_sum_job(reducers: usize) -> JobSpec {
        JobSpec::builder("sum")
            .input("data/t", || Box::new(TolerantKvMapper))
            .reducer(|| Box::new(SumReducer))
            .output("out/sum")
            .reduce_tasks(reducers)
            .build()
    }

    #[test]
    fn corruption_at_rate_zero_only_charges_verification() {
        let (mut clean, mut checked) = (cluster(), cluster());
        checked.config.corruption = Some(crate::config::CorruptionModel::uniform(0.0, 1));
        load_pairs(&mut clean);
        load_pairs(&mut checked);
        let a = run_job(&mut clean, &sum_job(2, false)).unwrap();
        let b = run_job(&mut checked, &sum_job(2, false)).unwrap();
        assert_eq!(
            sorted_output(&clean, "out/sum"),
            sorted_output(&checked, "out/sum")
        );
        assert_eq!(
            b.corrupt_blocks_detected + b.refetched_segments + b.skipped_records,
            0
        );
        assert!(b.verify_s > 0.0, "checksum passes are charged");
        assert!(a.verify_s == 0.0, "no model, no verification cost");
    }

    #[test]
    fn block_corruption_fails_over_without_changing_results() {
        // Small blocks → many blocks → a 30% per-replica rate reliably
        // corrupts some replica somewhere while 3 replicas keep every
        // block recoverable for at least one seed in the sweep.
        let mut detected_somewhere = false;
        for seed in 0..20u64 {
            let (mut clean, mut corrupt) = (cluster(), cluster());
            for c in [&mut clean, &mut corrupt] {
                c.config.hdfs_block_mb = 0.0001; // ~100-byte blocks
            }
            corrupt.config.corruption = Some(crate::config::CorruptionModel {
                block_rate: 0.3,
                segment_rate: 0.0,
                record_rate: 0.0,
                seed,
            });
            load_pairs(&mut clean);
            load_pairs(&mut corrupt);
            let a = run_job(&mut clean, &sum_job(2, false)).unwrap();
            let b = match run_job(&mut corrupt, &sum_job(2, false)) {
                Ok(m) => m,
                // All replicas of some block corrupt — legitimate at this
                // rate; the chain layer retries it. Try another seed.
                Err(MapRedError::CorruptBlock { .. }) => continue,
                Err(e) => panic!("unexpected error: {e}"),
            };
            assert_eq!(
                sorted_output(&clean, "out/sum"),
                sorted_output(&corrupt, "out/sum")
            );
            if b.corrupt_blocks_detected > 0 {
                detected_somewhere = true;
                assert!(b.map_time_s > a.map_time_s, "failover re-reads cost time");
                break;
            }
        }
        assert!(detected_somewhere, "0.3 over many blocks must corrupt one");
    }

    #[test]
    fn segment_corruption_refetches_without_changing_results() {
        let (mut clean, mut corrupt) = (cluster(), cluster());
        corrupt.config.corruption = Some(crate::config::CorruptionModel {
            block_rate: 0.0,
            segment_rate: 0.4,
            record_rate: 0.0,
            seed: 11,
        });
        for c in [&mut clean, &mut corrupt] {
            c.config.hdfs_block_mb = 0.0001;
        }
        load_pairs(&mut clean);
        load_pairs(&mut corrupt);
        let a = run_job(&mut clean, &sum_job(4, false)).unwrap();
        let b = run_job(&mut corrupt, &sum_job(4, false)).unwrap();
        assert_eq!(
            sorted_output(&clean, "out/sum"),
            sorted_output(&corrupt, "out/sum")
        );
        assert!(b.refetched_segments > 0, "0.4 over many segments must hit");
        assert!(b.reduce_time_s > a.reduce_time_s, "refetches cost time");
    }

    #[test]
    fn torn_records_skipped_under_budget_and_fatal_over_it() {
        let model = crate::config::CorruptionModel {
            block_rate: 0.0,
            segment_rate: 0.0,
            record_rate: 0.05,
            seed: 5,
        };
        let (mut clean, mut budgeted) = (cluster(), cluster());
        budgeted.config.corruption = Some(model);
        budgeted.config.skip_bad_records = 10_000;
        load_pairs(&mut clean);
        load_pairs(&mut budgeted);
        run_job(&mut clean, &tolerant_sum_job(2)).unwrap();
        let m = run_job(&mut budgeted, &tolerant_sum_job(2)).unwrap();
        assert!(m.skipped_records > 0, "5% of 1000 records must inject");
        assert_eq!(
            sorted_output(&clean, "out/sum"),
            sorted_output(&budgeted, "out/sum"),
            "skipped garbage must not change results"
        );

        // Same corruption, zero budget: the job aborts, not retryably.
        let mut strict = cluster();
        strict.config.corruption = Some(model);
        load_pairs(&mut strict);
        let e = run_job(&mut strict, &tolerant_sum_job(2)).unwrap_err();
        assert!(matches!(
            e,
            MapRedError::TooManyBadRecords { budget: 0, .. }
        ));
    }

    #[test]
    fn blacklist_shrinks_reduce_slots_not_results() {
        let mk = |blacklist: bool| {
            let mut c = cluster();
            c.config.hdfs_block_mb = 0.001; // several tasks → some failures
            c.config.failures = Some(crate::config::FailureModel {
                probability: 0.3,
                seed: 21,
            });
            if blacklist {
                // One strike is enough here; the default Hadoop threshold
                // of 4 is exercised by config tests.
                c.config.blacklist = Some(crate::config::BlacklistPolicy { max_failures: 1 });
            }
            load_pairs(&mut c);
            let m = run_job(&mut c, &sum_job(4, false)).unwrap();
            (m, sorted_output(&c, "out/sum"))
        };
        let (open, open_out) = mk(false);
        let (listed, listed_out) = mk(true);
        assert_eq!(open_out, listed_out);
        assert_eq!(open.blacklisted_nodes, 0);
        assert!(
            open.failed_attempts > 0,
            "failures must fire for the test to mean anything"
        );
        assert!(
            listed.blacklisted_nodes > 0,
            "a failed task must trip the 1-strike rule"
        );
        assert!(
            listed.reduce_time_s > open.reduce_time_s,
            "blacklisted nodes shrink the reduce slot pool"
        );
    }

    #[test]
    fn corruption_same_seed_identical_metrics() {
        let run = || {
            let mut c = cluster();
            c.config.hdfs_block_mb = 0.0001;
            c.config.corruption = Some(crate::config::CorruptionModel::uniform(0.1, 3));
            c.config.skip_bad_records = 10_000;
            load_pairs(&mut c);
            let m = run_job(&mut c, &tolerant_sum_job(3)).unwrap();
            (
                sorted_output(&c, "out/sum"),
                m.corrupt_blocks_detected,
                m.refetched_segments,
                m.skipped_records,
                m.total_s(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn null_keys_group_together() {
        struct NullKeyMapper;
        impl Mapper for NullKeyMapper {
            fn map(&mut self, line: &str, out: &mut MapOutput) {
                let (_, v) = line.split_once('|').unwrap();
                out.emit(Row::new(vec![Value::Null]), row![v.parse::<i64>().unwrap()]);
            }
        }
        let mut c = cluster();
        c.load_table("t", vec!["a|1".into(), "b|2".into()]);
        let spec = JobSpec::builder("nulls")
            .input("data/t", || Box::new(NullKeyMapper))
            .reducer(|| Box::new(SumReducer))
            .output("out/n")
            .reduce_tasks(4)
            .build();
        run_job(&mut c, &spec).unwrap();
        assert_eq!(c.hdfs.get("out/n").unwrap().lines, vec!["NULL|3"]);
    }
}
