//! Job specifications: mappers, reducers, combiners and their wiring.
//!
//! A [`JobSpec`] describes one MapReduce job the way a Hadoop driver class
//! would: one mapper per input file (Hadoop's `MultipleInputs`, which join
//! jobs rely on to tag each side — §II-B), an optional combiner, an
//! optional reducer (map-only jobs write mapper output directly), and an
//! output path.
//!
//! Mappers and reducers are built per task from factories, mirroring how
//! Hadoop instantiates a fresh object per task attempt.

use ysmart_rel::{codec::encode_line, ColumnBatch, Row};

/// Key/value pairs emitted by a mapper, with byte and work accounting.
///
/// Keys and values live in *parallel vectors* rather than a `Vec<(Row,
/// Row)>`: after the map-side sort a key group's values are a contiguous
/// `&[Row]` slice, so [`Reducer::reduce`] and [`Combiner::combine`] receive
/// borrowed group slices without any per-group cloning.
#[derive(Debug, Default)]
pub struct MapOutput {
    keys: Vec<Row>,
    values: Vec<Row>,
    work: u64,
    bad_records: u64,
    dispatches: Vec<u64>,
    fatal: Option<String>,
}

impl MapOutput {
    /// Pre-reserves room for `additional` more pairs. The engine calls
    /// this with the task's line count (a mapper emits at most one pair
    /// per input line), so the parallel vectors never regrow mid-task.
    pub fn reserve(&mut self, additional: usize) {
        self.keys.reserve(additional);
        self.values.reserve(additional);
    }

    /// Emits one key/value pair.
    pub fn emit(&mut self, key: Row, value: Row) {
        self.keys.push(key);
        self.values.push(value);
    }

    /// Charges extra CPU work units (≈ one record operation each) beyond
    /// the per-record baseline — how a multi-branch common mapper reports
    /// its dispatch overhead to the cost model.
    pub fn add_work(&mut self, units: u64) {
        self.work += units;
    }

    /// Work units charged so far.
    #[must_use]
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Reports one malformed input record the mapper skipped instead of
    /// aborting — Hadoop's skipping mode. The engine sums these against the
    /// [`crate::config::ClusterConfig::skip_bad_records`] budget and fails
    /// the job with [`crate::MapRedError::TooManyBadRecords`] when the
    /// budget is exceeded.
    pub fn record_bad(&mut self) {
        self.bad_records += 1;
    }

    /// Malformed records skipped so far.
    #[must_use]
    pub fn bad_records(&self) -> u64 {
        self.bad_records
    }

    /// Counts one record dispatched to merged output stream `stream` — how
    /// a common mapper (CMF) reports its per-branch fan-out, surfaced in
    /// [`crate::JobMetrics::map_dispatches`] and the execution trace.
    pub fn record_dispatch(&mut self, stream: usize) {
        if self.dispatches.len() <= stream {
            self.dispatches.resize(stream + 1, 0);
        }
        self.dispatches[stream] += 1;
    }

    /// Takes the per-stream dispatch counts (empty when the mapper never
    /// reported streams).
    pub fn take_dispatches(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.dispatches)
    }

    /// Reports an unrecoverable evaluation error — a malformed plan, a
    /// projection index out of range, a failing expression. The engine
    /// turns it into a typed [`crate::MapRedError::User`] failure instead
    /// of the task panicking the whole chain. The first error wins.
    pub fn record_fatal(&mut self, msg: String) {
        self.fatal.get_or_insert(msg);
    }

    /// Takes the fatal error, if one was reported.
    pub fn take_fatal(&mut self) -> Option<String> {
        self.fatal.take()
    }

    /// Number of pairs emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The keys emitted so far, parallel to [`MapOutput::values`].
    #[must_use]
    pub fn keys(&self) -> &[Row] {
        &self.keys
    }

    /// The values emitted so far, parallel to [`MapOutput::keys`].
    #[must_use]
    pub fn values(&self) -> &[Row] {
        &self.values
    }

    /// Consumes the buffer into its parallel key/value columns.
    #[must_use]
    pub fn into_columns(self) -> (Vec<Row>, Vec<Row>) {
        (self.keys, self.values)
    }
}

/// One record emitted by a reducer: either a pre-rendered text line or a
/// typed row (optionally tagged with the merged-output stream it belongs
/// to, the way merged CMR jobs prefix intermediate lines with `tag|`).
///
/// Row emissions let the engine keep records *typed* end to end: in
/// columnar mode they are packed into binary frames without a text
/// round-trip; in text mode they render to exactly the line the reducer
/// would have formatted itself.
#[derive(Debug, Clone, PartialEq)]
pub enum ReduceEmit {
    /// A pre-rendered output line (legacy text path).
    Line(String),
    /// A typed output row, with an optional merged-stream tag.
    Row {
        /// Merged-output stream tag (`Some` renders as a `tag|` prefix in
        /// text mode and a leading `Int` column in columnar mode).
        tag: Option<i64>,
        /// The record itself.
        row: Row,
    },
}

impl ReduceEmit {
    /// Renders this emission to its text-mode line.
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            ReduceEmit::Line(line) => line.clone(),
            ReduceEmit::Row { tag: None, row } => encode_line(row),
            ReduceEmit::Row { tag: Some(t), row } => format!("{t}|{}", encode_line(row)),
        }
    }
}

/// Records emitted by a reducer (its output file content), with work
/// accounting.
#[derive(Debug, Default)]
pub struct ReduceOutput {
    emits: Vec<ReduceEmit>,
    work: u64,
    dispatches: Vec<u64>,
    fatal: Option<String>,
}

impl ReduceOutput {
    /// Emits one pre-rendered output line.
    pub fn emit_line(&mut self, line: String) {
        self.emits.push(ReduceEmit::Line(line));
    }

    /// Emits one typed output row. Prefer this over [`emit_line`]
    /// (self-formatting): typed rows stay binary in columnar mode.
    ///
    /// [`emit_line`]: ReduceOutput::emit_line
    pub fn emit_row(&mut self, row: Row) {
        self.emits.push(ReduceEmit::Row { tag: None, row });
    }

    /// Emits one typed output row tagged with merged-output stream `tag` —
    /// the intermediate format of merged (CMR) jobs, whose text rendering
    /// is `tag|field|field|…`.
    pub fn emit_tagged_row(&mut self, tag: i64, row: Row) {
        self.emits.push(ReduceEmit::Row {
            tag: Some(tag),
            row,
        });
    }

    /// Charges extra CPU work units beyond the per-record baseline — how a
    /// common reducer reports the cost of dispatching each value to several
    /// merged reducers (and how a short-circuiting hand-coded reducer shows
    /// up cheaper).
    pub fn add_work(&mut self, units: u64) {
        self.work += units;
    }

    /// Work units charged so far.
    #[must_use]
    pub fn work(&self) -> u64 {
        self.work
    }

    /// The emissions so far, rendered to their text-mode lines.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.emits.iter().map(ReduceEmit::to_line).collect()
    }

    /// Number of records emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.emits.len()
    }

    /// Whether nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.emits.is_empty()
    }

    /// Counts one value dispatched to merged output stream `stream` — how a
    /// common reducer (post-shuffle fan-out, §VI-B) reports which merged
    /// query branch each value fed, surfaced in
    /// [`crate::JobMetrics::reduce_dispatches`] and the execution trace.
    pub fn record_dispatch(&mut self, stream: usize) {
        self.record_dispatches(stream, 1);
    }

    /// Counts `n` values dispatched to `stream` at once — the direct-mode
    /// (single stream) bulk path.
    pub fn record_dispatches(&mut self, stream: usize, n: u64) {
        if self.dispatches.len() <= stream {
            self.dispatches.resize(stream + 1, 0);
        }
        self.dispatches[stream] += n;
    }

    /// Takes the per-stream dispatch counts (empty when the reducer never
    /// reported streams).
    pub fn take_dispatches(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.dispatches)
    }

    /// Reports an unrecoverable evaluation error; the engine turns it into
    /// a typed [`crate::MapRedError::User`] failure instead of the task
    /// panicking the whole chain. The first error wins.
    pub fn record_fatal(&mut self, msg: String) {
        self.fatal.get_or_insert(msg);
    }

    /// Takes the fatal error, if one was reported.
    pub fn take_fatal(&mut self) -> Option<String> {
        self.fatal.take()
    }

    /// Consumes the buffer, rendering every emission to its text line —
    /// byte-identical to what a self-formatting reducer would have written.
    #[must_use]
    pub fn into_lines(self) -> Vec<String> {
        self.emits.iter().map(ReduceEmit::to_line).collect()
    }

    /// Consumes the buffer into raw emissions, preserving emit order (the
    /// columnar output path packs `Row` emissions into binary frames).
    #[must_use]
    pub fn into_emits(self) -> Vec<ReduceEmit> {
        self.emits
    }
}

/// A map function: transforms one input record (a line) into key/value
/// pairs.
pub trait Mapper {
    /// Processes one record. Emitting nothing drops the record (selection).
    fn map(&mut self, line: &str, out: &mut MapOutput);

    /// Processes one columnar batch. The default renders each row back to
    /// its text line and feeds [`Mapper::map`], so every line-oriented
    /// mapper works unchanged under
    /// [`crate::config::DataFormat::Columnar`]; vectorizing mappers
    /// override it to read column vectors directly.
    fn map_batch(&mut self, batch: &ColumnBatch, out: &mut MapOutput) {
        let mut line = String::new();
        for r in 0..batch.num_rows() {
            line.clear();
            ysmart_rel::codec::encode_line_into(&batch.row(r), &mut line);
            self.map(&line, out);
        }
    }
}

/// A reduce function: receives one key and all values for it.
pub trait Reducer {
    /// Processes one key group.
    fn reduce(&mut self, key: &Row, values: &[Row], out: &mut ReduceOutput);
}

/// A map-side combiner: pre-aggregates one key group of map output,
/// returning replacement values. This is the "internal hash-aggregate map"
/// Hive uses in the map phase (paper footnote 2).
pub trait Combiner {
    /// Combines the values of one key into (usually fewer) values.
    fn combine(&mut self, key: &Row, values: &[Row]) -> Vec<Row>;

    /// An unrecoverable error the combiner hit (combiners return values,
    /// not an output buffer, so they report errors through this hook after
    /// the run instead of panicking). The engine polls it once per task and
    /// turns `Some` into a typed [`crate::MapRedError::User`] failure.
    fn take_error(&mut self) -> Option<String> {
        None
    }
}

/// Builds a fresh [`Mapper`] per map task.
pub type MapperFactory = Box<dyn Fn() -> Box<dyn Mapper> + Send + Sync>;
/// Builds a fresh [`Reducer`] per reduce task.
pub type ReducerFactory = Box<dyn Fn() -> Box<dyn Reducer> + Send + Sync>;
/// Builds a fresh [`Combiner`] per map task.
pub type CombinerFactory = Box<dyn Fn() -> Box<dyn Combiner> + Send + Sync>;

/// One input of a job: an HDFS path and the mapper that reads it.
pub struct JobInput {
    /// HDFS path of the input file.
    pub path: String,
    /// Factory for the mapper applied to this input's records.
    pub mapper: MapperFactory,
}

impl std::fmt::Debug for JobInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobInput")
            .field("path", &self.path)
            .finish()
    }
}

/// A full MapReduce job description.
pub struct JobSpec {
    /// Job name (for metrics and figures).
    pub name: String,
    /// Inputs, each with its own mapper.
    pub inputs: Vec<JobInput>,
    /// The reducer; `None` makes this a map-only job whose mapper output
    /// values are written directly (keys discarded), like a Hadoop job with
    /// zero reduces.
    pub reducer: Option<ReducerFactory>,
    /// Optional map-side combiner.
    pub combiner: Option<CombinerFactory>,
    /// Output path in HDFS.
    pub output: String,
    /// Number of reduce tasks; `None` uses the cluster default.
    pub reduce_tasks: Option<usize>,
    /// Estimated number of distinct shuffle keys, when the translator has
    /// statistics: the engine caps the derived reduce-task count with it
    /// (more reducers than keys are pure startup overhead).
    pub key_cardinality_hint: Option<u64>,
    /// Canonical fingerprint of the logical plan *and* the identity of its
    /// inputs, when the producer of this spec (the translator) can compute
    /// one. Equal fingerprints mean equal outputs, so the cross-query
    /// result-reuse cache ([`crate::reuse`]) may substitute a cached output
    /// for execution. `None` opts the job out of reuse entirely.
    pub fingerprint: Option<u64>,
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("output", &self.output)
            .field("map_only", &self.reducer.is_none())
            .field("has_combiner", &self.combiner.is_some())
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

impl JobSpec {
    /// Starts building a job.
    #[must_use]
    pub fn builder(name: &str) -> JobSpecBuilder {
        JobSpecBuilder {
            name: name.to_string(),
            inputs: Vec::new(),
            reducer: None,
            combiner: None,
            output: format!("tmp/{name}"),
            reduce_tasks: None,
            key_cardinality_hint: None,
            fingerprint: None,
        }
    }
}

/// Builder for [`JobSpec`].
pub struct JobSpecBuilder {
    name: String,
    inputs: Vec<JobInput>,
    reducer: Option<ReducerFactory>,
    combiner: Option<CombinerFactory>,
    output: String,
    reduce_tasks: Option<usize>,
    key_cardinality_hint: Option<u64>,
    fingerprint: Option<u64>,
}

impl JobSpecBuilder {
    /// Adds an input with its mapper factory.
    #[must_use]
    pub fn input(
        mut self,
        path: &str,
        mapper: impl Fn() -> Box<dyn Mapper> + Send + Sync + 'static,
    ) -> Self {
        self.inputs.push(JobInput {
            path: path.to_string(),
            mapper: Box::new(mapper),
        });
        self
    }

    /// Sets the reducer.
    #[must_use]
    pub fn reducer(
        mut self,
        reducer: impl Fn() -> Box<dyn Reducer> + Send + Sync + 'static,
    ) -> Self {
        self.reducer = Some(Box::new(reducer));
        self
    }

    /// Sets the combiner.
    #[must_use]
    pub fn combiner(
        mut self,
        combiner: impl Fn() -> Box<dyn Combiner> + Send + Sync + 'static,
    ) -> Self {
        self.combiner = Some(Box::new(combiner));
        self
    }

    /// Sets the output path.
    #[must_use]
    pub fn output(mut self, path: &str) -> Self {
        self.output = path.to_string();
        self
    }

    /// Sets the number of reduce tasks.
    #[must_use]
    pub fn reduce_tasks(mut self, n: usize) -> Self {
        self.reduce_tasks = Some(n);
        self
    }

    /// Sets the estimated distinct-key count.
    #[must_use]
    pub fn key_cardinality_hint(mut self, n: u64) -> Self {
        self.key_cardinality_hint = Some(n);
        self
    }

    /// Sets the reuse fingerprint — only when the caller can vouch that
    /// equal fingerprints imply byte-identical outputs.
    #[must_use]
    pub fn fingerprint(mut self, fp: u64) -> Self {
        self.fingerprint = Some(fp);
        self
    }

    /// Finishes the spec.
    #[must_use]
    pub fn build(self) -> JobSpec {
        JobSpec {
            name: self.name,
            inputs: self.inputs,
            reducer: self.reducer,
            combiner: self.combiner,
            output: self.output,
            reduce_tasks: self.reduce_tasks,
            key_cardinality_hint: self.key_cardinality_hint,
            fingerprint: self.fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::row;

    struct NullMapper;
    impl Mapper for NullMapper {
        fn map(&mut self, _line: &str, _out: &mut MapOutput) {}
    }

    #[test]
    fn builder_assembles_spec() {
        let spec = JobSpec::builder("j1")
            .input("data/t", || Box::new(NullMapper))
            .output("out/j1")
            .reduce_tasks(3)
            .build();
        assert_eq!(spec.name, "j1");
        assert_eq!(spec.inputs.len(), 1);
        assert_eq!(spec.output, "out/j1");
        assert_eq!(spec.reduce_tasks, Some(3));
        assert!(spec.reducer.is_none());
        let dbg = format!("{spec:?}");
        assert!(dbg.contains("map_only: true"));
    }

    #[test]
    fn map_output_accumulates() {
        let mut out = MapOutput::default();
        assert!(out.is_empty());
        out.emit(row![1i64], row!["a"]);
        out.emit(row![2i64], row!["b"]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.keys(), &[row![1i64], row![2i64]]);
        assert_eq!(out.values(), &[row!["a"], row!["b"]]);
        out.record_bad();
        assert_eq!(out.bad_records(), 1);
        assert_eq!(out.len(), 2, "a skipped record emits nothing");
        let (keys, values) = out.into_columns();
        assert_eq!(keys.len(), 2);
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn reduce_output_accumulates() {
        let mut out = ReduceOutput::default();
        out.emit_line("x|y".into());
        assert_eq!(out.lines(), vec!["x|y".to_string()]);
    }

    #[test]
    fn row_emissions_render_like_hand_formatted_lines() {
        let mut out = ReduceOutput::default();
        out.emit_row(row![7i64, "a"]);
        out.emit_tagged_row(2, row![7i64, "a"]);
        out.emit_line("7|a".into());
        assert_eq!(
            out.into_lines(),
            vec!["7|a".to_string(), "2|7|a".to_string(), "7|a".to_string()]
        );
    }

    #[test]
    fn default_map_batch_replays_text_lines() {
        struct Echo;
        impl Mapper for Echo {
            fn map(&mut self, line: &str, out: &mut MapOutput) {
                out.emit(row![line], Row::default());
            }
        }
        let batch = ColumnBatch::from_rows(&[row![1i64, "x"], row![2i64, "y"]]).unwrap();
        let mut out = MapOutput::default();
        Echo.map_batch(&batch, &mut out);
        assert_eq!(out.keys(), &[row!["1|x"], row!["2|y"]]);
    }
}
