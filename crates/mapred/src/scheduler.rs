//! Multi-tenant chain scheduler: admission control, deadlines, fair-share
//! slot allocation and graceful degradation under overload.
//!
//! The paper's production argument (§VII-F) is about *contention*: on the
//! Facebook cluster, many tenants' queries compete for the same slot pool,
//! and plans with fewer jobs win because every extra job pays another trip
//! through the shared scheduler. This module closes the loop by actually
//! co-running many translated chains over one simulated cluster:
//!
//! * **Bounded admission.** Each tenant owns a FIFO queue with a capacity;
//!   a query arriving at a full queue is *shed* with a typed
//!   [`MapRedError::QueueFull`] — the scheduler never hangs and never
//!   queues unboundedly.
//! * **Deadlines.** A query may carry a deadline (relative to submission).
//!   A chain that would still be running at its deadline is cancelled
//!   *cleanly at the deadline*: its slot is released at that instant and
//!   the report carries the partial [`ChainMetrics`] and partial trace of
//!   everything that ran first.
//! * **Weighted fair share.** Both admission order and per-step slot
//!   shares follow tenant weights, so one tenant's fault-retry storm
//!   cannot starve the others.
//! * **Retry budgets.** Each tenant has a cross-chain retry budget; once
//!   spent, further retryable failures fail fast with
//!   [`MapRedError::RetryBudgetExhausted`] instead of backing off and
//!   re-running — overload degrades to fast typed failures, not to an
//!   ever-growing retry queue.
//!
//! Time is simulated, so the whole scheduler is a *deterministic
//! discrete-event simulation*: chains interleave at job-attempt boundaries
//! (a [`ChainSession`] step), events are ordered by simulated time with
//! stable index tie-breaks, and a given (cluster seed, request list) always
//! produces the identical report — across `exec_threads` settings too,
//! because each job attempt is itself thread-invariant.
//!
//! Two lifecycle features ride on that determinism:
//!
//! * **Drain.** [`SchedulerConfig::drain_at_s`] closes admission at a
//!   workload instant for graceful shutdown: arrivals at or after it are
//!   shed with typed [`MapRedError::Draining`], every queued-but-unstarted
//!   query is shed at exactly the drain instant, and in-flight chains run
//!   to completion.
//! * **Crash recovery.** [`run_workload_journaled`] appends every job
//!   commit and terminal disposition to a [`Journal`];
//!   [`run_workload_recovered`] re-runs the *same* request list with the
//!   journal's records, fast-forwarding journaled commits (restoring their
//!   materialized outputs) and re-executing only work past the last
//!   checkpoint. Because the whole simulation is deterministic, the
//!   recovered run's reports, metrics and results are bit-identical to an
//!   uninterrupted run — the journal changes what is *executed*, never
//!   what is *computed*.

use std::collections::{BTreeSet, VecDeque};

use crate::chain::{retryable, ChainSession, ChainStep, JobChain, ReplayedJob};
use crate::config::ContentionModel;
use crate::engine::Cluster;
use crate::error::MapRedError;
use crate::journal::{DispositionKind, Journal, JournalRecord};
use crate::metrics::ChainMetrics;
use crate::reuse::{config_epoch, ReuseCache, ReuseStats};
use crate::trace::Trace;

/// One tenant sharing the cluster.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name, referenced by [`QueryRequest::tenant`].
    pub name: String,
    /// Fair-share weight: a weight-4 tenant gets twice the slot share of a
    /// weight-2 tenant when both have chains running. Must be ≥ 1.
    pub weight: u32,
    /// Admission-queue capacity; a query arriving with this many already
    /// waiting is shed with [`MapRedError::QueueFull`].
    pub queue_capacity: usize,
    /// Cross-chain retry budget. Every chain-level retry (backoff +
    /// re-run) any of the tenant's chains performs spends one unit; at
    /// zero, retryable failures fail fast with
    /// [`MapRedError::RetryBudgetExhausted`].
    pub retry_budget: usize,
}

impl TenantSpec {
    /// A tenant with weight 1, the given queue capacity and retry budget.
    #[must_use]
    pub fn new(name: impl Into<String>, queue_capacity: usize, retry_budget: usize) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            queue_capacity,
            retry_budget,
        }
    }

    /// Sets the fair-share weight (builder style).
    #[must_use]
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// Scheduler-wide configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Chains running concurrently over the shared slot pool. Queued
    /// queries wait for a running chain to finish (or die at their
    /// deadline waiting).
    pub max_running: usize,
    /// The tenants. Requests naming an unknown tenant are rejected.
    pub tenants: Vec<TenantSpec>,
    /// Record a merged workload trace: a scheduler lane with
    /// queue/admit/shed/cancel events plus every chain's own lanes,
    /// shifted to workload-absolute time.
    pub trace: bool,
    /// Graceful-drain instant on the workload clock: at and after this
    /// time admission is closed — new arrivals and every
    /// queued-but-unstarted query are shed with typed
    /// [`MapRedError::Draining`] (the queue may be far from full; the
    /// *service* is going away), while in-flight chains run to completion.
    /// `None` = never drain.
    pub drain_at_s: Option<f64>,
}

/// One query submitted to the scheduler.
#[derive(Debug)]
pub struct QueryRequest {
    /// Owning tenant (must match a [`TenantSpec::name`]).
    pub tenant: String,
    /// Label used in reports and trace lanes, e.g. `"t0/q17-3"`.
    pub label: String,
    /// The translated chain to run.
    pub chain: JobChain,
    /// Per-request seed driving scheduling-gap and backoff-jitter
    /// randomness. Distinct seeds decorrelate co-running chains.
    pub seed: u64,
    /// Deadline in seconds *after submission*; `None` = run to completion.
    pub deadline_s: Option<f64>,
    /// Submission time on the workload clock, seconds.
    pub submit_s: f64,
}

/// How a query's life ended. Every submitted query gets exactly one.
#[derive(Debug, Clone)]
pub enum Disposition {
    /// The chain ran to completion; results are in the cluster's HDFS.
    Completed(crate::chain::ChainOutcome),
    /// Cancelled at its deadline; carries partial metrics and trace.
    DeadlineCancelled(crate::chain::ChainFailure),
    /// Never admitted: queue full or rejected at admission. Nothing ran.
    Shed(MapRedError),
    /// The chain failed while running (fault, time limit, exhausted
    /// retries or retry budget); carries partial metrics and trace.
    Failed(crate::chain::ChainFailure),
}

/// The scheduler's report for one submitted query.
#[derive(Debug)]
pub struct QueryReport {
    /// Index of the request in the submitted batch.
    pub index: usize,
    /// Copied from the request.
    pub tenant: String,
    /// Copied from the request.
    pub label: String,
    /// Submission time, workload clock.
    pub submit_s: f64,
    /// When the chain got a slot; `None` if it never ran.
    pub admitted_s: Option<f64>,
    /// When the disposition was decided (completion, deadline, shed).
    pub done_s: f64,
    /// Jobs of this chain fast-forwarded from the cross-query reuse cache
    /// instead of executed (0 whenever no cache was in force).
    pub jobs_reused: usize,
    /// How it ended.
    pub disposition: Disposition,
}

impl QueryReport {
    /// Submission-to-disposition latency, the quantity the workload bench
    /// reports percentiles of.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.done_s - self.submit_s
    }

    /// Whether the query completed.
    #[must_use]
    pub fn completed(&self) -> bool {
        matches!(self.disposition, Disposition::Completed(_))
    }

    /// Whether the query was shed at admission (nothing ran).
    #[must_use]
    pub fn shed(&self) -> bool {
        matches!(self.disposition, Disposition::Shed(_))
    }

    /// The partial (or complete) metrics of whatever ran, if anything did.
    #[must_use]
    pub fn metrics(&self) -> Option<&ChainMetrics> {
        match &self.disposition {
            Disposition::Completed(o) => Some(&o.metrics),
            Disposition::DeadlineCancelled(f) | Disposition::Failed(f) => Some(&f.metrics),
            Disposition::Shed(_) => None,
        }
    }
}

/// The whole workload's outcome: one report per request (request order)
/// plus the merged trace when tracing was on.
#[derive(Debug)]
pub struct WorkloadReport {
    /// One report per submitted request, in submission-batch order.
    pub reports: Vec<QueryReport>,
    /// Merged workload trace ([`SchedulerConfig::trace`]).
    pub trace: Option<Trace>,
    /// Reuse-cache counters as of the end of the workload, when a cache
    /// was in force ([`run_workload_reusing`]). The counters are the
    /// cache's *lifetime* totals — a service keeping one cache across many
    /// `!run` batches reports cumulative values.
    pub reuse: Option<ReuseStats>,
}

/// A chain occupying one of the `max_running` slots.
struct Running {
    idx: usize,
    tenant: usize,
    admitted_s: f64,
    /// Absolute deadline on the workload clock.
    deadline_s: Option<f64>,
    session: ChainSession,
    /// Metrics snapshot taken before the in-flight step, for
    /// deadline-cancellation accounting.
    snapshot: ChainMetrics,
    /// When the in-flight step started.
    step_start_s: f64,
    /// When the in-flight step's charge ends (or the deadline, if that
    /// comes first).
    event_s: f64,
    /// Result of the eagerly-executed in-flight step, applied at
    /// `event_s`. `None` = cancelled at deadline mid-step.
    pending: Option<ChainStep>,
    /// Reuse-cache fingerprints this chain holds pinned (its fast-forward
    /// plan reads them); released when the chain reaches a disposition.
    pinned: Vec<u64>,
}

/// A queued (admitted-to-queue, not yet running) request.
struct Waiting {
    idx: usize,
    submit_s: f64,
}

/// Runs a batch of requests through the multi-tenant scheduler on the
/// shared cluster, to completion. Every request terminates in a typed
/// [`Disposition`]; the function never hangs — queues are bounded, chains
/// are finite, deadlines cancel.
///
/// The cluster's own `contention` model is treated as the *solo* share; a
/// chain running alongside others gets `slot_share × (weight / Σ weights
/// of running chains)` for each step it launches while they overlap. With
/// no base model a synthetic one (share only, no gaps, no slowdown) is
/// installed per step, so a chain running alone behaves exactly as under
/// [`crate::chain::run_chain`].
///
/// # Panics
///
/// If `config.max_running` is 0, a tenant weight is 0, or two tenants
/// share a name — configuration bugs, not runtime conditions.
#[must_use]
pub fn run_workload(
    cluster: &mut Cluster,
    config: &SchedulerConfig,
    requests: Vec<QueryRequest>,
) -> WorkloadReport {
    run_workload_inner(cluster, config, requests, None, &[], None).0
}

/// [`run_workload`] with a crash-safety [`Journal`]: every job commit
/// (with its materialized output) and every terminal disposition is
/// appended as it happens in simulated time, so the journal's byte stream
/// at any instant is a recovery point for [`run_workload_recovered`].
///
/// The journal is only appended to, never flushed — callers own the flush
/// cadence (the service flushes after every scheduler interaction;
/// in-memory journals need none).
///
/// # Panics
///
/// As [`run_workload`].
#[must_use]
pub fn run_workload_journaled(
    cluster: &mut Cluster,
    config: &SchedulerConfig,
    requests: Vec<QueryRequest>,
    journal: &mut Journal,
) -> WorkloadReport {
    run_workload_inner(cluster, config, requests, Some(journal), &[], None).0
}

/// What crash recovery saved and redid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Jobs fast-forwarded from journaled checkpoints — output restored,
    /// recorded metrics applied, nothing executed.
    pub jobs_replayed: usize,
    /// Jobs committed by live execution — work past the last journaled
    /// checkpoint (for a first run with no journal, all of them).
    pub jobs_executed: usize,
    /// Requests whose terminal disposition was already journaled before
    /// the crash. Their reports are re-derived identically by the replay;
    /// the service uses this to suppress duplicate responses.
    pub already_done: usize,
}

/// Re-runs a workload from a recovered journal: pass the *same* request
/// list as the interrupted run (chains hold closures, so the caller — e.g.
/// the service re-translating journaled SQL — reconstructs them) plus the
/// records [`crate::journal::recover`] salvaged. Journaled job commits
/// fast-forward instead of executing; everything else (scheduling gaps,
/// failed attempts, backoffs, admission decisions) re-executes with its
/// original seeded randomness, so the returned report is bit-identical to
/// the uninterrupted run's. Pass a fresh `journal` to make the recovered
/// run itself crash-safe again (the replay re-journals fast-forwarded
/// commits into the new epoch).
///
/// # Panics
///
/// As [`run_workload`].
#[must_use]
pub fn run_workload_recovered(
    cluster: &mut Cluster,
    config: &SchedulerConfig,
    requests: Vec<QueryRequest>,
    recovered: &[JournalRecord],
    journal: Option<&mut Journal>,
) -> (WorkloadReport, RecoveryStats) {
    run_workload_inner(cluster, config, requests, journal, recovered, None)
}

/// The full-featured entry point: journaling, crash recovery *and* a
/// cross-query [`ReuseCache`]. The cache outlives the call — a service
/// passes the same cache to every batch so later queries hit earlier
/// batches' results. On admission, the longest prefix of a chain whose job
/// fingerprints verify in the cache is fast-forwarded exactly like a
/// journal replay (recorded metrics, restored outputs — bit-identical);
/// every commit with a fingerprint is inserted back. Cache decisions
/// happen in the deterministic event loop, so the report is bit-identical
/// across `exec_threads` settings, and recovery rebuilds the cache in the
/// same event order without any dedicated journal record.
///
/// Pass `&[]` as `recovered` (and `None` as `journal`) when neither crash
/// safety nor recovery is wanted.
///
/// # Panics
///
/// As [`run_workload`].
#[must_use]
pub fn run_workload_reusing(
    cluster: &mut Cluster,
    config: &SchedulerConfig,
    requests: Vec<QueryRequest>,
    journal: Option<&mut Journal>,
    recovered: &[JournalRecord],
    cache: &mut ReuseCache,
) -> (WorkloadReport, RecoveryStats) {
    run_workload_inner(cluster, config, requests, journal, recovered, Some(cache))
}

fn run_workload_inner(
    cluster: &mut Cluster,
    config: &SchedulerConfig,
    requests: Vec<QueryRequest>,
    journal: Option<&mut Journal>,
    recovered: &[JournalRecord],
    reuse: Option<&mut ReuseCache>,
) -> (WorkloadReport, RecoveryStats) {
    assert!(config.max_running > 0, "scheduler needs at least one slot");
    assert!(
        config.tenants.iter().all(|t| t.weight > 0),
        "tenant weights must be >= 1"
    );
    for (i, t) in config.tenants.iter().enumerate() {
        assert!(
            config.tenants[..i].iter().all(|u| u.name != t.name),
            "duplicate tenant name {:?}",
            t.name
        );
    }

    // Route the recovered journal's records: per-request fast-forward
    // plans from job commits, plus the set of already-terminal requests.
    let mut replay: Vec<Vec<ReplayedJob>> = requests.iter().map(|_| Vec::new()).collect();
    let mut done_ids: BTreeSet<u64> = BTreeSet::new();
    for rec in recovered {
        match rec {
            JournalRecord::JobDone {
                id,
                job_index,
                attempt,
                output_path,
                file,
                metrics,
            } => {
                if let Some(plan) = replay.get_mut(*id as usize) {
                    plan.push(ReplayedJob {
                        job_index: *job_index as usize,
                        attempt: *attempt as usize,
                        output_path: output_path.clone(),
                        file: file.clone(),
                        metrics: metrics.as_ref().clone(),
                        from_cache: false,
                    });
                }
            }
            JournalRecord::Done { id, .. } => {
                done_ids.insert(*id);
            }
            JournalRecord::Admitted { .. } => {}
        }
    }

    let mut sched = Scheduler {
        config,
        base_contention: cluster.config.contention,
        master: if config.trace {
            Some(Trace::new())
        } else {
            None
        },
        queues: config.tenants.iter().map(|_| VecDeque::new()).collect(),
        budget_left: config.tenants.iter().map(|t| t.retry_budget).collect(),
        running: Vec::new(),
        reports: Vec::new(),
        requests,
        journal,
        replay,
        reuse,
        drained: false,
        stats: RecoveryStats {
            already_done: done_ids.len(),
            ..RecoveryStats::default()
        },
    };

    // A reuse cache is scoped to one cluster configuration: any config
    // change (cost model, data format, corruption seed) invalidates every
    // cached output and its recorded metrics.
    if let Some(cache) = sched.reuse.as_deref_mut() {
        cache.ensure_epoch(&mut cluster.hdfs, config_epoch(&cluster.config));
    }

    // Arrivals sorted by (submit time, request index); the index tie-break
    // keeps equal-time arrivals in batch order.
    let mut order: Vec<usize> = (0..sched.requests.len()).collect();
    order.sort_by(|&a, &b| {
        sched.requests[a]
            .submit_s
            .total_cmp(&sched.requests[b].submit_s)
            .then(a.cmp(&b))
    });
    let mut next_arrival = 0;

    loop {
        // Next step-completion among running chains: earliest event time,
        // lowest request index on ties.
        let completion = sched
            .running
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.event_s.total_cmp(&b.event_s).then(a.idx.cmp(&b.idx)))
            .map(|(slot, r)| (slot, r.event_s));
        let arrival = order.get(next_arrival).map(|&idx| {
            let t = sched.requests[idx].submit_s;
            (idx, t)
        });
        // The drain instant beats completions and arrivals on time ties:
        // a slot freed exactly at the drain admits nothing, and a query
        // arriving exactly at the drain is shed. (It only needs to fire
        // while other events remain — draining an idle scheduler is a
        // no-op.)
        if let Some(td) = config.drain_at_s.filter(|_| !sched.drained) {
            let pending = completion.is_some() || arrival.is_some();
            if pending
                && completion.is_none_or(|(_, tc)| td <= tc)
                && arrival.is_none_or(|(_, ta)| td <= ta)
            {
                sched.drain_queues(td);
                continue;
            }
        }
        match (completion, arrival) {
            (None, None) => break,
            // Completions beat arrivals on time ties: a slot freed at t is
            // available to the query arriving at t.
            (Some((slot, tc)), Some((_, ta))) if tc <= ta => {
                sched.complete_step(cluster, slot);
            }
            (Some((slot, _)), None) => {
                sched.complete_step(cluster, slot);
            }
            (_, Some((idx, t))) => {
                next_arrival += 1;
                sched.arrive(cluster, idx, t);
            }
        }
    }

    debug_assert!(sched.queues.iter().all(VecDeque::is_empty));
    let Scheduler {
        mut reports,
        master,
        stats,
        reuse,
        ..
    } = sched;
    reports.sort_by_key(|r| r.index);
    (
        WorkloadReport {
            reports,
            trace: master,
            reuse: reuse.map(|c| *c.stats()),
        },
        stats,
    )
}

struct Scheduler<'a> {
    config: &'a SchedulerConfig,
    base_contention: Option<ContentionModel>,
    master: Option<Trace>,
    queues: Vec<VecDeque<Waiting>>,
    budget_left: Vec<usize>,
    running: Vec<Running>,
    reports: Vec<QueryReport>,
    requests: Vec<QueryRequest>,
    /// Crash-safety WAL, when the caller wants one.
    journal: Option<&'a mut Journal>,
    /// Cross-query result-reuse cache, when the caller keeps one.
    reuse: Option<&'a mut ReuseCache>,
    /// Per-request fast-forward plans from a recovered journal.
    replay: Vec<Vec<ReplayedJob>>,
    /// Whether the drain instant has fired.
    drained: bool,
    stats: RecoveryStats,
}

impl Scheduler<'_> {
    fn tenant_index(&self, name: &str) -> Option<usize> {
        self.config.tenants.iter().position(|t| t.name == name)
    }

    fn journal_done(&mut self, idx: usize, kind: DispositionKind, done_s: f64) {
        if let Some(j) = self.journal.as_deref_mut() {
            j.append(&JournalRecord::Done {
                id: idx as u64,
                kind,
                done_s,
            });
        }
    }

    /// Journals the job the in-flight step of `running[slot]` committed —
    /// called when the step's event is *applied* at its simulated time, so
    /// the journal's record order is the simulated commit order (a
    /// deadline-crossing step is discarded, never journaled).
    fn journal_commit(&mut self, cluster: &Cluster, slot: usize) {
        if self.journal.is_none() {
            return;
        }
        let run = &self.running[slot];
        let done = run.session.jobs_done();
        let job = &self.requests[run.idx].chain.jobs[done - 1];
        let metrics = run.session.metrics().jobs[done - 1].clone();
        // The output must exist — the committed job just wrote it. An
        // empty-file default would only arise from a job spec writing
        // nowhere, in which case replaying an empty file is still exact.
        let file = cluster.hdfs.get(&job.output).cloned().unwrap_or_default();
        let rec = JournalRecord::JobDone {
            id: run.idx as u64,
            job_index: (done - 1) as u32,
            attempt: metrics.attempt as u32,
            output_path: job.output.clone(),
            file,
            metrics: Box::new(metrics),
        };
        self.journal
            .as_deref_mut()
            .expect("checked above")
            .append(&rec);
    }

    /// Inserts the job the in-flight step of `running[slot]` just
    /// committed into the reuse cache, when one is in force and the job
    /// carries a fingerprint. Runs for executed, journal-replayed *and*
    /// cache-reused commits alike — idempotent for already-cached
    /// fingerprints, and exactly what makes crash recovery rebuild the
    /// cache deterministically.
    fn reuse_commit(&mut self, cluster: &mut Cluster, slot: usize, now: f64) {
        let Some(cache) = self.reuse.as_deref_mut() else {
            return;
        };
        let run = &self.running[slot];
        let done = run.session.jobs_done();
        let job = &self.requests[run.idx].chain.jobs[done - 1];
        let Some(fp) = job.fingerprint else {
            return;
        };
        // Normalize the committed attempt to 0: a consumer fast-forwarding
        // this entry is on its own first attempt, and the journal record
        // of that consumer's commit must replay against attempt 0 too.
        let mut metrics = run.session.metrics().jobs[done - 1].clone();
        metrics.attempt = 0;
        let file = cluster.hdfs.get(&job.output).cloned().unwrap_or_default();
        cache.insert(&mut cluster.hdfs, fp, file, metrics, now);
    }

    /// Releases the cache pins a chain's fast-forward plan held.
    fn release_pins(&mut self, run: &Running) {
        if let Some(cache) = self.reuse.as_deref_mut() {
            for &fp in &run.pinned {
                cache.unpin(fp);
            }
        }
    }

    /// Folds a finished session's replay/reuse/execution split into the
    /// stats. Cache hits are neither journal replays nor executed work.
    fn account(&mut self, session: &ChainSession) {
        let replayed = session.replayed_jobs();
        let reused = session.reused_jobs();
        self.stats.jobs_replayed += replayed;
        self.stats.jobs_executed += session.metrics().jobs.len() - replayed - reused;
    }

    /// The drain instant: close admission and shed every queued-but-
    /// unstarted query with typed [`MapRedError::Draining`], all at
    /// exactly `now`. Tenant order then FIFO order — deterministic.
    fn drain_queues(&mut self, now: f64) {
        self.drained = true;
        if let Some(tr) = self.master.as_mut() {
            tr.chain_instant("drain", "admission closed (drain)".to_string(), now);
        }
        let queued: Vec<usize> = self
            .queues
            .iter_mut()
            .flat_map(|q| q.drain(..).map(|w| w.idx))
            .collect();
        for idx in queued {
            self.shed(idx, now, MapRedError::Draining);
        }
    }

    /// Absolute deadline of request `idx` on the workload clock.
    fn abs_deadline(&self, idx: usize) -> Option<f64> {
        let r = &self.requests[idx];
        r.deadline_s.map(|d| r.submit_s + d)
    }

    fn shed(&mut self, idx: usize, now: f64, error: MapRedError) {
        let r = &self.requests[idx];
        if let Some(tr) = self.master.as_mut() {
            tr.chain_instant("shed", format!("{}: {}", r.label, error), now);
        }
        self.reports.push(QueryReport {
            index: idx,
            tenant: r.tenant.clone(),
            label: r.label.clone(),
            submit_s: r.submit_s,
            admitted_s: None,
            done_s: now,
            jobs_reused: 0,
            disposition: Disposition::Shed(error),
        });
        self.journal_done(idx, DispositionKind::Shed, now);
    }

    /// Handles one arrival: admission checks, enqueue, admission pass.
    fn arrive(&mut self, cluster: &mut Cluster, idx: usize, now: f64) {
        // Admission is closed while draining — before any other check: the
        // whole service is going away, not just this tenant's queue.
        if self.drained || self.config.drain_at_s.is_some_and(|td| now >= td) {
            self.shed(idx, now, MapRedError::Draining);
            return;
        }
        let tenant_name = self.requests[idx].tenant.clone();
        let Some(t) = self.tenant_index(&tenant_name) else {
            self.shed(
                idx,
                now,
                MapRedError::Rejected {
                    tenant: tenant_name,
                    reason: "unknown tenant".into(),
                },
            );
            return;
        };
        if self.requests[idx].deadline_s.is_some_and(|d| d <= 0.0) {
            self.shed(
                idx,
                now,
                MapRedError::Rejected {
                    tenant: tenant_name,
                    reason: "deadline expired at submission".into(),
                },
            );
            return;
        }
        let capacity = self.config.tenants[t].queue_capacity;
        if self.queues[t].len() >= capacity {
            self.shed(
                idx,
                now,
                MapRedError::QueueFull {
                    tenant: tenant_name,
                    capacity,
                },
            );
            return;
        }
        self.queues[t].push_back(Waiting { idx, submit_s: now });
        self.admission_pass(cluster, now);
    }

    /// Fills free slots from the queues: pick the tenant whose running
    /// count per unit weight is lowest (stable lowest-index tie-break) —
    /// weighted fair admission.
    fn admission_pass(&mut self, cluster: &mut Cluster, now: f64) {
        while self.running.len() < self.config.max_running {
            let pick = self
                .queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .min_by(|(a, _), (b, _)| {
                    let load = |t: usize| {
                        let running = self.running.iter().filter(|r| r.tenant == t).count() as f64;
                        running / f64::from(self.config.tenants[t].weight)
                    };
                    load(*a).total_cmp(&load(*b)).then(a.cmp(b))
                })
                .map(|(t, _)| t);
            let Some(t) = pick else { break };
            let w = self.queues[t].pop_front().expect("picked non-empty queue");
            // A queued query whose deadline passed while waiting dies now,
            // without ever taking a slot.
            if let Some(dl) = self.abs_deadline(w.idx) {
                if now >= dl {
                    self.cancel_queued(w.idx, dl);
                    continue;
                }
            }
            self.admit(cluster, w, now);
        }
    }

    /// A queued request whose deadline expired before admission: report a
    /// clean cancellation with empty metrics (nothing ran).
    fn cancel_queued(&mut self, idx: usize, deadline_s: f64) {
        let r = &self.requests[idx];
        if let Some(tr) = self.master.as_mut() {
            tr.chain_span(
                "queue",
                format!("{} queued (died waiting)", r.label),
                r.submit_s,
                deadline_s - r.submit_s,
            );
            tr.chain_instant(
                "cancelled",
                format!("{} deadline while queued", r.label),
                deadline_s,
            );
        }
        self.reports.push(QueryReport {
            index: idx,
            tenant: r.tenant.clone(),
            label: r.label.clone(),
            submit_s: r.submit_s,
            admitted_s: None,
            done_s: deadline_s,
            jobs_reused: 0,
            disposition: Disposition::DeadlineCancelled(crate::chain::ChainFailure {
                error: MapRedError::DeadlineExceeded { deadline_s },
                metrics: ChainMetrics::default(),
                trace: None,
            }),
        });
        self.journal_done(idx, DispositionKind::DeadlineCancelled, deadline_s);
    }

    fn admit(&mut self, cluster: &mut Cluster, w: Waiting, now: f64) {
        let idx = w.idx;
        let r = &self.requests[idx];
        let tenant = self
            .tenant_index(&r.tenant)
            .expect("admitted request has a known tenant");
        if let Some(tr) = self.master.as_mut() {
            if now > w.submit_s {
                tr.chain_span(
                    "queue",
                    format!("{} queued", r.label),
                    w.submit_s,
                    now - w.submit_s,
                );
            }
            tr.chain_instant("admit", format!("{} admitted", r.label), now);
        }
        let mut session = if self.config.trace {
            ChainSession::with_tracing(r.seed)
        } else {
            ChainSession::new(r.seed)
        };
        // The fast-forward plan: journaled commits first (crash recovery),
        // then cross-query cache hits for the longest prefix of uncovered
        // jobs whose fingerprints verify in the cache. Prefix-only, as in
        // ReStore: a job past the first miss needs its predecessor's
        // output, which only execution (or the journal) provides.
        let mut plan = std::mem::take(&mut self.replay[idx]);
        let mut pinned = Vec::new();
        if let Some(cache) = self.reuse.as_deref_mut() {
            let chain = &self.requests[idx].chain;
            for (j, job) in chain.jobs.iter().enumerate() {
                if plan.iter().any(|r| r.job_index == j) {
                    continue; // a journaled commit already covers this job
                }
                let Some(fp) = job.fingerprint else { break };
                let corruption = cluster.config.corruption;
                let Some((file, mut metrics)) =
                    cache.lookup(&mut cluster.hdfs, fp, corruption.as_ref(), now)
                else {
                    break;
                };
                // The cached metrics carry the *producer's* job name;
                // rename to this chain's job so reports and journal
                // records read consistently.
                metrics.name.clone_from(&job.name);
                cache.pin(fp);
                pinned.push(fp);
                plan.push(ReplayedJob {
                    job_index: j,
                    attempt: 0,
                    output_path: job.output.clone(),
                    file,
                    metrics,
                    from_cache: true,
                });
            }
        }
        if !pinned.is_empty() {
            if let Some(tr) = self.master.as_mut() {
                tr.chain_instant(
                    "reuse",
                    format!(
                        "{} fast-forwards {} cached job(s)",
                        self.requests[idx].label,
                        pinned.len()
                    ),
                    now,
                );
            }
        }
        session.set_replay(plan);
        if self.budget_left[tenant] == 0 {
            session.deny_retries(true);
        }
        let deadline_s = self.abs_deadline(idx);
        let mut run = Running {
            idx,
            tenant,
            admitted_s: now,
            deadline_s,
            session,
            snapshot: ChainMetrics::default(),
            step_start_s: now,
            event_s: now,
            pending: None,
            pinned,
        };
        self.run_step(cluster, &mut run, now);
        self.running.push(run);
    }

    /// Eagerly executes the next step of `run`'s chain, charging it the
    /// fair share in force at `now`. Sets `event_s`/`pending`; a step
    /// whose charge crosses the deadline is converted into a cancellation
    /// event at the deadline.
    fn run_step(&mut self, cluster: &mut Cluster, run: &mut Running, now: f64) {
        // Share = weight / Σ weights of chains running while this step
        // launches (including this one). Sampled at launch and held for
        // the step, like a coarse Hadoop slot grant.
        let my_weight = f64::from(self.config.tenants[run.tenant].weight);
        let total_weight: f64 = self
            .running
            .iter()
            .map(|r| f64::from(self.config.tenants[r.tenant].weight))
            .sum::<f64>()
            + my_weight;
        let share = my_weight / total_weight;
        cluster.config.contention = Some(match self.base_contention {
            Some(c) => ContentionModel {
                slot_share: c.slot_share * share,
                ..c
            },
            None => ContentionModel {
                slot_share: share,
                max_scheduling_gap_s: 0.0,
                task_slowdown: 1.0,
                seed: 0,
            },
        });
        run.snapshot = run.session.metrics().clone();
        run.step_start_s = now;
        let step = run.session.step(cluster, &self.requests[run.idx].chain);
        cluster.config.contention = self.base_contention;

        if let ChainStep::Backoff { .. } = &step {
            let t = run.tenant;
            if self.budget_left[t] > 0 {
                self.budget_left[t] -= 1;
                if self.budget_left[t] == 0 {
                    // Budget spent: this and every other running chain of
                    // the tenant fails fast on its next retryable failure.
                    run.session.deny_retries(true);
                    for other in &mut self.running {
                        if other.tenant == t {
                            other.session.deny_retries(true);
                        }
                    }
                }
            }
        }

        let end_s = run.admitted_s + run.session.elapsed_s();
        match run.deadline_s {
            Some(dl) if end_s > dl => {
                // The step won't finish in time: cancel at the deadline.
                run.event_s = dl;
                run.pending = None;
            }
            _ => {
                run.event_s = end_s;
                run.pending = Some(step);
            }
        }
    }

    /// Applies the in-flight step of `running[slot]` at its event time:
    /// continue with the next step, or finish/cancel/fail and release the
    /// slot.
    fn complete_step(&mut self, cluster: &mut Cluster, slot: usize) {
        let now = self.running[slot].event_s;
        let pending = self.running[slot].pending.take();
        // A step that committed a job is journaled as its event is applied
        // — the journal's record order is the simulated commit order. The
        // reuse cache commits at the same instant (journal replays
        // included), so a recovered run rebuilds the cache in the same
        // event order with no dedicated journal record.
        if matches!(pending, Some(ChainStep::Advanced | ChainStep::Finished)) {
            self.journal_commit(cluster, slot);
            self.reuse_commit(cluster, slot, now);
        }
        match pending {
            Some(ChainStep::Advanced | ChainStep::Backoff { .. }) => {
                let mut run = self.running.swap_remove(slot);
                self.run_step(cluster, &mut run, now);
                self.running.push(run);
                return;
            }
            Some(ChainStep::Finished) => {
                let run = self.running.swap_remove(slot);
                self.finish(run, now);
            }
            Some(ChainStep::Failed) => {
                let run = self.running.swap_remove(slot);
                self.fail(cluster, run, now);
            }
            None => {
                let run = self.running.swap_remove(slot);
                self.cancel_running(cluster, run);
            }
        }
        // A slot was released — admit from the queues.
        self.admission_pass(cluster, now);
    }

    fn finish(&mut self, mut run: Running, now: f64) {
        self.account(&run.session);
        self.release_pins(&run);
        self.journal_done(run.idx, DispositionKind::Completed, now);
        let jobs_reused = run.session.reused_jobs();
        let r = &self.requests[run.idx];
        if let (Some(master), Some(mut lane)) = (self.master.as_mut(), run.session.take_trace()) {
            lane.shift_s(run.admitted_s);
            master.absorb(&r.label, lane);
        }
        self.reports.push(QueryReport {
            index: run.idx,
            tenant: r.tenant.clone(),
            label: r.label.clone(),
            submit_s: r.submit_s,
            admitted_s: Some(run.admitted_s),
            done_s: now,
            jobs_reused,
            disposition: Disposition::Completed(run.session.into_outcome()),
        });
    }

    /// Takes the session's private lane, shifts it to workload-absolute
    /// time, merges a copy into the master trace, and returns it for the
    /// failure report.
    fn harvest_lane(&mut self, run: &mut Running) -> Option<Trace> {
        let mut lane = run.session.take_trace()?;
        lane.shift_s(run.admitted_s);
        if let Some(master) = self.master.as_mut() {
            master.absorb(&self.requests[run.idx].label, lane.clone());
        }
        Some(lane)
    }

    fn fail(&mut self, cluster: &mut Cluster, mut run: Running, now: f64) {
        self.account(&run.session);
        self.release_pins(&run);
        self.journal_done(run.idx, DispositionKind::Failed, now);
        let jobs_reused = run.session.reused_jobs();
        let tenant = run.tenant;
        let budget = self.config.tenants[tenant].retry_budget;
        let deny = self.budget_left[tenant] == 0 && budget > 0;
        let lane = self.harvest_lane(&mut run);
        let mut failure = run.session.into_failure(cluster);
        if lane.is_some() {
            failure.trace = lane.map(Box::new);
        }
        // A retryable error that was denied its retry is the budget's
        // doing — report it as such.
        if deny && retryable(&failure.error) && cluster.config.retry.is_some() {
            failure.error = MapRedError::RetryBudgetExhausted {
                tenant: self.config.tenants[tenant].name.clone(),
                budget,
            };
        }
        let r = &self.requests[run.idx];
        self.reports.push(QueryReport {
            index: run.idx,
            tenant: r.tenant.clone(),
            label: r.label.clone(),
            submit_s: r.submit_s,
            admitted_s: Some(run.admitted_s),
            done_s: now,
            jobs_reused,
            disposition: Disposition::Failed(failure),
        });
    }

    /// Cancels a running chain at its deadline: the slot is released *at
    /// the deadline*, partial metrics are the pre-step snapshot plus the
    /// deadline-truncated share of the in-flight step charged as burned
    /// failed-attempt time.
    fn cancel_running(&mut self, cluster: &mut Cluster, mut run: Running) {
        self.account(&run.session);
        self.release_pins(&run);
        let deadline_s = run.deadline_s.expect("cancelled chain has a deadline");
        self.journal_done(run.idx, DispositionKind::DeadlineCancelled, deadline_s);
        let mut metrics = run.snapshot.clone();
        metrics.failed_attempt_s += deadline_s - run.step_start_s;
        let lane = self.harvest_lane(&mut run);
        let label = self.requests[run.idx].label.clone();
        if let Some(tr) = self.master.as_mut() {
            tr.chain_instant("cancelled", format!("{label} deadline mid-run"), deadline_s);
        }
        let jobs_reused = run.session.reused_jobs();
        run.session
            .abandon(MapRedError::DeadlineExceeded { deadline_s });
        let mut failure = run.session.into_failure(cluster);
        failure.metrics = metrics;
        if lane.is_some() {
            failure.trace = lane.map(Box::new);
        }
        let r = &self.requests[run.idx];
        self.reports.push(QueryReport {
            index: run.idx,
            tenant: r.tenant.clone(),
            label: r.label.clone(),
            submit_s: r.submit_s,
            admitted_s: Some(run.admitted_s),
            done_s: deadline_s,
            jobs_reused,
            disposition: Disposition::DeadlineCancelled(failure),
        });
    }
}
