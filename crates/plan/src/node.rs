//! The logical plan: an arena of operator nodes.
//!
//! Operators correspond to the paper's plan-tree nodes (§III, Fig. 2(a) and
//! Fig. 4): table scans with pushed-down selection, joins, aggregations and
//! sorts, plus lightweight `Filter`/`Project`/`Limit` operators that never
//! get their own MapReduce job — the translator folds them into the job of
//! the nearest shuffle-requiring ancestor or descendant.

use std::fmt;

use ysmart_rel::{AggFunc, Expr, Schema, SortKey};

/// Identifies a node inside one [`Plan`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Join kinds (equi-joins only, §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Inner equi-join.
    Inner,
    /// Left outer equi-join.
    LeftOuter,
    /// Right outer equi-join.
    RightOuter,
    /// Full outer equi-join.
    FullOuter,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "JOIN",
            JoinKind::LeftOuter => "LEFT OUTER JOIN",
            JoinKind::RightOuter => "RIGHT OUTER JOIN",
            JoinKind::FullOuter => "FULL OUTER JOIN",
        };
        f.write_str(s)
    }
}

/// One aggregate call inside an [`Operator::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The function (`count(distinct)` is [`AggFunc::CountDistinct`]).
    pub func: AggFunc,
    /// Argument over the child schema; `None` is `count(*)`.
    pub arg: Option<Expr>,
}

/// A logical plan operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// Scan of a base table with optional pushed-down selection. The node's
    /// schema is the base schema requalified by `binding`.
    Scan {
        /// Base-table name in the catalog.
        table: String,
        /// The alias this instance is bound to (`c1`, `c2` for self-joins).
        binding: String,
        /// Pushed-down selection over the base schema.
        predicate: Option<Expr>,
    },
    /// Row filter over the child (predicates on intermediate results).
    Filter {
        /// Predicate over the child schema.
        predicate: Expr,
    },
    /// Projection / scalar computation over the child. The output names are
    /// carried by the node schema.
    Project {
        /// One expression per output column, over the child schema.
        exprs: Vec<Expr>,
    },
    /// Equi-join of two children.
    Join {
        /// Inner/left/right/full.
        kind: JoinKind,
        /// Join-key columns in the left child schema, position-aligned with
        /// `right_keys`.
        left_keys: Vec<usize>,
        /// Join-key columns in the right child schema.
        right_keys: Vec<usize>,
        /// Non-equi residual predicate over the concatenated schema,
        /// evaluated by the join job itself (§V-A).
        residual: Option<Expr>,
    },
    /// Grouping aggregation (or plain aggregation when `group_by` is empty).
    Aggregate {
        /// Grouping columns in the child schema.
        group_by: Vec<usize>,
        /// Aggregate calls; output schema is groups then aggregates.
        aggs: Vec<AggCall>,
        /// `HAVING` predicate over the *output* schema.
        having: Option<Expr>,
    },
    /// Duplicate elimination over all columns (`SELECT DISTINCT`).
    Distinct,
    /// Sort.
    Sort {
        /// Sort keys over the child schema.
        keys: Vec<SortKey>,
    },
    /// Row-count limit (applied after any sort).
    Limit {
        /// Maximum number of rows.
        n: u64,
    },
    /// Synthetic root bundling several independent queries into one plan
    /// for *multi-query* translation: Rule 1 then shares scans and map
    /// output across queries (the cross-query generalisation the paper's
    /// related work attributes to MRShare, expressed with YSmart's own
    /// correlations). Never produced by the SQL builder for single queries.
    Batch,
}

impl Operator {
    /// Whether this operator needs a MapReduce shuffle of its own — i.e.
    /// whether a one-operation-to-one-job translation gives it a job. These
    /// are the "nodes" of the paper's correlation definitions.
    #[must_use]
    pub fn needs_shuffle(&self) -> bool {
        matches!(
            self,
            Operator::Join { .. }
                | Operator::Aggregate { .. }
                | Operator::Sort { .. }
                | Operator::Distinct
        )
    }

    /// Short operator name for plan rendering.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Scan { .. } => "Scan",
            Operator::Filter { .. } => "Filter",
            Operator::Project { .. } => "Project",
            Operator::Join { .. } => "Join",
            Operator::Aggregate { .. } => "Aggregate",
            Operator::Distinct => "Distinct",
            Operator::Sort { .. } => "Sort",
            Operator::Limit { .. } => "Limit",
            Operator::Batch => "Batch",
        }
    }
}

/// A node of the plan arena: operator, output schema, children.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeData {
    /// The operator.
    pub op: Operator,
    /// The node's output schema.
    pub schema: Schema,
    /// Child node ids (0 for scans, 1 for unary, 2 for joins).
    pub children: Vec<NodeId>,
}

/// A logical plan: an arena of nodes plus the root id.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    nodes: Vec<NodeData>,
    root: NodeId,
}

impl Plan {
    /// Creates a plan from a fully-built arena. `root` must be in range.
    #[must_use]
    pub fn new(nodes: Vec<NodeData>, root: NodeId) -> Self {
        assert!(root.0 < nodes.len(), "root out of range");
        Plan { nodes, root }
    }

    /// The root node id.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrows a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0]
    }

    /// Number of nodes in the arena.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty (never true for a built plan).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids in arena order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Ids of the subtree under `root` (inclusive) in post-order — children
    /// before parents, left before right: the traversal order of the paper's
    /// one-operation-to-one-job translation (§V-A).
    #[must_use]
    pub fn post_order(&self, root: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.post_order_into(root, &mut out);
        out
    }

    fn post_order_into(&self, id: NodeId, out: &mut Vec<NodeId>) {
        for &c in &self.node(id).children {
            self.post_order_into(c, out);
        }
        out.push(id);
    }

    /// The parent of each node (`None` for the root). Nodes unreachable from
    /// the root have no parent entry either.
    #[must_use]
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut out = vec![None; self.nodes.len()];
        for id in self.post_order(self.root) {
            for &c in &self.node(id).children {
                out[c.0] = Some(id);
            }
        }
        out
    }

    /// The base tables scanned in the subtree of `id` (with multiplicity
    /// collapsed), used for input-correlation reporting and tests.
    #[must_use]
    pub fn base_tables(&self, id: NodeId) -> Vec<String> {
        let mut out: Vec<String> = self
            .post_order(id)
            .into_iter()
            .filter_map(|n| match &self.node(n).op {
                Operator::Scan { table, .. } => Some(table.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Renders the plan as an indented tree (root first), for debugging and
    /// golden tests.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(self.root, 0, &mut out);
        out
    }

    fn render_into(&self, id: NodeId, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let node = self.node(id);
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(out, "#{} {}", id.0, node.op.name());
        match &node.op {
            Operator::Scan {
                table,
                binding,
                predicate,
            } => {
                let _ = write!(out, " {table}");
                if binding != table {
                    let _ = write!(out, " AS {binding}");
                }
                if let Some(p) = predicate {
                    let _ = write!(out, " WHERE {p}");
                }
            }
            Operator::Join {
                kind,
                left_keys,
                right_keys,
                residual,
            } => {
                let _ = write!(out, " [{kind}] on {left_keys:?}={right_keys:?}");
                if let Some(r) = residual {
                    let _ = write!(out, " residual {r}");
                }
            }
            Operator::Aggregate { group_by, aggs, .. } => {
                let _ = write!(out, " by {group_by:?} aggs={}", aggs.len());
            }
            Operator::Filter { predicate } => {
                let _ = write!(out, " {predicate}");
            }
            Operator::Project { exprs } => {
                let _ = write!(out, " {} cols", exprs.len());
            }
            Operator::Sort { keys } => {
                let _ = write!(out, " {} keys", keys.len());
            }
            Operator::Limit { n } => {
                let _ = write!(out, " {n}");
            }
            Operator::Distinct | Operator::Batch => {}
        }
        out.push('\n');
        for &c in &node.children {
            self.render_into(c, depth + 1, out);
        }
    }
}

/// Incrementally builds a [`Plan`] arena.
#[derive(Debug, Default)]
pub struct PlanArena {
    nodes: Vec<NodeData>,
}

impl PlanArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        PlanArena::default()
    }

    /// Adds a node, returning its id.
    pub fn add(&mut self, op: Operator, schema: Schema, children: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeData {
            op,
            schema,
            children,
        });
        id
    }

    /// Borrows a node already added.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0]
    }

    /// ANDs a predicate into an existing scan node (predicate pushdown).
    /// No-op for non-scan nodes.
    pub fn merge_scan_predicate(&mut self, id: NodeId, pred: Expr) {
        if let Operator::Scan { predicate, .. } = &mut self.nodes[id.0].op {
            *predicate = Some(match predicate.take() {
                Some(p) => p.and(pred),
                None => pred,
            });
        }
    }

    /// Finalises the arena into a [`Plan`] rooted at `root`.
    #[must_use]
    pub fn finish(self, root: NodeId) -> Plan {
        Plan::new(self.nodes, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ysmart_rel::DataType;

    fn scan(arena: &mut PlanArena, table: &str) -> NodeId {
        arena.add(
            Operator::Scan {
                table: table.into(),
                binding: table.into(),
                predicate: None,
            },
            Schema::of(table, &[("k", DataType::Int)]),
            vec![],
        )
    }

    #[test]
    fn post_order_children_first() {
        let mut a = PlanArena::new();
        let l = scan(&mut a, "t");
        let r = scan(&mut a, "u");
        let j = a.add(
            Operator::Join {
                kind: JoinKind::Inner,
                left_keys: vec![0],
                right_keys: vec![0],
                residual: None,
            },
            Schema::of("t", &[("k", DataType::Int)])
                .concat(&Schema::of("u", &[("k", DataType::Int)])),
            vec![l, r],
        );
        let plan = a.finish(j);
        assert_eq!(plan.post_order(plan.root()), vec![l, r, j]);
    }

    #[test]
    fn parents_computed() {
        let mut a = PlanArena::new();
        let s = scan(&mut a, "t");
        let f = a.add(
            Operator::Filter {
                predicate: Expr::lit(true),
            },
            Schema::of("t", &[("k", DataType::Int)]),
            vec![s],
        );
        let plan = a.finish(f);
        let parents = plan.parents();
        assert_eq!(parents[s.0], Some(f));
        assert_eq!(parents[f.0], None);
    }

    #[test]
    fn base_tables_deduplicated() {
        let mut a = PlanArena::new();
        let c1 = scan(&mut a, "clicks");
        let c2 = scan(&mut a, "clicks");
        let j = a.add(
            Operator::Join {
                kind: JoinKind::Inner,
                left_keys: vec![0],
                right_keys: vec![0],
                residual: None,
            },
            Schema::default(),
            vec![c1, c2],
        );
        let plan = a.finish(j);
        assert_eq!(plan.base_tables(plan.root()), vec!["clicks".to_string()]);
    }

    #[test]
    fn shuffle_classification() {
        assert!(Operator::Distinct.needs_shuffle());
        assert!(!Operator::Limit { n: 1 }.needs_shuffle());
        assert!(!Operator::Filter {
            predicate: Expr::lit(true)
        }
        .needs_shuffle());
    }

    #[test]
    fn render_contains_nodes() {
        let mut a = PlanArena::new();
        let s = scan(&mut a, "t");
        let plan = a.finish(s);
        let r = plan.render();
        assert!(r.contains("Scan t"));
    }
}
