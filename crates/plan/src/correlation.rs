//! Intra-query correlation analysis (§IV of the paper).
//!
//! For every *shuffle node* (join, aggregation, sort, distinct — the nodes
//! that get a MapReduce job of their own under one-operation-to-one-job
//! translation) this module computes:
//!
//! * its **input relations** — the base tables its map phase would scan and
//!   the intermediate outputs of other shuffle nodes it would read;
//! * its **partition key**, choosing among candidates for aggregations with
//!   the paper's heuristic (the candidate connecting the maximal number of
//!   correlated nodes);
//! * the three correlations:
//!   - **Input Correlation (IC)**: input relation sets not disjoint;
//!   - **Transit Correlation (TC)**: IC plus the same partition key
//!     (table-granularity match — the two jobs partition the shared input's
//!     records identically);
//!   - **Job Flow Correlation (JFC)**: a node and one of its (effective)
//!     children have the same partition key (value-granularity match — the
//!     parent can be evaluated in the child job's reduce function).
//!
//! "Effective" children skip the pipe operators (`Filter`, `Project`,
//! `Limit`) that never get their own job.

use std::collections::{BTreeMap, BTreeSet};

use crate::node::{NodeId, Operator, Plan};
use crate::pk::{agg_pk_candidates, join_pk, sort_pk, InputRel, PartitionKey, Provenance};
use crate::stats::Statistics;

/// Per-shuffle-node facts computed by [`analyze`].
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// The shuffle node.
    pub id: NodeId,
    /// Input relations of its (one-op-one-job) MapReduce job.
    pub inputs: BTreeSet<InputRel>,
    /// Its (chosen) partition key.
    pub pk: PartitionKey,
    /// For aggregations: the positions (into the `GROUP BY` list) of the
    /// chosen partition-key columns. Empty for joins/sorts/distinct, whose
    /// keys are fixed by the operator.
    pub pk_group_positions: Vec<usize>,
    /// Estimated distinct shuffle-key tuples (when statistics are
    /// available): the translator caps reduce-task counts with this.
    pub estimated_keys: Option<u64>,
    /// Effective children that are shuffle nodes.
    pub shuffle_children: Vec<NodeId>,
}

/// The correlation report for one plan.
#[derive(Debug, Clone)]
pub struct CorrelationReport {
    /// Facts per shuffle node, in post-order.
    pub nodes: Vec<NodeInfo>,
    /// Unordered pairs with input correlation (excluding TC pairs is NOT
    /// done — TC implies IC, and both lists contain a TC pair).
    pub input_correlated: Vec<(NodeId, NodeId)>,
    /// Unordered pairs with transit correlation.
    pub transit_correlated: Vec<(NodeId, NodeId)>,
    /// `(parent, child)` pairs with job flow correlation.
    pub job_flow: Vec<(NodeId, NodeId)>,
}

impl CorrelationReport {
    /// Facts for a node (panics for non-shuffle nodes).
    #[must_use]
    pub fn info(&self, id: NodeId) -> &NodeInfo {
        self.nodes
            .iter()
            .find(|n| n.id == id)
            .expect("node is a shuffle node")
    }

    /// Whether the unordered pair has transit correlation.
    #[must_use]
    pub fn has_tc(&self, a: NodeId, b: NodeId) -> bool {
        self.transit_correlated
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
    }

    /// Whether the unordered pair has input correlation.
    #[must_use]
    pub fn has_ic(&self, a: NodeId, b: NodeId) -> bool {
        self.input_correlated
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
    }

    /// Whether `parent` has job flow correlation with `child`.
    #[must_use]
    pub fn has_jfc(&self, parent: NodeId, child: NodeId) -> bool {
        self.job_flow.contains(&(parent, child))
    }
}

/// Runs the full correlation analysis on a plan (no statistics).
#[must_use]
pub fn analyze(plan: &Plan) -> CorrelationReport {
    analyze_with_stats(plan, None)
}

/// Runs the correlation analysis with optional table statistics — the
/// paper's future-work refinement (§IV-A): statistics break ties between
/// equally-connected PK candidates in favour of higher key cardinality,
/// and each node carries an estimated key count for reduce-task sizing.
#[must_use]
pub fn analyze_with_stats(plan: &Plan, stats: Option<&Statistics>) -> CorrelationReport {
    let prov = Provenance::compute(plan);
    let shuffle_ids: Vec<NodeId> = plan
        .post_order(plan.root())
        .into_iter()
        .filter(|&id| plan.node(id).op.needs_shuffle())
        .collect();

    // Choose partition keys in post-order: children are decided before
    // parents, so an aggregation scores its JFC against its children's
    // final keys and its parent's candidate set.
    let mut chosen: BTreeMap<NodeId, PartitionKey> = BTreeMap::new();
    let mut chosen_positions: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for &id in &shuffle_ids {
        let pk = match &plan.node(id).op {
            Operator::Join { .. } => join_pk(plan, &prov, id),
            Operator::Sort { .. } => sort_pk(plan, &prov, id),
            Operator::Distinct => {
                PartitionKey::new(prov.columns(plan.node(id).children[0]).to_vec())
            }
            Operator::Aggregate { .. } => {
                let (positions, pk) = choose_agg_pk(plan, &prov, id, &shuffle_ids, &chosen, stats);
                chosen_positions.insert(id, positions);
                pk
            }
            _ => unreachable!("shuffle nodes only"),
        };
        chosen.insert(id, pk);
    }

    let parents = plan.parents();
    let mut nodes = Vec::new();
    for &id in &shuffle_ids {
        nodes.push(NodeInfo {
            id,
            inputs: job_inputs(plan, id),
            pk: chosen[&id].clone(),
            pk_group_positions: chosen_positions.get(&id).cloned().unwrap_or_default(),
            estimated_keys: stats.and_then(|s| s.pk_cardinality(&chosen[&id])),
            shuffle_children: effective_children(plan, id),
        });
    }
    let _ = parents; // parent lookup not needed beyond effective children

    let mut input_correlated = Vec::new();
    let mut transit_correlated = Vec::new();
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            let (a, b) = (&nodes[i], &nodes[j]);
            if a.inputs.intersection(&b.inputs).next().is_some() {
                input_correlated.push((a.id, b.id));
                if a.pk.matches_table(&b.pk) {
                    transit_correlated.push((a.id, b.id));
                }
            }
        }
    }

    let mut job_flow = Vec::new();
    for info in &nodes {
        for &child in &info.shuffle_children {
            if info.pk.matches_value(&chosen[&child]) {
                job_flow.push((info.id, child));
            }
        }
    }

    CorrelationReport {
        nodes,
        input_correlated,
        transit_correlated,
        job_flow,
    }
}

/// The input relations of the MapReduce job for shuffle node `id`: descend
/// each child chain through pipe operators; a `Scan` contributes its base
/// table, a shuffle node contributes its materialised output.
#[must_use]
pub fn job_inputs(plan: &Plan, id: NodeId) -> BTreeSet<InputRel> {
    let mut out = BTreeSet::new();
    for &child in &plan.node(id).children {
        collect_inputs(plan, child, &mut out);
    }
    out
}

fn collect_inputs(plan: &Plan, id: NodeId, out: &mut BTreeSet<InputRel>) {
    let node = plan.node(id);
    match &node.op {
        Operator::Scan { table, .. } => {
            out.insert(InputRel::Base(table.clone()));
        }
        op if op.needs_shuffle() => {
            out.insert(InputRel::Derived(id));
        }
        _ => {
            for &c in &node.children {
                collect_inputs(plan, c, out);
            }
        }
    }
}

/// Effective shuffle children of a shuffle node: the nearest shuffle
/// descendants reached through pipe operators.
#[must_use]
pub fn effective_children(plan: &Plan, id: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    for &child in &plan.node(id).children {
        collect_shuffle_roots(plan, child, &mut out);
    }
    out
}

fn collect_shuffle_roots(plan: &Plan, id: NodeId, out: &mut Vec<NodeId>) {
    let node = plan.node(id);
    if node.op.needs_shuffle() {
        out.push(id);
        return;
    }
    for &c in &node.children {
        collect_shuffle_roots(plan, c, out);
    }
}

/// The paper's PK-selection heuristic for aggregations: among the candidate
/// subsets of the grouping columns, pick the one that connects the maximal
/// number of correlated nodes. A candidate scores one point for every other
/// shuffle node it could have transit correlation with (shared input and a
/// table-level key match) and one for every effective child or parent it
/// could have job flow correlation with (value-level match). Candidates are
/// enumerated largest-first, so ties keep the full grouping key.
fn choose_agg_pk(
    plan: &Plan,
    prov: &Provenance,
    id: NodeId,
    shuffle_ids: &[NodeId],
    chosen: &BTreeMap<NodeId, PartitionKey>,
    stats: Option<&Statistics>,
) -> (Vec<usize>, PartitionKey) {
    let candidates = agg_pk_candidates(plan, prov, id);
    if candidates.is_empty() {
        return (Vec::new(), PartitionKey::default());
    }
    if candidates.len() == 1 {
        return candidates.into_iter().next().expect("nonempty");
    }

    let my_inputs = job_inputs(plan, id);
    let my_children = effective_children(plan, id);
    let parents = plan.parents();
    let my_parent = effective_parent(plan, &parents, id);

    let mut best: Option<(usize, u64, (Vec<usize>, PartitionKey))> = None;
    for (positions, cand) in candidates {
        let mut score = 0;
        for &other in shuffle_ids {
            if other == id {
                continue;
            }
            let other_pks: Vec<PartitionKey> = match chosen.get(&other) {
                Some(pk) => vec![pk.clone()],
                None => candidate_pks(plan, prov, other),
            };
            // Transit correlation potential.
            let other_inputs = job_inputs(plan, other);
            if my_inputs.intersection(&other_inputs).next().is_some()
                && other_pks.iter().any(|pk| cand.matches_table(pk))
            {
                score += 1;
            }
            // Job flow correlation potential (child or parent link).
            let linked = my_children.contains(&other) || my_parent == Some(other);
            if linked && other_pks.iter().any(|pk| cand.matches_value(pk)) {
                score += 1;
            }
        }
        // Statistics-informed tie-break: among equally-connected
        // candidates prefer the one with the higher estimated key
        // cardinality (more reduce parallelism, less skew). Without
        // statistics, ties keep the earlier (larger-subset) candidate.
        let cardinality = stats.and_then(|s| s.pk_cardinality(&cand)).unwrap_or(0);
        let better = match &best {
            None => true,
            Some((s, c, _)) => score > *s || (score == *s && cardinality > *c),
        };
        if better {
            best = Some((score, cardinality, (positions, cand)));
        }
    }
    best.map(|(_, _, pk)| pk).expect("at least one candidate")
}

/// All possible PKs of a shuffle node (a single fixed key for joins/sorts,
/// the candidate set for aggregations).
fn candidate_pks(plan: &Plan, prov: &Provenance, id: NodeId) -> Vec<PartitionKey> {
    match &plan.node(id).op {
        Operator::Join { .. } => vec![join_pk(plan, prov, id)],
        Operator::Sort { .. } => vec![sort_pk(plan, prov, id)],
        Operator::Distinct => vec![PartitionKey::new(
            prov.columns(plan.node(id).children[0]).to_vec(),
        )],
        Operator::Aggregate { .. } => agg_pk_candidates(plan, prov, id)
            .into_iter()
            .map(|(_, pk)| pk)
            .collect(),
        _ => Vec::new(),
    }
}

/// The nearest shuffle ancestor reached through pipe operators.
fn effective_parent(plan: &Plan, parents: &[Option<NodeId>], id: NodeId) -> Option<NodeId> {
    let mut cur = parents[id.0];
    while let Some(p) = cur {
        if plan.node(p).op.needs_shuffle() {
            return Some(p);
        }
        cur = parents[p.0];
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_plan;
    use crate::catalog::Catalog;
    use ysmart_rel::{DataType, Schema};
    use ysmart_sql::parse;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "clicks",
            Schema::of(
                "clicks",
                &[
                    ("uid", DataType::Int),
                    ("page_id", DataType::Int),
                    ("cid", DataType::Int),
                    ("ts", DataType::Int),
                ],
            ),
        );
        c.add_table(
            "lineitem",
            Schema::of(
                "lineitem",
                &[
                    ("l_orderkey", DataType::Int),
                    ("l_partkey", DataType::Int),
                    ("l_suppkey", DataType::Int),
                    ("l_quantity", DataType::Float),
                    ("l_extendedprice", DataType::Float),
                ],
            ),
        );
        c.add_table(
            "part",
            Schema::of(
                "part",
                &[("p_partkey", DataType::Int), ("p_name", DataType::Str)],
            ),
        );
        c.add_table(
            "orders",
            Schema::of(
                "orders",
                &[
                    ("o_orderkey", DataType::Int),
                    ("o_orderstatus", DataType::Str),
                ],
            ),
        );
        c
    }

    fn analyze_sql(sql: &str) -> (Plan, CorrelationReport) {
        let plan = build_plan(&catalog(), &parse(sql).unwrap()).unwrap();
        let report = analyze(&plan);
        (plan, report)
    }

    fn find_ops(plan: &Plan, name: &str) -> Vec<NodeId> {
        plan.post_order(plan.root())
            .into_iter()
            .filter(|&id| plan.node(id).op.name() == name)
            .collect()
    }

    /// §IV-B: in Q17, AGG1 and JOIN1 have IC and TC; JOIN2 has JFC with both.
    #[test]
    fn q17_correlations_match_paper() {
        let (plan, report) = analyze_sql(
            "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
             FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
                   FROM lineitem GROUP BY l_partkey) AS inner_t,
                  (SELECT l_partkey, l_quantity, l_extendedprice
                   FROM lineitem, part
                   WHERE p_partkey = l_partkey) AS outer_t
             WHERE outer_t.l_partkey = inner_t.l_partkey
               AND outer_t.l_quantity < inner_t.t1",
        );
        let joins = find_ops(&plan, "Join");
        let aggs = find_ops(&plan, "Aggregate");
        assert_eq!(joins.len(), 2);
        assert_eq!(aggs.len(), 2);
        // Identify AGG1 (grouped, on lineitem) vs AGG2 (global, final).
        let agg1 = *aggs
            .iter()
            .find(|&&a| matches!(&plan.node(a).op, Operator::Aggregate { group_by, .. } if !group_by.is_empty()))
            .unwrap();
        // JOIN1 is the one whose inputs are both base tables.
        let join1 = *joins
            .iter()
            .find(|&&j| {
                job_inputs(&plan, j)
                    .iter()
                    .all(|i| matches!(i, InputRel::Base(_)))
            })
            .unwrap();
        let join2 = *joins.iter().find(|&&j| j != join1).unwrap();

        assert!(report.has_ic(agg1, join1), "AGG1/JOIN1 share lineitem");
        assert!(report.has_tc(agg1, join1), "AGG1/JOIN1 same PK l_partkey");
        assert!(report.has_jfc(join2, agg1), "JOIN2 JFC with AGG1");
        assert!(report.has_jfc(join2, join1), "JOIN2 JFC with JOIN1");
    }

    /// §VII-A: in Q-CSA all five operations under AGG3 correlate; the PK
    /// chosen for the multi-candidate aggregations is `uid`.
    #[test]
    fn q_csa_pk_choice_is_uid() {
        let (plan, report) = analyze_sql(
            "SELECT avg(pageview_count) FROM
            (SELECT c.uid, mp.ts1, (count(*)-2) AS pageview_count
             FROM clicks AS c,
                  (SELECT uid, max(ts1) AS ts1, ts2
                   FROM (SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
                         FROM clicks AS c1, clicks AS c2
                         WHERE c1.uid = c2.uid AND c1.ts < c2.ts
                           AND c1.cid = 1 AND c2.cid = 2
                         GROUP BY c1.uid, c1.ts) AS cp
                   GROUP BY uid, ts2) AS mp
             WHERE c.uid = mp.uid AND c.ts >= mp.ts1 AND c.ts <= mp.ts2
             GROUP BY c.uid, mp.ts1) AS pageview_counts",
        );
        // Grouped aggregations (AGG1, AGG2, AGG3) must all choose a
        // single-column PK whose provenance is clicks.uid.
        let grouped: Vec<NodeId> = find_ops(&plan, "Aggregate")
            .into_iter()
            .filter(|&a| {
                matches!(&plan.node(a).op, Operator::Aggregate { group_by, .. } if !group_by.is_empty())
            })
            .collect();
        assert_eq!(grouped.len(), 3);
        for a in &grouped {
            let pk = &report.info(*a).pk;
            assert_eq!(pk.columns.len(), 1, "AGG {a} chose {pk}");
            assert!(
                pk.columns[0]
                    .cols
                    .contains(&("clicks".into(), "uid".into())),
                "AGG {a} chose {pk}"
            );
        }
        // Every grouped aggregation has a JFC link to its effective child.
        let jfc_children: usize = grouped
            .iter()
            .map(|&a| {
                report
                    .info(a)
                    .shuffle_children
                    .iter()
                    .filter(|&&c| report.has_jfc(a, c))
                    .count()
            })
            .sum();
        assert_eq!(jfc_children, 3, "AGG1→JOIN1, AGG2→AGG1, AGG3→JOIN2");
        // And both joins partition by uid.
        for j in find_ops(&plan, "Join") {
            let pk = &report.info(j).pk;
            assert!(pk.columns[0]
                .cols
                .contains(&("clicks".into(), "uid".into())));
        }
    }

    /// Q18 shape: JOIN1, AGG1, JOIN2 all share PK l_orderkey (§VII-A).
    #[test]
    fn q18_three_ops_one_pk() {
        let (plan, report) = analyze_sql(
            "SELECT o_orderkey, sum(l_quantity)
             FROM (SELECT l_orderkey, sum(l_quantity) AS t_sum_quantity
                   FROM lineitem GROUP BY l_orderkey) AS t,
                  lineitem, orders
             WHERE o_orderkey = t.l_orderkey AND o_orderkey = lineitem.l_orderkey
               AND t.t_sum_quantity > 300
             GROUP BY o_orderkey",
        );
        let joins = find_ops(&plan, "Join");
        assert_eq!(joins.len(), 2);
        // Both joins and the inner aggregation share the l_orderkey PK;
        // there is a JFC chain all the way up.
        assert!(!report.job_flow.is_empty());
        let agg1 = find_ops(&plan, "Aggregate")
            .into_iter()
            .find(|&a| {
                matches!(&plan.node(a).op, Operator::Aggregate { group_by, .. } if !group_by.is_empty())
                    && report.info(a).inputs.contains(&InputRel::Base("lineitem".into()))
            })
            .unwrap();
        // AGG1 on lineitem has TC with the join that also scans lineitem.
        assert!(joins.iter().any(|&j| report.has_tc(agg1, j)));
    }

    #[test]
    fn uncorrelated_nodes_report_nothing() {
        let (_, report) = analyze_sql(
            "SELECT p_name, count(*) FROM part, orders \
             WHERE p_partkey = o_orderkey GROUP BY p_name",
        );
        // join PK = partkey/orderkey; agg PK = p_name: no JFC.
        assert!(report.job_flow.is_empty());
        assert!(report.transit_correlated.is_empty());
    }

    #[test]
    fn self_join_input_set_collapses() {
        let (plan, report) = analyze_sql(
            "SELECT c1.uid, count(*) FROM clicks AS c1, clicks AS c2 \
             WHERE c1.uid = c2.uid GROUP BY c1.uid",
        );
        let join = find_ops(&plan, "Join")[0];
        let inputs = &report.info(join).inputs;
        assert_eq!(inputs.len(), 1, "self-join reads one base table");
        assert!(inputs.contains(&InputRel::Base("clicks".into())));
    }

    #[test]
    fn global_agg_has_empty_pk_and_no_jfc() {
        let (plan, report) = analyze_sql("SELECT count(*) FROM clicks");
        let agg = find_ops(&plan, "Aggregate")[0];
        assert!(report.info(agg).pk.is_empty());
        assert!(report.job_flow.is_empty());
    }
}
